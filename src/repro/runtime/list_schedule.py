"""Discrete greedy-scheduling validation of the ``W/P + O(S)`` time model.

``RunMetrics.time_on`` prices each step with the work-stealing *bound*
``max(work/P, span)``.  This module cross-checks that bound by actually
scheduling each step's task multiset onto P workers with greedy list
scheduling — the deterministic core of what a work-stealing scheduler
realizes, with Graham's guarantee

    makespan <= work/P + (1 - 1/P) * max_task.

Recording per-task costs is opt-in (``SimRuntime(record_task_costs=True)``)
since it retains every task array; the validation bench uses it to show
the modeled times and the scheduled times agree within Graham's envelope.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics


def list_schedule_makespan(
    task_costs: np.ndarray, workers: int
) -> float:
    """Greedy (arrival-order) list scheduling onto ``workers`` machines.

    Each task goes to the earliest-available worker; returns the makespan.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    if workers == 1:
        return float(costs.sum())
    heap = [0.0] * workers
    for cost in costs:
        finish = heapq.heappop(heap)
        heapq.heappush(heap, finish + float(cost))
    return max(heap)


def graham_bound(task_costs: np.ndarray, workers: int) -> float:
    """Graham's list-scheduling guarantee for a task multiset."""
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    return float(costs.sum()) / workers + (
        1.0 - 1.0 / workers
    ) * float(costs.max())


def scheduled_time_on(
    metrics: RunMetrics,
    threads: int,
    model: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Simulated time with per-step greedy scheduling instead of the bound.

    Steps recorded without task costs (sequential segments, steps from a
    runtime without ``record_task_costs``) fall back to the modeled
    ``max(work/P, span)``.  Barrier costs are charged as in ``time_on``.
    """
    if threads == 1:
        return metrics.work
    p_eff = model.effective_cores(threads)
    workers = max(int(p_eff), 1)
    total = 0.0
    for step in metrics.steps:
        task_costs = getattr(step, "task_costs", None)
        if task_costs is not None and len(task_costs):
            base = list_schedule_makespan(task_costs, workers)
            # Contention / serialization charged beyond the task costs
            # lives in the span surplus; keep it.
            surplus = max(
                step.span - float(np.max(task_costs)), 0.0
            )
            total += base + surplus
        else:
            total += max(step.work / p_eff, step.span)
        total += step.barriers * model.omega_time
    return total
