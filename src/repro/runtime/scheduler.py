"""Scheduling-level views over a recorded execution.

The simulated runtime records a ledger of steps; this module turns that
ledger into the quantities the paper's evaluation section plots:

* running time on P threads (work-stealing bound per step),
* self-relative speedup curves (Fig. 10),
* burdened-span comparisons between algorithms (Figs. 9 / 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics

#: Thread counts used by the paper's scalability study (Fig. 10); "192"
#: is the 96-core machine with hyperthreading ("96h").
SCALABILITY_THREADS: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 48, 96, 192)


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a self-relative speedup curve."""

    threads: int
    time: float
    speedup: float


def speedup_curve(
    metrics: RunMetrics,
    threads: tuple[int, ...] = SCALABILITY_THREADS,
    model: CostModel = DEFAULT_COST_MODEL,
) -> list[SpeedupPoint]:
    """Self-relative speedup of a recorded execution across thread counts."""
    t1 = metrics.time_on(1, model)
    points = []
    for p in threads:
        tp = metrics.time_on(p, model)
        points.append(SpeedupPoint(p, tp, t1 / tp if tp else float("inf")))
    return points


def self_relative_speedup(
    metrics: RunMetrics,
    threads: int = 96,
    model: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """``T_1 / T_threads`` of one recorded execution (Table 2's "spd.")."""
    tp = metrics.time_on(threads, model)
    if tp == 0:
        return float("inf")
    return metrics.time_on(1, model) / tp


def burdened_span_speedup(
    baseline: RunMetrics,
    ours: RunMetrics,
    model: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Baseline burdened span over ours (Fig. 9: higher favours ours)."""
    mine = ours.burdened_span_under(model)
    if mine == 0:
        return float("inf")
    return baseline.burdened_span_under(model) / mine
