"""Cost model for the simulated parallel runtime.

The paper analyzes its algorithms in the classic work-span model with binary
fork-join, augmented with two practical refinements:

* **burdened span** (Cilkview, He et al. 2010): every fork/join operation is
  charged a large constant ``omega`` (the paper uses the Cilkview default of
  15,000) to reflect real scheduling overhead;
* **contention** (Acar et al. 2017): operations that concurrently modify the
  same memory location serialize, so a location receiving ``c`` concurrent
  atomic updates contributes ``c`` sequential atomic operations to the span.

This module centralizes every constant of that model so experiments can vary
them, and provides the mapping from abstract operation counts to simulated
time.  One operation is one simulated nanosecond, which puts the scaled-down
benchmark suite in the millisecond range (the paper's testbed ran in seconds
on graphs three to five orders of magnitude larger).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Version of the cost-model *semantics*: the set of constants and the way
#: runtimes charge them.  The regression goldens embed this tag; bump it
#: (and re-bless) whenever a constant is added/removed or its meaning —
#: not merely its value — changes, so stale goldens fail loudly instead of
#: silently comparing incompatible numbers.  See docs/COST_MODEL.md.
COST_MODEL_VERSION = 1


@dataclass(frozen=True)
class CostModel:
    """Constants of the simulated machine.

    Attributes:
        omega: Burden charged per fork/join barrier in the *burdened span*
            (Cilkview default, see paper Sec. 2).  Used for the span
            analysis (Figs. 9/14), not for simulated time.
        omega_time: Scheduling cost per fork/join barrier in *simulated
            time*.  The paper's datasets are three to five orders of
            magnitude larger than the scaled suite, so the barrier cost in
            time units is scaled to preserve the paper's work-to-overhead
            ratios (a real tuned scheduler synchronizes in a few
            microseconds; our unit op is one simulated nanosecond).
        atomic_op: Work of one uncontended atomic read-modify-write.
        contended_atomic_op: Span cost of each serialized atomic when many
            threads hit one cache line (a cache-coherence round trip is
            tens of nanoseconds, not one).  This is what makes high-degree
            contention hurt, and what sampling removes.
        edge_op: Cost of touching one neighbor during peeling.
        vertex_op: Per-vertex overhead when a vertex enters a frontier.
        scan_op: Per-element cost of a streaming pack / filter / prefix sum.
        histogram_op: Per-element cost of the semisort-based HISTOGRAM used by
            the offline (Julienne-style) peel; deliberately larger than
            ``edge_op`` because semisort makes several passes.
        bag_insert_op: Cost of one parallel-hash-bag insertion (hash + CAS).
        bag_extract_op: Per-element cost of BagExtractAll.
        bucket_move_op: Cost of moving a vertex between buckets
            (DecreaseKey / redistribution) in a bucketing structure.
        sample_flip_op: Cost of one sampling coin flip (RNG draw).
        n_cores: Physical cores of the simulated machine (the paper's machine
            has 96 cores / 192 hyperthreads).
        hyper_factor: Incremental throughput contributed by each hyperthread
            beyond the physical core count.
        offline_barriers: Fork/join barriers per offline peel subround
            (gather, histogram, apply, pack).
        online_barriers: Fork/join barriers per online peel subround.
    """

    omega: float = 15_000.0
    omega_time: float = 500.0
    atomic_op: float = 2.0
    contended_atomic_op: float = 120.0
    edge_op: float = 1.0
    vertex_op: float = 1.0
    scan_op: float = 0.25
    histogram_op: float = 4.0
    bag_insert_op: float = 3.0
    bag_extract_op: float = 1.0
    bucket_move_op: float = 3.0
    sample_flip_op: float = 1.5
    n_cores: int = 96
    hyper_factor: float = 0.35
    offline_barriers: int = 4
    online_barriers: int = 1

    def effective_cores(self, threads: int) -> float:
        """Usable parallelism for ``threads`` software threads.

        Threads beyond the physical core count run as hyperthreads and only
        contribute ``hyper_factor`` of a core each, which reproduces the
        sub-linear "96h" point in the paper's scalability plots (Fig. 10).
        """
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        if threads <= self.n_cores:
            return float(threads)
        return self.n_cores + self.hyper_factor * (threads - self.n_cores)

    def signature(self) -> dict[str, float]:
        """Every constant of the model as a plain dict.

        Embedded in regression goldens so a drift report can say *which*
        constant moved, and compared field-by-field before metrics are.
        """
        return {
            name: getattr(self, name)
            for name in sorted(self.__dataclass_fields__)
        }


#: Shared default model; algorithms use this unless a caller injects another.
DEFAULT_COST_MODEL = CostModel()


@dataclass
class CostModelOverrides:
    """Mutable builder for deriving a tweaked :class:`CostModel`.

    Benchmark ablations (e.g. sweeping ``omega`` to show when scheduling
    overhead dominates) construct variants through this helper rather than
    re-listing every field.
    """

    base: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def with_fields(self, **kwargs: float) -> CostModel:
        """Return a copy of ``base`` with the given fields replaced."""
        values = {
            name: getattr(self.base, name)
            for name in self.base.__dataclass_fields__
        }
        for key, value in kwargs.items():
            if key not in values:
                raise KeyError(f"unknown cost-model field: {key!r}")
            values[key] = value
        return CostModel(**values)


def nanos_to_millis(ops: float) -> float:
    """Convert simulated nanoseconds (operation counts) to milliseconds."""
    return ops * 1e-6


def nanos_to_seconds(ops: float) -> float:
    """Convert simulated nanoseconds (operation counts) to seconds."""
    return ops * 1e-9
