"""Simulated parallel runtime: cost model, metrics, atomics, scheduling.

Python's GIL prevents genuine shared-memory parallelism, so this package
reproduces the *analytical machine* the paper itself reasons about: the
binary fork-join work-span model with Cilkview's burdened span and a
contention charge for concurrent atomics (paper Sec. 2).  Every algorithm in
:mod:`repro.core` charges its operations to a :class:`SimRuntime`, and the
recorded ledger yields simulated running times on any thread count.
"""

from repro.runtime.atomics import (
    DecrementOutcome,
    batch_decrement,
    batch_increment_clamped,
    contention_of,
)
from repro.runtime.cost_model import (
    DEFAULT_COST_MODEL,
    CostModel,
    CostModelOverrides,
    nanos_to_millis,
    nanos_to_seconds,
)
from repro.runtime.list_schedule import (
    graham_bound,
    list_schedule_makespan,
    scheduled_time_on,
)
from repro.runtime.metrics import RunMetrics, StepRecord
from repro.runtime.profiler import (
    ParallelismReport,
    TagCost,
    profile,
    render_report,
)
from repro.runtime.scheduler import (
    SCALABILITY_THREADS,
    SpeedupPoint,
    burdened_span_speedup,
    self_relative_speedup,
    speedup_curve,
)
from repro.runtime.simulator import SimRuntime

__all__ = [
    "CostModel",
    "CostModelOverrides",
    "DEFAULT_COST_MODEL",
    "DecrementOutcome",
    "RunMetrics",
    "SCALABILITY_THREADS",
    "SimRuntime",
    "SpeedupPoint",
    "StepRecord",
    "batch_decrement",
    "batch_increment_clamped",
    "burdened_span_speedup",
    "contention_of",
    "graham_bound",
    "list_schedule_makespan",
    "scheduled_time_on",
    "nanos_to_millis",
    "nanos_to_seconds",
    "ParallelismReport",
    "TagCost",
    "profile",
    "render_report",
    "self_relative_speedup",
    "speedup_curve",
]
