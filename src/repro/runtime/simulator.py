"""The simulated parallel runtime.

:class:`SimRuntime` is the single object algorithm implementations charge
their operations to.  It exposes a small vocabulary that mirrors the
parallel constructs in the paper:

* :meth:`parallel_for` — a flat parallel loop over tasks with known costs
  (one fork/join barrier; span = the most expensive task);
* :meth:`parallel_update` — a parallel loop whose tasks also issue atomic
  updates; concurrent updates to one location serialize on the span
  (the paper's contention model, Sec. 2);
* :meth:`sequential` — work executed on one thread (local searches inside
  VGC, the sequential baselines);
* :meth:`barrier_only` — an extra synchronization phase with negligible work
  (e.g. the histogram passes of the offline peel).

Algorithms remain ordinary single-threaded Python underneath; the runtime
records what the same logical execution would cost in the work / span /
burdened-span / contention model, which is exactly the vocabulary the
paper's own analysis and Cilkview measurements use.

A :class:`~repro.trace.Tracer` may observe a runtime (``tracer=`` kwarg,
or the process-wide default installed with :func:`set_active_tracer`).
Tracing is strictly observational: every tracer call is guarded by an
``is not None`` check (lint rule R006), the tracer never charges work or
draws randomness, and with no tracer attached the only overhead is that
guard — the ledger is bit-identical either way.

A :class:`~repro.obs.MetricsRegistry` may likewise observe a runtime
(``registry=`` kwarg, or process-wide via :func:`repro.obs.observing`):
it accumulates step/round counters under the same observational
contract, enforced by lint rule R008.
"""

from __future__ import annotations

import numpy as np

from repro.obs.registry import active_registry
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics

#: Process-wide default tracer, attached to every newly constructed
#: :class:`SimRuntime` that was not given an explicit ``tracer=``.  Lets
#: the trace CLI and the benchmark runner trace engines (the baselines,
#: the sequential BZ) whose entry points construct their own runtimes.
_ACTIVE_TRACER = None


def set_active_tracer(tracer) -> object | None:
    """Install the process-wide default tracer; returns the previous one.

    Pass ``None`` to uninstall.  Prefer the :func:`repro.trace.tracing`
    context manager, which restores the previous tracer on exit.
    """
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


def active_tracer() -> object | None:
    """The currently installed process-wide default tracer (or ``None``)."""
    return _ACTIVE_TRACER


class SimRuntime:
    """Accounting context for one simulated parallel execution."""

    def __init__(
        self,
        model: CostModel | None = None,
        record_task_costs: bool = False,
        tracer=None,
        registry=None,
    ) -> None:
        self.model = model if model is not None else DEFAULT_COST_MODEL
        self.metrics = RunMetrics()
        #: Retain per-task cost arrays on every step (memory-heavy; used
        #: by the greedy-scheduling validation in runtime.list_schedule).
        self.record_task_costs = record_task_costs
        #: Observing tracer, or None (the default: tracing is absent).
        self.tracer = tracer if tracer is not None else _ACTIVE_TRACER
        if self.tracer is not None:
            self.tracer.attach(self)
        #: Observing metrics registry, or None (metrics are absent).
        self.registry = (
            registry if registry is not None else active_registry()
        )
        if self.registry is not None:
            self.registry.attach(self)

    def _observe_step(self, kind: str, work: float, atomics: int) -> None:
        """Feed one ledger step to the registry (caller guards != None)."""
        registry = self.registry
        if registry is not None:
            registry.inc(f"runtime.steps.{kind}")
            registry.inc("runtime.work", work)
            if atomics:
                registry.inc("runtime.atomics", atomics)

    # ------------------------------------------------------------------
    # Parallel constructs
    # ------------------------------------------------------------------
    def parallel_for(
        self,
        task_costs: np.ndarray | list[float] | float,
        count: int | None = None,
        barriers: int = 1,
        tag: str = "",
    ) -> None:
        """Charge a flat parallel loop.

        ``task_costs`` is either an array of per-task costs, or a scalar
        per-task cost combined with ``count``.  Span is the largest task.
        """
        if np.isscalar(task_costs):
            if count is None:
                raise ValueError("count is required with a scalar task cost")
            work = float(task_costs) * count
            span = float(task_costs) if count else 0.0
        else:
            costs = np.asarray(task_costs, dtype=np.float64)
            work = float(costs.sum())
            span = float(costs.max()) if costs.size else 0.0
        self.metrics.record_parallel(
            work, span, barriers, tag,
            task_costs=self._retain(task_costs, count),
        )
        if self.tracer is not None:
            self.tracer.on_step("parallel_for", work, span, barriers, tag)
        self._observe_step("parallel_for", work, 0)

    def parallel_update(
        self,
        task_costs: np.ndarray | float,
        contention_counts: np.ndarray,
        count: int | None = None,
        barriers: int = 1,
        tag: str = "",
    ) -> None:
        """Charge a parallel loop that performs atomic updates.

        ``contention_counts`` holds, per touched memory location, the number
        of concurrent atomic updates it receives in this step.  Updates to
        one location serialize on its cache line, so the step span gains
        ``max(contention) * contended_atomic_op`` while each atomic costs
        ``atomic_op`` of work on top of the task costs.
        """
        counts = np.asarray(contention_counts)
        n_atomics = int(counts.sum())
        max_contention = int(counts.max()) if counts.size else 0

        if np.isscalar(task_costs):
            if count is None:
                raise ValueError("count is required with a scalar task cost")
            work = float(task_costs) * count
            span = float(task_costs) if count else 0.0
        else:
            costs = np.asarray(task_costs, dtype=np.float64)
            work = float(costs.sum())
            span = float(costs.max()) if costs.size else 0.0

        work += n_atomics * self.model.atomic_op
        span += max_contention * self.model.contended_atomic_op
        self.metrics.record_parallel(
            work, span, barriers, tag,
            task_costs=self._retain(task_costs, count),
        )
        self.metrics.observe_contention(max_contention, n_atomics)
        if self.tracer is not None:
            self.tracer.on_step(
                "parallel_update", work, span, barriers, tag,
                atomics=n_atomics, max_contention=max_contention,
            )
        self._observe_step("parallel_update", work, n_atomics)

    def _retain(self, task_costs, count):
        """Materialize the per-task cost array when recording is on."""
        if not self.record_task_costs:
            return None
        if np.isscalar(task_costs):
            return np.full(int(count or 0), float(task_costs))
        return np.asarray(task_costs, dtype=np.float64).copy()

    def sequential(self, work: float, tag: str = "") -> None:
        """Charge work executed on a single thread."""
        if work:
            self.metrics.record_sequential(float(work), tag)
            if self.tracer is not None:
                self.tracer.on_step(
                    "sequential", float(work), float(work), 0, tag
                )
            self._observe_step("sequential", float(work), 0)

    def barrier_only(self, count: int = 1, tag: str = "") -> None:
        """Charge ``count`` extra synchronization phases with no work."""
        self.metrics.record_parallel(0.0, 0.0, count, tag)
        if self.tracer is not None:
            self.tracer.on_step("barrier_only", 0.0, 0.0, count, tag)
        self._observe_step("barrier_only", 0.0, 0)

    def imbalanced_step(
        self,
        thread_works: np.ndarray | list[float],
        barriers: int = 1,
        tag: str = "",
    ) -> None:
        """Charge a step statically partitioned over threads.

        Used by the PKC baseline: each simulated thread drains its private
        buffer sequentially, so the step's span is the *maximum* per-thread
        work (no work stealing inside the step), which models PKC's load
        imbalance on chain-reaction graphs (paper Sec. 4.2).
        """
        works = np.asarray(thread_works, dtype=np.float64)
        work = float(works.sum())
        span = float(works.max()) if works.size else 0.0
        self.metrics.record_parallel(work, span, barriers, tag)
        if self.tracer is not None:
            self.tracer.on_step(
                "imbalanced_step", work, span, barriers, tag
            )
        self._observe_step("imbalanced_step", work, 0)

    # ------------------------------------------------------------------
    # Peeling-structure counters
    # ------------------------------------------------------------------
    def begin_round(self, k: int | None = None) -> None:
        """Note the start of a peeling round (one coreness value).

        ``k`` is the coreness value the round peels, when the caller
        knows it; it only feeds the tracer's span labels and per-round
        telemetry, never the ledger.
        """
        self.metrics.rounds += 1
        if self.tracer is not None:
            self.tracer.on_round(k)
        if self.registry is not None:
            self.registry.inc("runtime.rounds")

    def begin_subround(self, frontier_size: int) -> None:
        """Note the start of a peeling subround over ``frontier_size``."""
        self.metrics.subrounds += 1
        if frontier_size > self.metrics.peak_frontier:
            self.metrics.peak_frontier = frontier_size
        if self.tracer is not None:
            self.tracer.on_subround(int(frontier_size))
        if self.registry is not None:
            self.registry.inc("runtime.subrounds")

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def time_on(self, threads: int) -> float:
        """Simulated time (ns) of the recorded execution on ``threads``."""
        return self.metrics.time_on(threads, self.model)
