"""Execution metrics collected by the simulated runtime.

A run is a sequence of *steps*.  Each step is either a parallel-for (one or
more fork/join barriers, a total work, and a span) or a sequential segment
(work == span, no barrier).  The ledger of steps is sufficient to evaluate

* total **work** ``W`` — the one-core running time,
* **span** ``S`` — the longest dependence chain,
* **burdened span** — span plus ``omega`` per fork/join barrier,
* simulated **running time on P cores** — the work-stealing bound
  ``sum_i max(W_i / P, S_i) + barriers_i * omega``.

The peeling-specific counters (rounds, subrounds, contention, sampler
activity) feed the paper's Figures 7, 9, 11 and Table 2's ``rho`` column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL

#: Version of the stable serialization produced by
#: :meth:`RunMetrics.to_stable_dict`.  Bump whenever a metric is added,
#: removed or redefined — the regression goldens embed this tag and refuse
#: to compare across versions.
METRICS_SCHEMA_VERSION = 1

#: Thread counts at which :meth:`RunMetrics.to_stable_dict` reports
#: simulated running times (sequential, small-scale, the paper's machine).
STABLE_THREAD_COUNTS = (1, 4, 96)


def step_time_parts(
    work: float,
    span: float,
    barriers: int,
    p_eff: float,
    model: CostModel,
) -> tuple[float, float]:
    """One ledger step's simulated running time, split into its two parts.

    Returns ``(compute, sync)`` where ``compute = max(work / p_eff, span)``
    is the work-stealing bound of the step body and ``sync = barriers *
    omega_time`` is its scheduling cost.  This is the single definition of
    the per-step bound shared by :meth:`RunMetrics.time_on`, the profiler's
    per-tag breakdown, and the tracer's simulated clock.

    The parts are returned separately (rather than pre-summed) because
    :meth:`RunMetrics.time_on` accumulates them as two distinct float
    additions — a summation order the regression goldens pin bit-exactly.
    """
    return max(work / p_eff, span), barriers * model.omega_time


@dataclass
class StepRecord:
    """One parallel step of the simulated execution."""

    work: float
    span: float
    barriers: int
    tag: str = ""
    #: Per-task costs, retained only when the runtime was created with
    #: ``record_task_costs=True`` (used by the scheduling validator).
    task_costs: object = None


@dataclass
class RunMetrics:
    """Ledger plus aggregate counters for one algorithm execution."""

    steps: list[StepRecord] = field(default_factory=list)
    work: float = 0.0
    span: float = 0.0
    barriers: int = 0

    #: Peeling rounds (distinct coreness values processed).
    rounds: int = 0
    #: Peeling subrounds (frontier iterations); the paper's rho / rho'.
    subrounds: int = 0
    #: Total atomic operations issued.
    atomics: int = 0
    #: Highest number of concurrent updates observed on one memory location.
    max_contention: int = 0
    #: Vertices that ever entered sample mode.
    sampled_vertices: int = 0
    #: Resample (induced-degree recount) events.
    resamples: int = 0
    #: Las-Vegas restarts triggered by detected sampling errors.
    restarts: int = 0
    #: Largest frontier processed.
    peak_frontier: int = 0
    #: Vertices processed inside VGC local searches (not via new subrounds).
    local_search_hits: int = 0

    def record_parallel(
        self,
        work: float,
        span: float,
        barriers: int = 1,
        tag: str = "",
        task_costs=None,
    ) -> None:
        """Append a parallel step to the ledger."""
        self.steps.append(
            StepRecord(work, span, barriers, tag, task_costs)
        )
        self.work += work
        self.span += span
        self.barriers += barriers

    def record_sequential(self, work: float, tag: str = "") -> None:
        """Append a sequential segment (work contributes fully to the span)."""
        self.steps.append(StepRecord(work, work, 0, tag))
        self.work += work
        self.span += work

    def observe_contention(self, contention: int, count: int = 1) -> None:
        """Note ``count`` atomics whose location saw ``contention`` writers."""
        self.atomics += count
        if contention > self.max_contention:
            self.max_contention = contention

    @property
    def burdened_span(self) -> float:
        """Span with ``omega`` charged per fork/join barrier (Cilkview)."""
        return self.span + DEFAULT_COST_MODEL.omega * self.barriers

    def burdened_span_under(self, model: CostModel) -> float:
        """Burdened span evaluated with a caller-supplied cost model."""
        return self.span + model.omega * self.barriers

    def time_on(
        self, threads: int, model: CostModel = DEFAULT_COST_MODEL
    ) -> float:
        """Simulated running time (in ops == ns) on ``threads`` threads.

        Uses the randomized work-stealing bound ``W/P + O(S)`` applied per
        step: each step completes in ``max(work / p_eff, span)`` plus the
        scheduling cost (``omega_time``) of its barriers.  On one thread
        the execution is sequential, so barriers cost nothing and the time
        is exactly the work.
        """
        if threads == 1:
            return self.work
        p_eff = model.effective_cores(threads)
        total = 0.0
        for step in self.steps:
            compute, sync = step_time_parts(
                step.work, step.span, step.barriers, p_eff, model
            )
            total += compute
            total += sync
        return total

    def merge(self, other: "RunMetrics") -> None:
        """Fold another ledger into this one (used by restart recovery)."""
        self.steps.extend(other.steps)
        self.work += other.work
        self.span += other.span
        self.barriers += other.barriers
        self.rounds += other.rounds
        self.subrounds += other.subrounds
        self.atomics += other.atomics
        self.max_contention = max(self.max_contention, other.max_contention)
        self.sampled_vertices += other.sampled_vertices
        self.resamples += other.resamples
        self.restarts += other.restarts
        self.peak_frontier = max(self.peak_frontier, other.peak_frontier)
        self.local_search_hits += other.local_search_hits

    def to_stable_dict(
        self, model: CostModel = DEFAULT_COST_MODEL
    ) -> dict[str, float]:
        """The full ledger summary under a fixed, versioned schema.

        This is the serialization the golden-metrics regression gate pins:
        every aggregate counter plus the burdened span and the simulated
        running times at :data:`STABLE_THREAD_COUNTS`, all evaluated under
        ``model``.  The runtime is deterministic, so two identical runs
        produce bit-identical dicts; keys are emitted in a fixed order and
        values are plain ints/floats that round-trip exactly through JSON.
        """
        out: dict[str, float] = {
            "work": float(self.work),
            "span": float(self.span),
            "burdened_span": float(self.burdened_span_under(model)),
            "barriers": int(self.barriers),
            "rounds": int(self.rounds),
            "subrounds": int(self.subrounds),
            "atomics": int(self.atomics),
            "max_contention": int(self.max_contention),
            "sampled_vertices": int(self.sampled_vertices),
            "resamples": int(self.resamples),
            "restarts": int(self.restarts),
            "peak_frontier": int(self.peak_frontier),
            "local_search_hits": int(self.local_search_hits),
            "steps": len(self.steps),
        }
        for threads in STABLE_THREAD_COUNTS:
            out[f"time_p{threads}"] = float(self.time_on(threads, model))
        return out

    def summary(self) -> dict[str, float]:
        """Aggregate counters as a plain dict (for tables and JSON dumps)."""
        return {
            "work": self.work,
            "span": self.span,
            "burdened_span": self.burdened_span,
            "barriers": float(self.barriers),
            "rounds": float(self.rounds),
            "subrounds": float(self.subrounds),
            "atomics": float(self.atomics),
            "max_contention": float(self.max_contention),
            "sampled_vertices": float(self.sampled_vertices),
            "resamples": float(self.resamples),
            "restarts": float(self.restarts),
            "peak_frontier": float(self.peak_frontier),
            "local_search_hits": float(self.local_search_hits),
        }
