"""Cilkview-style parallelism profiler for recorded executions.

The paper measures *burdened span* with Cilkview (He, Leiserson &
Leiserson 2010) to explain why VGC wins (Sec. 6.2.5).  This module
produces the same style of report from a recorded ledger: work, span,
parallelism (work / span), burdened parallelism (work / burdened span),
estimated speedups, and a per-tag cost breakdown that shows where each
algorithm spends its simulated time.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics, step_time_parts

#: Display/return sentinel for steps charged without a tag.  Both
#: :meth:`ParallelismReport.dominant_tag` and :func:`render_report` use
#: this same value, so "the dominant cost is untagged" reads identically
#: whether you compare the return value or grep the rendered report.
UNTAGGED = "<untagged>"

#: Thread count of the per-tag breakdown (the paper's machine).
PROFILE_THREADS = 96


@dataclass(frozen=True)
class TagCost:
    """Aggregated cost of all steps sharing one ledger tag."""

    tag: str
    work: float
    span: float
    barriers: int
    steps: int
    time96: float

    def to_json(self) -> dict[str, float]:
        """Plain-dict form (JSON-ready), with the display sentinel."""
        return {
            "tag": self.tag or UNTAGGED,
            "work": float(self.work),
            "span": float(self.span),
            "barriers": int(self.barriers),
            "steps": int(self.steps),
            "time96": float(self.time96),
        }


@dataclass(frozen=True)
class ParallelismReport:
    """Cilkview-style summary of one recorded execution."""

    work: float
    span: float
    burdened_span: float
    parallelism: float
    burdened_parallelism: float
    barriers: int
    speedup_96: float
    tags: tuple[TagCost, ...]

    def dominant_tag(self) -> str:
        """Ledger tag consuming the most simulated 96-thread time.

        Untagged-dominant (and empty) runs return :data:`UNTAGGED` — the
        same sentinel :func:`render_report` prints — never ``""``.
        """
        if not self.tags:
            return UNTAGGED
        return max(self.tags, key=lambda t: t.time96).tag or UNTAGGED

    def to_json(self) -> dict[str, object]:
        """The full report as a plain dict of JSON-safe values.

        Machine-readable counterpart of :func:`render_report`, in the
        style of the lint/regress JSON reporters.  Infinities (empty
        ledgers) are mapped to ``None`` so the dict round-trips through
        strict JSON.
        """

        def finite(value: float) -> float | None:
            return float(value) if value != float("inf") else None

        return {
            "work": float(self.work),
            "span": float(self.span),
            "burdened_span": float(self.burdened_span),
            "parallelism": finite(self.parallelism),
            "burdened_parallelism": finite(self.burdened_parallelism),
            "barriers": int(self.barriers),
            "speedup_96": finite(self.speedup_96),
            "dominant_tag": self.dominant_tag(),
            "tags": [tag.to_json() for tag in self.tags],
        }


def profile(
    metrics: RunMetrics, model: CostModel = DEFAULT_COST_MODEL
) -> ParallelismReport:
    """Build a :class:`ParallelismReport` from a recorded ledger."""
    work = metrics.work
    span = metrics.span
    burdened = metrics.burdened_span_under(model)
    p_eff = model.effective_cores(PROFILE_THREADS)
    per_tag: dict[str, list[float]] = defaultdict(
        lambda: [0.0, 0.0, 0, 0, 0.0]
    )
    for step in metrics.steps:
        slot = per_tag[step.tag]
        slot[0] += step.work
        slot[1] += step.span
        slot[2] += step.barriers
        slot[3] += 1
        compute, sync = step_time_parts(
            step.work, step.span, step.barriers, p_eff, model
        )
        slot[4] += compute + sync
    tags = tuple(
        sorted(
            (
                TagCost(tag, w, s, int(b), int(c), t96)
                for tag, (w, s, b, c, t96) in per_tag.items()
            ),
            key=lambda t: -t.time96,
        )
    )
    t96 = metrics.time_on(PROFILE_THREADS, model)
    return ParallelismReport(
        work=work,
        span=span,
        burdened_span=burdened,
        parallelism=work / span if span else float("inf"),
        burdened_parallelism=work / burdened if burdened else float("inf"),
        barriers=metrics.barriers,
        speedup_96=work / t96 if t96 else float("inf"),
        tags=tags,
    )


def render_report(report: ParallelismReport, title: str = "") -> str:
    """Human-readable profiler output (Cilkview-report flavoured)."""
    lines = []
    if title:
        lines.append(title)
    lines.extend(
        [
            f"work:                  {report.work:,.0f} ops",
            f"span:                  {report.span:,.0f} ops",
            f"burdened span:         {report.burdened_span:,.0f} ops",
            f"parallelism:           {report.parallelism:,.1f}",
            f"burdened parallelism:  {report.burdened_parallelism:,.1f}",
            f"fork/join barriers:    {report.barriers:,}",
            f"estimated speedup@96:  {report.speedup_96:,.1f}x",
            "per-tag breakdown (by simulated 96-thread time):",
        ]
    )
    for tag in report.tags:
        lines.append(
            f"  {tag.tag or UNTAGGED:20s} "
            f"t96={tag.time96 / 1e3:9.1f}us work={tag.work / 1e3:9.1f}k "
            f"span={tag.span:9.0f} barriers={tag.barriers:5d} "
            f"steps={tag.steps}"
        )
    return "\n".join(lines)


def render_report_json(report: ParallelismReport) -> str:
    """The report serialized as JSON (one object, stable key order)."""
    return json.dumps(report.to_json(), indent=1, sort_keys=True)
