"""Batch semantics for atomic operations under the simulated runtime.

The online peeling algorithms of the paper (ParK, PKC, and our framework)
issue ``atomic_dec`` on induced degrees and ``atomic_inc`` on sampler
counters.  Executed under frontier-synchronous semantics, a batch of atomics
on an integer array is equivalent to applying all decrements at once and
asking which locations crossed a threshold — with the guarantee (inherited
from atomicity) that exactly one logical thread observes the crossing.

These helpers implement that batch semantics with numpy and also return the
per-location *contention counts* the runtime needs for span accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DecrementOutcome:
    """Result of a batch of atomic decrements on the induced-degree array.

    Attributes:
        counts: Per-vertex number of decrements applied in this batch
            (equals the contention experienced by that vertex's counter).
        crossed: Vertices whose value crossed the threshold ``k`` from above
            (old value > k, new value <= k); by atomicity exactly one thread
            observes each crossing, so these join the next frontier once.
        touched: The distinct locations decremented in this batch (sorted;
            aligned with ``counts``, ``old`` and ``new``).
        old: Values of ``touched`` before the batch.
        new: Values of ``touched`` after the batch.
    """

    counts: np.ndarray
    crossed: np.ndarray
    touched: np.ndarray
    old: np.ndarray
    new: np.ndarray


def batch_decrement(
    values: np.ndarray,
    targets: np.ndarray,
    k: int,
    floor: int | None = None,
) -> DecrementOutcome:
    """Apply one atomic decrement per entry of ``targets`` to ``values``.

    ``targets`` may repeat a vertex; each occurrence is one decrement.
    ``values`` is modified in place.  Returns the contention counts, the
    vertices whose value dropped from above ``k`` to ``k`` or below, and
    the before/after views callers need for survivor bookkeeping.

    ``floor`` clamps the stored values from below (the truss peel's
    supports never go negative) without affecting crossing detection.
    """
    if targets.size == 0:
        empty_counts = np.zeros(0, dtype=np.int64)
        empty = np.zeros(0, dtype=targets.dtype)
        return DecrementOutcome(
            counts=empty_counts,
            crossed=empty,
            touched=empty,
            old=empty_counts,
            new=empty_counts,
        )
    touched, counts = np.unique(targets, return_counts=True)
    old = values[touched]
    new = old - counts
    if floor is not None:
        new = np.maximum(new, floor)
    values[touched] = new
    crossed = touched[(old > k) & (new <= k)]
    return DecrementOutcome(
        counts=counts, crossed=crossed, touched=touched, old=old, new=new
    )


def batch_increment_clamped(
    counters: np.ndarray, targets: np.ndarray, limit: int
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one atomic increment per entry of ``targets`` to ``counters``.

    Returns ``(counts, reached)`` where ``counts`` is the per-location
    contention and ``reached`` lists the locations whose counter reached or
    exceeded ``limit`` during this batch (having been below it before) —
    the sampler's "collected enough samples" event (Alg. 5 line 7), which by
    atomicity fires exactly once per location.
    """
    if targets.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=targets.dtype)
    touched, counts = np.unique(targets, return_counts=True)
    old = counters[touched]
    new = old + counts
    counters[touched] = new
    reached = touched[(old < limit) & (new >= limit)]
    return counts, reached


def contention_of(targets: np.ndarray) -> np.ndarray:
    """Per-location concurrent-update counts of a batch of atomics."""
    if targets.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, counts = np.unique(targets, return_counts=True)
    return counts
