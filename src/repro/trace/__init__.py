"""Structured span tracing on the simulated clock.

The observability layer of the simulated runtime: attach a
:class:`Tracer` to an execution (``tracer=`` kwarg on
:func:`repro.core.framework.decompose` / ``ParallelKCore.decompose``, or
process-wide via :func:`tracing`) and export the resulting timeline as

* Chrome/Perfetto trace-event JSON (:func:`write_trace`,
  loadable in https://ui.perfetto.dev),
* a plain-text per-round timeline (:func:`render_text`),
* a collapsed-stack flamegraph of tag costs (:func:`render_flamegraph`).

Tracing is zero-cost and absent by default, strictly observational
(the regression goldens pass bit-exactly with tracing on and off), and
deterministic — lint rule R006 keeps it that way.  See
docs/OBSERVABILITY.md and ``python -m repro.trace --help``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.runtime.simulator import active_tracer, set_active_tracer
from repro.trace.export_flame import collapsed_stacks, render_flamegraph
from repro.trace.export_perfetto import (
    render_perfetto,
    to_perfetto,
    write_trace,
)
from repro.trace.export_text import render_text
from repro.trace.tracer import (
    DEFAULT_TRACE_THREADS,
    TRACE_SCHEMA_VERSION,
    RoundTelemetry,
    Tracer,
)


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-wide default for a block.

    Every :class:`~repro.runtime.simulator.SimRuntime` constructed inside
    the block attaches to ``tracer`` — the way to trace engines whose
    entry points build their own runtimes (the baselines, BZ).  The
    previous default is restored on exit and the trace is finished.
    """
    previous = set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)
        tracer.finish()


__all__ = [
    "DEFAULT_TRACE_THREADS",
    "TRACE_SCHEMA_VERSION",
    "RoundTelemetry",
    "Tracer",
    "active_tracer",
    "collapsed_stacks",
    "render_flamegraph",
    "render_perfetto",
    "render_text",
    "set_active_tracer",
    "to_perfetto",
    "tracing",
    "write_trace",
]
