"""Plain-text timeline exporter: the trace as a per-round table.

The quick look that needs no UI: one header, one line per peeling
round with its clock extent and telemetry, one footer.  Durations are
simulated microseconds (the clock counts ops == ns).
"""

from __future__ import annotations

from repro.trace.tracer import TRACE_SCHEMA_VERSION, Tracer


def _round_line(rnd: dict) -> str:
    t0_us = rnd["t0"] / 1e3
    t1_us = rnd["t1"] / 1e3
    label = f"k={rnd['k']}" if rnd["k"] is not None else f"#{rnd['index']}"
    line = (
        f"  round {label:>8s} [{t0_us:12.1f}us -> {t1_us:12.1f}us] "
        f"subrounds={rnd['subrounds']:<3d} "
        f"frontier<={rnd['peak_frontier']:<6d} "
        f"steps={rnd['steps']:<4d} "
        f"atomics={rnd['atomics']:<7d} "
        f"contention<={rnd['max_contention']}"
    )
    extras = []
    if rnd["absorbed"]:
        extras.append(f"absorbed={rnd['absorbed']}")
    if rnd["sample_draws"]:
        extras.append(
            f"hits={rnd['sample_hits']}/{rnd['sample_draws']}"
        )
    if rnd["saturated"]:
        extras.append(f"saturated={rnd['saturated']}")
    if rnd["resamples"]:
        extras.append(f"resamples={rnd['resamples']}")
    if rnd["validate_failures"]:
        extras.append(f"validate_failures={rnd['validate_failures']}")
    if rnd["kernel_regimes"]:
        extras.append(f"kernels={','.join(rnd['kernel_regimes'])}")
    if extras:
        line += " " + " ".join(extras)
    return line


def render_text(tracer: Tracer) -> str:
    """Human-readable timeline of the whole trace."""
    tracer.finish()
    telemetry = tracer.telemetry()
    lines = [
        f"trace: {tracer.label} (simulated @{tracer.threads} threads, "
        f"schema v{TRACE_SCHEMA_VERSION})",
        f"  clock: {tracer.clock / 1e3:,.1f}us simulated, "
        f"{len(tracer.steps)} steps, {len(telemetry)} rounds, "
        f"{sum(r['subrounds'] for r in telemetry)} subrounds, "
        f"{tracer.attempts} attempt(s)",
    ]
    setup_steps = [s for s in tracer.steps if s.round_index == 0]
    if setup_steps:
        t1_us = max(s.t1 for s in setup_steps) / 1e3
        lines.append(
            f"  setup            [{0.0:12.1f}us -> {t1_us:12.1f}us] "
            f"steps={len(setup_steps)}"
        )
    lines.extend(_round_line(rnd) for rnd in telemetry)
    for host in tracer.host_spans:
        lines.append(
            f"  host: {host.name} wall={host.wall_s:.3f}s"
        )
    return "\n".join(lines)
