"""``python -m repro.trace`` — trace one engine on one suite graph.

Typical invocations::

    python -m repro.trace ours LJ-S                # full-size graph
    python -m repro.trace ours GRID --tiny         # smoke-sized
    python -m repro.trace julienne HCNS --tiny --flame out.folded
    python -m repro.trace ours LJ-S --threads 4 --output -

Writes a Chrome/Perfetto trace-event JSON (open it in
https://ui.perfetto.dev) and prints the plain-text timeline to stdout.
The run itself is also timed on the host clock (via the sanctioned
``repro.bench.wallclock`` reader) and recorded as a host span.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.wallclock import measure
from repro.generators import suite
from repro.regress.matrix import ENGINES
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.trace import (
    DEFAULT_TRACE_THREADS,
    Tracer,
    render_flamegraph,
    render_perfetto,
    render_text,
    tracing,
    write_trace,
)


def default_output(engine: str, graph: str, tiny: bool) -> str:
    """The default trace-file name for one (engine, graph) cell."""
    size = ".tiny" if tiny else ""
    return f"{engine}-{graph}{size}.trace.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description=(
            "Trace one engine on one suite graph: simulated-clock spans "
            "and per-round telemetry, exported as Perfetto JSON."
        ),
    )
    parser.add_argument(
        "engine",
        help=f"engine to trace; one of: {', '.join(ENGINES)}",
    )
    parser.add_argument(
        "graph",
        help="suite graph name (see repro.generators.suite.SUITE)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="run the tiny rendition of the suite graph",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=DEFAULT_TRACE_THREADS,
        help="simulated thread count of the trace clock (default: "
        f"{DEFAULT_TRACE_THREADS})",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="Perfetto JSON path (default: <engine>-<graph>.trace.json; "
        "'-' prints the JSON to stdout instead of the text timeline)",
    )
    parser.add_argument(
        "--flame",
        default=None,
        metavar="PATH",
        help="also write a collapsed-stack flamegraph to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.engine not in ENGINES:
        known = ", ".join(ENGINES)
        print(
            f"error: unknown engine {args.engine!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    try:
        graph = suite.load(args.graph, tiny=args.tiny)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    label = f"{args.engine}/{args.graph}" + (".tiny" if args.tiny else "")
    tracer = Tracer(threads=args.threads, label=label)
    with tracing(tracer):
        with measure() as wall:
            result = ENGINES[args.engine](graph, DEFAULT_COST_MODEL)
    tracer.host_span(label, wall.wall_s, max_rss_kb=wall.max_rss_kb)

    if args.output == "-":
        print(render_perfetto(tracer))
    else:
        output = args.output or default_output(
            args.engine, args.graph, args.tiny
        )
        write_trace(tracer, output)
        print(render_text(tracer))
        print(f"kmax={int(result.kmax)}  wall={wall.wall_s:.3f}s")
        print(f"wrote {output} (load it in https://ui.perfetto.dev)")
    if args.flame:
        with open(args.flame, "w", encoding="utf-8") as handle:
            handle.write(render_flamegraph(tracer))
            handle.write("\n")
        print(f"wrote {args.flame} (collapsed stacks)")
    return 0
