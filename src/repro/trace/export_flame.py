"""Collapsed-stack flamegraph exporter.

Folds the step timeline into Brendan-Gregg-style collapsed stacks —
``frame;frame;frame count`` lines — where the frames are the execution
structure (label, round, subround) and the leaf is the ledger tag, and
the count is the step's simulated duration in integer nanoseconds.
Feed the output straight to ``flamegraph.pl`` or an online renderer
(e.g. speedscope) to see where the simulated time goes.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.trace.tracer import Tracer

#: Frame used for steps recorded before the first peeling round.
SETUP_FRAME = "setup"


def collapsed_stacks(tracer: Tracer) -> "OrderedDict[str, int]":
    """Aggregated ``stack -> simulated-ns`` mapping, insertion-ordered."""
    tracer.finish()
    stacks: OrderedDict[str, int] = OrderedDict()
    for step in tracer.steps:
        frames = [tracer.label.replace(";", "_")]
        if step.round_index == 0:
            frames.append(SETUP_FRAME)
        else:
            if step.round_k is not None:
                frames.append(f"round_k={step.round_k}")
            else:
                frames.append(f"round_{step.round_index}")
            if step.subround_index:
                frames.append(f"subround_{step.subround_index}")
        frames.append((step.tag or step.kind).replace(";", "_"))
        key = ";".join(frame.replace(" ", "_") for frame in frames)
        stacks[key] = stacks.get(key, 0) + int(round(step.t1 - step.t0))
    return stacks


def render_flamegraph(tracer: Tracer) -> str:
    """The collapsed-stack file contents (one ``stack count`` per line)."""
    return "\n".join(
        f"{stack} {count}"
        for stack, count in collapsed_stacks(tracer).items()
    )
