"""The span/event tracer: a pure observer of one simulated execution.

A :class:`Tracer` attaches to a :class:`~repro.runtime.simulator.SimRuntime`
and turns the runtime's existing hooks — ``begin_round``,
``begin_subround`` and the charge methods — into a timeline on the
**simulated clock**: each ledger step advances the clock by its
work-stealing-bound duration at the tracer's thread count (the same
:func:`~repro.runtime.metrics.step_time_parts` formula behind
``RunMetrics.time_on``), and rounds/subrounds become nested spans with
per-round telemetry (frontier sizes, contention, sampler activity,
absorptions, kernel regimes).

Tracing is strictly observational and deterministic (lint rule R006):

* the tracer never charges work, mutates the ledger, or draws
  randomness — two identical runs traced or untraced produce the same
  ``RunMetrics`` bit-for-bit, and two traced runs the same event stream;
* the tracer never reads a host clock — *host* wall-clock spans are
  injected by the caller via :meth:`host_span`, measured with the one
  sanctioned reader, :mod:`repro.bench.wallclock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.metrics import step_time_parts

#: Version of the trace event stream and its exported serializations.
#: Bump whenever an event kind, field, or clock convention is added,
#: removed or redefined — consumers embed this tag (mirrors the
#: ``METRICS_SCHEMA_VERSION`` discipline of the regression goldens).
TRACE_SCHEMA_VERSION = 1

#: Default simulated thread count of the trace clock (paper's machine).
DEFAULT_TRACE_THREADS = 96


@dataclass
class StepEvent:
    """One ledger step on the simulated timeline."""

    kind: str  # parallel_for / parallel_update / sequential / ...
    tag: str
    t0: float  # simulated ns
    t1: float
    work: float
    span: float
    barriers: int
    atomics: int = 0
    max_contention: int = 0
    round_index: int = 0  # 0 = before the first round ("setup")
    round_k: int | None = None
    subround_index: int = 0  # 0 = outside any subround


@dataclass
class SpanRecord:
    """One closed round or subround span."""

    kind: str  # "round" | "subround"
    name: str
    t0: float
    t1: float
    args: dict


@dataclass
class InstantEvent:
    """A point event (kernel regime, resample, restart, ...)."""

    name: str
    ts: float
    args: dict


@dataclass
class CounterSample:
    """One sample of a counter track (frontier size, contention)."""

    name: str
    ts: float
    value: float


@dataclass
class HostSpan:
    """A host wall-clock span injected by the caller (never read here).

    ``track`` names the host thread the span renders on (the default
    single ``bench`` track preserves the original layout); ``start_s``
    optionally places the span at an explicit offset on its track —
    the shard engine uses both for per-worker wall tracks.
    """

    name: str
    wall_s: float
    args: dict
    track: str = "bench"
    start_s: float | None = None


@dataclass
class RoundTelemetry:
    """Aggregated per-round counters (the trace's tabular view)."""

    index: int
    k: int | None
    t0: float
    t1: float = 0.0
    subrounds: int = 0
    peak_frontier: int = 0
    frontier_total: int = 0
    steps: int = 0
    work: float = 0.0
    atomics: int = 0
    max_contention: int = 0
    absorbed: int = 0
    sample_draws: int = 0
    sample_hits: int = 0
    saturated: int = 0
    resamples: int = 0
    validate_failures: int = 0
    kernel_regimes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe dict under a fixed key order."""
        return {
            "index": self.index,
            "k": self.k,
            "t0": self.t0,
            "t1": self.t1,
            "subrounds": self.subrounds,
            "peak_frontier": self.peak_frontier,
            "frontier_total": self.frontier_total,
            "steps": self.steps,
            "work": self.work,
            "atomics": self.atomics,
            "max_contention": self.max_contention,
            "absorbed": self.absorbed,
            "sample_draws": self.sample_draws,
            "sample_hits": self.sample_hits,
            "saturated": self.saturated,
            "resamples": self.resamples,
            "validate_failures": self.validate_failures,
            "kernel_regimes": sorted(set(self.kernel_regimes)),
        }


class Tracer:
    """Collects the trace of one (or several, under restarts) runtimes.

    One tracer instance corresponds to one logical execution: the
    Las-Vegas restart recovery re-attaches the same tracer to each fresh
    runtime, so the timeline spans every attempt and the simulated clock
    keeps accumulating across restarts.
    """

    def __init__(
        self,
        threads: int = DEFAULT_TRACE_THREADS,
        label: str = "run",
    ) -> None:
        self.threads = int(threads)
        self.label = label
        self.model = None  # set at attach
        self.clock = 0.0  # simulated ns
        self.attempts = 0  # runtimes attached (restarts re-attach)

        self.steps: list[StepEvent] = []
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []
        self.host_spans: list[HostSpan] = []
        self.rounds: list[RoundTelemetry] = []

        self._p_eff = 0.0
        self._round: RoundTelemetry | None = None
        self._round_index = 0
        self._subround_t0 = 0.0
        self._subround_frontier = 0
        self._subround_index = 0  # within the current round
        self._subround_open = False
        self._finished = False

    # ------------------------------------------------------------------
    # Runtime-facing hooks (all calls guarded by the caller, R006)
    # ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        """Adopt ``runtime``'s cost model; called by ``SimRuntime``."""
        self.attach_model(runtime.model)

    def attach_model(self, model) -> None:
        """Adopt a cost model directly (runtime-less sequential engines)."""
        self.model = model
        if self.threads > 1:
            self._p_eff = model.effective_cores(self.threads)
        self.attempts += 1

    def on_round(self, k: int | None = None) -> None:
        """A peeling round begins: close the previous spans, open a new one."""
        self._close_subround()
        self._close_round()
        self._round_index += 1
        self._subround_index = 0
        self._round = RoundTelemetry(
            index=self._round_index,
            k=None if k is None else int(k),
            t0=self.clock,
        )

    def on_subround(self, frontier_size: int) -> None:
        """A subround begins over ``frontier_size`` frontier vertices."""
        if self._round is None:
            self.on_round(None)
        self._close_subround()
        rnd = self._round
        assert rnd is not None
        self._subround_index += 1
        self._subround_t0 = self.clock
        self._subround_frontier = int(frontier_size)
        self._subround_open = True
        rnd.subrounds += 1
        rnd.frontier_total += int(frontier_size)
        if frontier_size > rnd.peak_frontier:
            rnd.peak_frontier = int(frontier_size)
        self.counter("frontier", float(frontier_size))

    def on_step(
        self,
        kind: str,
        work: float,
        span: float,
        barriers: int,
        tag: str,
        atomics: int = 0,
        max_contention: int = 0,
    ) -> None:
        """One ledger step: advance the simulated clock, record the event."""
        if self.threads == 1:
            duration = work
        else:
            compute, sync = step_time_parts(
                work, span, barriers, self._p_eff, self.model
            )
            duration = compute + sync
        t0 = self.clock
        self.clock = t0 + duration
        rnd = self._round
        self.steps.append(
            StepEvent(
                kind=kind,
                tag=tag,
                t0=t0,
                t1=self.clock,
                work=work,
                span=span,
                barriers=barriers,
                atomics=atomics,
                max_contention=max_contention,
                round_index=rnd.index if rnd is not None else 0,
                round_k=rnd.k if rnd is not None else None,
                subround_index=(
                    self._subround_index if self._subround_open else 0
                ),
            )
        )
        if rnd is not None:
            rnd.steps += 1
            rnd.work += work
            rnd.atomics += atomics
            if max_contention > rnd.max_contention:
                rnd.max_contention = max_contention
        if atomics:
            self.counter("contention", float(max_contention))

    def instant(self, name: str, **args: object) -> None:
        """Record a point event at the current simulated time.

        Known event names additionally feed the per-round telemetry:
        ``vgc_tasks`` (absorption counts, sampler traffic, kernel
        regime), ``sample_draw`` (hits/misses of the flat peel),
        ``sample_saturated``, ``resample``, ``validate``.
        """
        self.instants.append(InstantEvent(name, self.clock, dict(args)))
        rnd = self._round
        if rnd is None:
            return
        if name == "vgc_tasks":
            rnd.absorbed += int(args.get("absorbed", 0))
            rnd.sample_draws += int(args.get("sample_draws", 0))
            rnd.sample_hits += int(args.get("sample_hits", 0))
            rnd.saturated += int(args.get("saturated", 0))
            regime = args.get("regime")
            if regime:
                rnd.kernel_regimes.append(str(regime))
        elif name == "sample_draw":
            rnd.sample_draws += int(args.get("drawn", 0))
            rnd.sample_hits += int(args.get("hits", 0))
        elif name == "sample_saturated":
            rnd.saturated += int(args.get("count", 0))
        elif name == "resample":
            rnd.resamples += int(args.get("count", 0))
        elif name == "validate":
            rnd.validate_failures += int(args.get("failures", 0))

    def counter(self, name: str, value: float) -> None:
        """Sample a counter track at the current simulated time."""
        self.counters.append(CounterSample(name, self.clock, value))

    # ------------------------------------------------------------------
    # Caller-facing API
    # ------------------------------------------------------------------
    def host_span(
        self,
        name: str,
        wall_s: float,
        track: str = "bench",
        start_s: float | None = None,
        **args: object,
    ) -> None:
        """Record a *host* wall-clock span measured by the caller.

        The tracer itself never reads a clock (R006); benchmark code
        measures with :func:`repro.bench.wallclock.measure` and hands the
        elapsed seconds in.  ``track`` / ``start_s`` choose the host
        thread and an explicit offset on it (per-worker wall tracks).
        """
        self.host_spans.append(
            HostSpan(name, float(wall_s), dict(args), track, start_s)
        )

    def finish(self) -> None:
        """Close any open spans; idempotent."""
        if self._finished:
            return
        self._close_subround()
        self._close_round()
        self._finished = True

    def telemetry(self) -> list[dict[str, object]]:
        """Per-round telemetry as JSON-safe dicts (finishes the trace)."""
        self.finish()
        return [rnd.to_dict() for rnd in self.rounds]

    # ------------------------------------------------------------------
    def _close_subround(self) -> None:
        if not self._subround_open:
            return
        rnd = self._round
        assert rnd is not None
        self.spans.append(
            SpanRecord(
                kind="subround",
                name=f"subround {self._subround_index}",
                t0=self._subround_t0,
                t1=self.clock,
                args={
                    "index": self._subround_index,
                    "frontier": self._subround_frontier,
                    "round": rnd.index,
                    "k": rnd.k,
                },
            )
        )
        self._subround_open = False

    def _close_round(self) -> None:
        rnd = self._round
        if rnd is None:
            return
        rnd.t1 = self.clock
        name = f"round k={rnd.k}" if rnd.k is not None else (
            f"round {rnd.index}"
        )
        self.spans.append(
            SpanRecord(
                kind="round",
                name=name,
                t0=rnd.t0,
                t1=rnd.t1,
                args=rnd.to_dict(),
            )
        )
        self.rounds.append(rnd)
        self._round = None
