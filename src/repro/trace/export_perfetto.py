"""Chrome/Perfetto trace-event JSON exporter.

Produces the legacy Chrome trace-event format (the JSON flavour
ui.perfetto.dev and ``chrome://tracing`` both load): a ``traceEvents``
list of complete spans (``ph: "X"``), instants (``ph: "i"``) and counter
samples (``ph: "C"``), plus process/thread metadata (``ph: "M"``).

Track layout:

* pid 1 — the simulated core group (one work-stealing pool).  Rounds,
  subrounds and individual ledger steps live on three stacked threads so
  the nesting reads top-down; ``frontier`` and ``contention`` are
  counter tracks.
* pid 2 — the host: wall-clock spans injected by the benchmark runner
  (a different clock domain, deliberately a separate process track).

Timestamps: the simulated clock counts ops == nanoseconds; trace-event
``ts``/``dur`` are microseconds, so values are divided by 1000 (floats
are legal and keep the export bit-deterministic).

Pass ``registry=`` (a :class:`repro.obs.MetricsRegistry`) to add its
epoch marks as ``obs/<metric>`` counter tracks on the simulated
timeline, plus one final sample of every scalar ``sim`` metric at the
trace end — metrics and spans then correlate on one clock.  With no
registry the payload is byte-identical to the registry-less export.
"""

from __future__ import annotations

import json

from repro.trace.tracer import TRACE_SCHEMA_VERSION, Tracer

#: Process id of the simulated core-group tracks.
SIM_PID = 1
#: Process id of the host wall-clock tracks.
HOST_PID = 2

#: Thread ids inside the simulated process.
TID_ROUNDS = 1
TID_SUBROUNDS = 2
TID_STEPS = 3

_NS_PER_US = 1000.0


def _meta(pid: int, tid: int | None, key: str, name: str) -> dict:
    event: dict = {
        "name": key,
        "ph": "M",
        "pid": pid,
        "ts": 0,
        "args": {"name": name},
    }
    event["tid"] = 0 if tid is None else tid
    return event


def _registry_counter_events(registry, end_ts: float) -> list[dict]:
    """``obs/*`` counter samples from a registry's marks + final state."""
    events: list[dict] = []

    def sample(ts: float, values: dict[str, float]) -> None:
        for name in sorted(values):
            events.append(
                {
                    "name": f"obs/{name}",
                    "cat": "counter",
                    "ph": "C",
                    "ts": ts / _NS_PER_US,
                    "pid": SIM_PID,
                    "tid": 0,
                    "args": {"value": values[name]},
                }
            )

    for mark in registry.marks:
        sample(mark.ts, mark.values)
    snapshot = registry.to_snapshot()
    final = {
        name: metric["value"]
        for kind in ("counters", "gauges")
        for name, metric in snapshot["families"]["sim"][kind].items()
    }
    if final:
        last_ts = registry.marks[-1].ts if registry.marks else 0.0
        sample(max(float(end_ts), last_ts), final)
    return events


def to_perfetto(tracer: Tracer, registry=None) -> dict:
    """The full trace as a Chrome/Perfetto trace-event JSON object."""
    tracer.finish()
    events: list[dict] = [
        _meta(SIM_PID, None, "process_name",
              f"simulated @{tracer.threads} threads: {tracer.label}"),
        _meta(SIM_PID, TID_ROUNDS, "thread_name", "rounds"),
        _meta(SIM_PID, TID_SUBROUNDS, "thread_name", "subrounds"),
        _meta(SIM_PID, TID_STEPS, "thread_name", "steps"),
    ]
    host_tids: dict[str, int] = {}
    if tracer.host_spans:
        # Track "bench" is always tid 1; further tracks (the shard
        # engine's per-worker wall tracks) get tids in first-appearance
        # order, so the single-track layout is byte-identical to before.
        host_tids["bench"] = 1
        for host in tracer.host_spans:
            if host.track not in host_tids:
                host_tids[host.track] = len(host_tids) + 1
        events.append(_meta(HOST_PID, None, "process_name",
                            "host wall-clock"))
        for track, tid in host_tids.items():
            events.append(_meta(HOST_PID, tid, "thread_name", track))

    for span in tracer.spans:
        tid = TID_ROUNDS if span.kind == "round" else TID_SUBROUNDS
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.t0 / _NS_PER_US,
                "dur": (span.t1 - span.t0) / _NS_PER_US,
                "pid": SIM_PID,
                "tid": tid,
                "args": span.args,
            }
        )

    for step in tracer.steps:
        args: dict = {
            "kind": step.kind,
            "work": step.work,
            "span": step.span,
            "barriers": step.barriers,
            "round": step.round_index,
            "subround": step.subround_index,
        }
        if step.atomics:
            args["atomics"] = step.atomics
            args["max_contention"] = step.max_contention
        events.append(
            {
                "name": step.tag or step.kind,
                "cat": "step",
                "ph": "X",
                "ts": step.t0 / _NS_PER_US,
                "dur": (step.t1 - step.t0) / _NS_PER_US,
                "pid": SIM_PID,
                "tid": TID_STEPS,
                "args": args,
            }
        )

    for inst in tracer.instants:
        events.append(
            {
                "name": inst.name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": inst.ts / _NS_PER_US,
                "pid": SIM_PID,
                "tid": TID_STEPS,
                "args": inst.args,
            }
        )

    for sample in tracer.counters:
        events.append(
            {
                "name": sample.name,
                "cat": "counter",
                "ph": "C",
                "ts": sample.ts / _NS_PER_US,
                "pid": SIM_PID,
                "tid": 0,
                "args": {"value": sample.value},
            }
        )

    if registry is not None:
        events.extend(_registry_counter_events(registry, tracer.clock))

    host_cursor: dict[str, float] = {}
    for host in tracer.host_spans:
        dur_us = host.wall_s * 1e6
        ts = (
            host.start_s * 1e6
            if host.start_s is not None
            else host_cursor.get(host.track, 0.0)
        )
        events.append(
            {
                "name": host.name,
                "cat": "host",
                "ph": "X",
                "ts": ts,
                "dur": dur_us,
                "pid": HOST_PID,
                "tid": host_tids[host.track],
                "args": dict(host.args, wall_s=host.wall_s),
            }
        )
        host_cursor[host.track] = ts + dur_us

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "label": tracer.label,
            "threads": tracer.threads,
            "attempts": tracer.attempts,
            "clock_domain": "simulated ops (=ns); ts/dur in us",
            "simulated_ns": tracer.clock,
            "rounds": len(tracer.rounds),
            "model_signature": (
                tracer.model.signature() if tracer.model is not None else {}
            ),
        },
    }


def render_perfetto(tracer: Tracer, registry=None) -> str:
    """The Perfetto JSON serialized with a stable key order."""
    return json.dumps(
        to_perfetto(tracer, registry=registry), indent=1, sort_keys=True
    )


def write_trace(tracer: Tracer, path: str, registry=None) -> str:
    """Write the Perfetto JSON to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_perfetto(tracer, registry=registry))
        handle.write("\n")
    return path
