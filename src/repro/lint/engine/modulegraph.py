"""Module discovery, naming, and import-edge resolution.

A lint run hands the engine a set of files; this module turns each into
a :class:`Module` (path, source, AST, content hash) under a dotted name
(``repro.core.peel_online``, ``tests.test_lint``), and resolves the
``import`` statements between them so the call graph and the cache can
follow cross-module edges.

Names are derived purely from paths: everything after a ``src``
component is a package path, and the well-known repository roots
(``tests``/``benchmarks``/``examples``/``tools``) anchor their own
namespaces.  The scheme is what lets the engine work identically on the
real tree and on the synthetic trees the test suite builds under
``tmp_path``.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

#: Repository roots that anchor a namespace without being packages.
_ANCHORS = ("tests", "benchmarks", "examples", "tools")


def module_name_for(path: str | Path) -> str:
    """Dotted module name for ``path`` (see module docstring)."""
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return "<string>"
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[idx + 1 :]
        if tail:
            return ".".join(tail)
    for anchor in _ANCHORS:
        if anchor in parts:
            return ".".join(parts[parts.index(anchor) :])
    if "repro" in parts:
        return ".".join(parts[parts.index("repro") :])
    return parts[-1]


def content_sha(source: str) -> str:
    """The sha256 hex digest of a module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class Module:
    """One parsed module of the program under analysis.

    Attributes:
        path: The file's path as given to the runner (verbatim, so
            findings match what the user typed).
        name: Dotted module name (:func:`module_name_for`).
        source: Full source text.
        tree: Parsed ``ast.Module``.
        sha: sha256 of ``source`` (the cache key component).
        import_aliases: Local name -> imported dotted target.  Module
            imports map to the module's dotted name (``np`` ->
            ``numpy``); ``from`` imports map to the *symbol's* dotted
            name (``measure`` -> ``repro.bench.wallclock.measure``).
        imported_modules: Dotted names of every module mentioned in an
            import statement (before project filtering).
    """

    path: str
    name: str
    source: str
    tree: ast.Module
    sha: str
    import_aliases: dict[str, str] = field(default_factory=dict)
    imported_modules: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str | Path, source: str) -> "Module":
        """Parse one module; raises ``SyntaxError`` on broken files."""
        tree = ast.parse(source, filename=str(path))
        module = cls(
            path=str(path),
            name=module_name_for(path),
            source=source,
            tree=tree,
            sha=content_sha(source),
        )
        module._collect_imports()
        return module

    # ------------------------------------------------------------------
    def _package(self) -> str:
        """The package this module lives in (its name minus the leaf)."""
        head, _, _ = self.name.rpartition(".")
        return head

    def _collect_imports(self) -> None:
        """Fill the alias table from every import in the AST.

        Function-local imports count too: the call graph follows them
        (``from repro.perf import native`` inside a kernel selector is
        a real dependency edge).
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.import_aliases[local] = target
                    self.imported_modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: resolve against our package.
                    pkg_parts = self._package().split(".") if self._package() else []
                    if node.level - 1:
                        pkg_parts = pkg_parts[: -(node.level - 1)] if node.level - 1 <= len(pkg_parts) else []
                    prefix = ".".join(pkg_parts)
                    base = f"{prefix}.{base}".strip(".") if base else prefix
                if not base:
                    continue
                self.imported_modules.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.import_aliases[local] = f"{base}.{alias.name}"

    def project_imports(self, known: set[str]) -> set[str]:
        """Names of *project* modules this module depends on.

        ``known`` is the name set of the current program.  A ``from a.b
        import c`` resolves to module ``a.b.c`` when that is itself a
        project module (subpackage import), else to module ``a.b``.
        """
        deps: set[str] = set()
        for target in self.imported_modules:
            if target in known:
                deps.add(target)
                continue
            # Importing a package pulls in its __init__ ancestors too.
            head, _, _ = target.rpartition(".")
            while head:
                if head in known:
                    deps.add(head)
                    break
                head, _, _ = head.rpartition(".")
        for target in self.import_aliases.values():
            if target in known:
                deps.add(target)
                continue
            head, _, _ = target.rpartition(".")
            if head in known:
                deps.add(head)
        deps.discard(self.name)
        return deps
