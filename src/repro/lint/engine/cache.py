"""Content-hash incremental cache for lint findings.

The engine's analyses are whole-program, but their *results* are
per-module, and a module's findings can only change when something in
its dependency closure changes.  The cache exploits that: each entry
records the module's content sha, the names in its closure, and a
digest over the closure's (name, sha) pairs.  On the next run a module
whose closure digest still matches is **clean** — its stored findings
are replayed without parsing the file, let alone re-running rules.

Dirty modules still need full context: the runner parses the union of
their closures so the call graph and taint summaries they depend on are
rebuilt exactly, then re-runs rules on the dirty modules only.

The cache lives in one JSON file (default ``.lint-cache/findings.json``)
and is keyed by an engine version string, so any change to the analysis
code invalidates everything at once.  Caching is skipped when a rule
subset is selected: entries always describe a full-rule run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.finding import Finding

#: Bump when analysis semantics change; invalidates every entry.
ENGINE_VERSION = "repro-lint-engine/2"


@dataclass
class CacheEntry:
    """Stored per-module results of the last full-rule run."""

    path: str
    module: str
    sha: str
    closure: list[str]
    closure_sha: str
    findings: list[Finding] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "sha": self.sha,
            "closure": sorted(self.closure),
            "closure_sha": self.closure_sha,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheEntry":
        return cls(
            path=data["path"],
            module=data["module"],
            sha=data["sha"],
            closure=list(data["closure"]),
            closure_sha=data["closure_sha"],
            findings=[
                Finding(
                    path=item["path"],
                    line=int(item["line"]),
                    col=int(item["col"]),
                    rule_id=item["rule"],
                    message=item["message"],
                )
                for item in data["findings"]
            ],
        )


class LintCache:
    """Load/validate/store the single-file findings cache."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_file = Path(cache_dir) / "findings.json"
        self.entries: dict[str, CacheEntry] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.cache_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if data.get("engine") != ENGINE_VERSION:
            return
        for name, raw in data.get("modules", {}).items():
            try:
                self.entries[name] = CacheEntry.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue

    def valid_entry(
        self, name: str, shas: dict[str, str]
    ) -> CacheEntry | None:
        """The stored entry for module ``name`` if still trustworthy.

        ``shas`` maps every module name of the *current* run to its
        content sha (computed without parsing).  The entry is valid when
        the module's own sha matches and every closure member hashes to
        what the stored closure digest was computed from — which the
        runner checks by recomputing the digest over current shas.  A
        closure member that vanished from the run invalidates the entry.
        """
        entry = self.entries.get(name)
        if entry is None or shas.get(name) != entry.sha:
            return None
        if any(member not in shas for member in entry.closure):
            return None
        recomputed = closure_digest(
            {member: shas[member] for member in entry.closure}
        )
        if recomputed != entry.closure_sha:
            return None
        return entry

    def store(self, entry: CacheEntry) -> None:
        self.entries[entry.module] = entry

    def write(self) -> None:
        """Persist atomically (best effort; a failed write is not fatal)."""
        payload = {
            "engine": ENGINE_VERSION,
            "modules": {
                name: entry.to_dict()
                for name, entry in sorted(self.entries.items())
            },
        }
        try:
            self.cache_file.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.cache_file.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(payload, indent=1, sort_keys=True),
                encoding="utf-8",
            )
            tmp.replace(self.cache_file)
        except OSError:
            pass


def closure_digest(shas: dict[str, str]) -> str:
    """Digest over sorted (module, sha) pairs — must match Program's."""
    import hashlib

    digest = hashlib.sha256()
    for member, sha in sorted(shas.items()):
        digest.update(f"{member}={sha}\n".encode("utf-8"))
    return digest.hexdigest()
