"""The whole-program view rules query: modules, symbols, graphs.

A :class:`Program` owns every parsed :class:`Module` of one lint run and
lazily builds the layers on top — per-module symbol tables, the resolved
call graph with its charge/contention fixpoints, and the taint dataflow.
Rules receive it through ``ModuleContext.program`` and ask questions
("can this function reach a ledger charge?", "does wall-clock taint
enter this record call?") instead of re-implementing per-file
heuristics.

Dependency closures live here too: :meth:`Program.closure_sha` digests a
module's import closure (plus the :data:`ANALYSIS_COUPLINGS` edges that
cross-file rules like R007 add), which is exactly the cache key the
incremental runner needs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.lint.engine.callgraph import CallGraph
from repro.lint.engine.dataflow import TaintAnalysis
from repro.lint.engine.modulegraph import Module
from repro.lint.engine.symbols import SymbolTable, build_symbols

#: Extra dependency edges for analyses that read across files without an
#: import to witness it.  R007 checks the embedded C kernel in
#: ``repro.perf.native`` against the Python cost model, so a cost-model
#: edit must invalidate native's cached findings (and the closed-form
#: check in kernels depends on both).
ANALYSIS_COUPLINGS: dict[str, frozenset[str]] = {
    "repro.perf.native": frozenset({"repro.runtime.cost_model"}),
    "repro.perf.kernels": frozenset(
        {"repro.perf.native", "repro.runtime.cost_model"}
    ),
}


class Program:
    """Every module of one lint run plus the derived analyses."""

    def __init__(self, modules: Iterable[Module]) -> None:
        self.modules: dict[str, Module] = {}
        for module in modules:
            self.modules[module.name] = module
        self._symbols: dict[str, SymbolTable] = {}
        self._callgraph: CallGraph | None = None
        self._taint: TaintAnalysis | None = None
        self._deps: dict[str, frozenset[str]] | None = None
        self._closures: dict[str, frozenset[str]] = {}

    # -- modules and symbols -------------------------------------------
    def module_named(self, name: str) -> Module | None:
        return self.modules.get(name)

    def symbols_for(self, name: str) -> SymbolTable | None:
        """The symbol table of module ``name`` (built on first use)."""
        if name not in self.modules:
            return None
        table = self._symbols.get(name)
        if table is None:
            table = build_symbols(self.modules[name])
            self._symbols[name] = table
        return table

    def symbol_tables(self) -> list[SymbolTable]:
        return [
            table
            for name in sorted(self.modules)
            if (table := self.symbols_for(name)) is not None
        ]

    def functions_in(self, name: str):
        """Every FunctionInfo defined in module ``name``."""
        table = self.symbols_for(name)
        return list(table.all_functions) if table is not None else []

    # -- derived analyses ----------------------------------------------
    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self)
        return self._callgraph

    @property
    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = TaintAnalysis(self)
        return self._taint

    def can_charge(self, func) -> bool:
        """Charge reachability, the R001 question (see CallGraph)."""
        return self.callgraph.can_charge(func)

    # -- dependency closures -------------------------------------------
    def deps(self, name: str) -> frozenset[str]:
        """Project modules whose content can affect findings in ``name``."""
        if self._deps is None:
            known = set(self.modules)
            self._deps = {}
            for mod_name, module in self.modules.items():
                deps = set(module.project_imports(known))
                deps |= ANALYSIS_COUPLINGS.get(mod_name, frozenset()) & known
                self._deps[mod_name] = frozenset(deps)
        return self._deps.get(name, frozenset())

    def closure(self, name: str) -> frozenset[str]:
        """``name`` plus the transitive dependency set."""
        cached = self._closures.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.deps(current))
        result = frozenset(seen)
        self._closures[name] = result
        return result

    def closure_sha(self, name: str) -> str:
        """Digest of the (module, content-sha) pairs in the closure."""
        from repro.lint.engine.cache import closure_digest

        return closure_digest(
            {
                member: self.modules[member].sha
                for member in self.closure(name)
                if member in self.modules
            }
        )


def build_program(modules: Iterable[Module]) -> Program:
    """Build a :class:`Program` from already-parsed modules."""
    return Program(modules)
