"""Whole-program analysis engine for :mod:`repro.lint`.

The v1 rules were per-file AST walks: they could see a call *appear*
but never what it resolved to, so the exact bug class they exist to
catch — a charge-free path reachable through one level of indirection —
escaped them, and they papered over the hole with "forwards the
runtime" heuristics.  This package gives the rules a program to reason
about instead of a file:

* :mod:`~repro.lint.engine.modulegraph` — discovers the modules of a
  lint run, names them, and resolves ``import`` edges between them;
* :mod:`~repro.lint.engine.symbols` — per-module symbol tables:
  functions, classes and their methods, import aliases;
* :mod:`~repro.lint.engine.callgraph` — resolves call expressions to
  project functions (direct calls, aliased imports, ``self`` methods,
  locally constructed objects, higher-order callbacks) and computes the
  charge-reachability and contended-parameter fixpoints the rules ask
  about;
* :mod:`~repro.lint.engine.dataflow` — a small forward taint framework:
  wall-clock, RNG and unordered-iteration sources propagate through
  assignments, calls and returns to the ledger/metrics sinks;
* :mod:`~repro.lint.engine.cache` — a sha256 content-keyed per-module
  findings cache (same idiom as the graph and bench caches) that keeps
  warm ``make lint`` runs fast.

Everything stays syntactic: the engine parses the checked code, it
never imports it.
"""

from repro.lint.engine.modulegraph import Module, module_name_for
from repro.lint.engine.program import Program, build_program

__all__ = ["Module", "Program", "build_program", "module_name_for"]
