"""Per-module symbol tables: functions, classes, methods, attributes.

The call graph resolves names against these tables.  Everything is
collected in one AST pass per module; qualified names follow the
``module.Class.method`` convention so findings and tests can talk about
functions unambiguously.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint import astutil
from repro.lint.engine.modulegraph import Module


@dataclass
class FunctionInfo:
    """One function or method definition.

    Attributes:
        node: The ``ast.FunctionDef`` / ``AsyncFunctionDef``.
        module: Name of the defining module.
        name: Bare function name.
        qualname: ``module.[Class.]name``.
        class_name: Enclosing class name for methods, else ``None``.
        param_names: Positional parameter names in declaration order
            (used to map call arguments onto parameters).
    """

    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: str
    name: str
    qualname: str
    class_name: str | None = None

    @property
    def param_names(self) -> list[str]:
        return [arg.arg for arg in astutil.all_parameters(self.node)]


@dataclass
class ClassInfo:
    """One class definition and what the resolver needs from it.

    Attributes:
        node: The ``ast.ClassDef``.
        module: Name of the defining module.
        name: Bare class name.
        qualname: ``module.name``.
        bases: Source-level base expressions as dotted names (unresolved;
            the resolver chases them through import aliases).
        methods: Bare method name -> :class:`FunctionInfo`.
        attr_types: ``self.<attr>`` name -> dotted name of the class
            expression it was assigned from (``self.bag = HashBag(...)``
            records ``bag -> HashBag``), best-effort.
    """

    node: ast.ClassDef
    module: str
    name: str
    qualname: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class SymbolTable:
    """Everything name-resolvable defined by one module."""

    module: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Top-level ``alias = existing_function`` bindings.
    function_aliases: dict[str, str] = field(default_factory=dict)
    #: Every FunctionInfo in the module, including nested defs.
    all_functions: list[FunctionInfo] = field(default_factory=list)

    def lookup(self, name: str) -> FunctionInfo | ClassInfo | None:
        """A top-level definition by bare name."""
        if name in self.functions:
            return self.functions[name]
        if name in self.classes:
            return self.classes[name]
        alias = self.function_aliases.get(name)
        if alias is not None and alias in self.functions:
            return self.functions[alias]
        return None


def build_symbols(module: Module) -> SymbolTable:
    """Collect the symbol table of one parsed module."""
    table = SymbolTable(module=module.name)

    def visit_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        prefix: str,
    ) -> FunctionInfo:
        info = FunctionInfo(
            node=node,
            module=module.name,
            name=node.name,
            qualname=f"{prefix}.{node.name}",
            class_name=class_name,
        )
        table.all_functions.append(info)
        # Nested defs are recorded (so per-function analyses see them)
        # but not top-level-resolvable.
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(child, class_name, info.qualname)
        return info

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.functions[node.name] = visit_function(
                node, None, module.name
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                node=node,
                module=module.name,
                name=node.name,
                qualname=f"{module.name}.{node.name}",
                bases=[
                    dotted
                    for base in node.bases
                    if (dotted := astutil.dotted_name(base)) is not None
                ],
            )
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[child.name] = visit_function(
                        child, node.name, cls.qualname
                    )
            _collect_attr_types(cls)
            table.classes[node.name] = cls
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Name
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    table.function_aliases[target.id] = node.value.id
    return table


def _collect_attr_types(cls: ClassInfo) -> None:
    """Record ``self.<attr> = SomeClass(...)`` constructor bindings."""
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            callee = astutil.dotted_name(value.func)
            if callee is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_types.setdefault(target.attr, callee)
