"""Forward taint dataflow: nondeterminism sources to ledger sinks.

The determinism rules' v1 form flagged nondeterminism *where the call
textually appears*.  That is right for hard bans (wall clocks, global
RNG) but wrong for the sources that are only a problem when they reach
the accounting: iterating a ``set`` is fine for membership bookkeeping
and silently result-corrupting when the iteration order decides what
enters a ledger, a golden, or a float reduction.

This module implements a small forward taint framework over the
resolved call graph:

* **Sources** produce :class:`Taint` values — ``wall-clock`` (the
  ``time`` module's clock reads), ``rng`` (legacy ``np.random.*``, the
  ``random`` module, unseeded ``default_rng()``), and
  ``unordered-iter`` (iterating a ``set``/``frozenset``/``dict`` or a
  dict view; also float reductions like ``sum()`` over such an
  iteration, whose result depends on visit order).
* **Propagation** follows assignments (including tuple unpacking and
  augmented assigns), container writes, comprehensions, arithmetic, and
  *calls*: resolved project calls substitute the callee's return-taint
  summary (parameter markers map caller arguments into the callee),
  unresolved calls conservatively union their argument taints.
* **Sanitizers** strip the ``unordered-iter`` kind: ``sorted()``,
  ``np.sort`` / ``np.unique`` / ``np.argsort``, ``min`` / ``max``, and
  comparisons (membership tests are order-insensitive).
* **Sinks** are where the rules fire: the argument expressions of
  ledger charges (``parallel_for`` / ``sequential`` / ... /
  ``record_*``) and assignments through ``.metrics.``.

Summaries are computed to a fixpoint across the whole program, so a
source two calls away from its sink is still caught — the
interprocedural upgrade ISSUE 6 asks R003/R006 to stand on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint import astutil

#: Taint kinds (plus internal ``param:<i>`` markers used in summaries).
WALL_CLOCK = "wall-clock"
RNG = "rng"
UNORDERED = "unordered-iter"

#: Call names (after alias expansion) that strip ``unordered-iter``.
_SANITIZERS = frozenset(
    {
        "sorted",
        "min",
        "max",
        "len",
        "numpy.sort",
        "numpy.unique",
        "numpy.argsort",
        "numpy.lexsort",
    }
)

#: Builtin constructors that produce unordered containers.
_UNORDERED_CONSTRUCTORS = {"set": "set", "frozenset": "set", "dict": "dict"}

#: Reductions whose float result depends on operand order; they
#: *preserve* unordered taint (the float-reduction-order source).
_ORDER_SENSITIVE_REDUCTIONS = frozenset({"sum", "numpy.sum", "math.fsum"})

_MAX_TAINTS = 8  # per-expression cap; keeps worst-case cost bounded


@dataclass(frozen=True, order=True)
class Taint:
    """One nondeterminism source (or a parameter marker in summaries)."""

    kind: str
    origin_path: str = ""
    origin_line: int = 0
    note: str = ""

    @property
    def is_param(self) -> bool:
        return self.kind.startswith("param:")


@dataclass(frozen=True)
class SinkHit:
    """A tainted value reaching a ledger/metrics sink."""

    node: ast.AST
    sink: str
    taints: frozenset[Taint]


def _cap(taints: set[Taint]) -> frozenset[Taint]:
    if len(taints) <= _MAX_TAINTS:
        return frozenset(taints)
    return frozenset(sorted(taints)[:_MAX_TAINTS])


class TaintAnalysis:
    """Whole-program fixpoint plus per-function sink evaluation."""

    def __init__(self, program) -> None:
        self._program = program
        self._graph = program.callgraph
        #: qualname -> frozenset[Taint] flowing out of the return value.
        self.summaries: dict[str, frozenset[Taint]] = {}
        #: id(ast.Call) -> CallSite, for resolved-call substitution.
        self._sites = {
            id(site.call): site
            for sites in self._graph.calls.values()
            for site in sites
        }
        self._module_env: dict[str, tuple[set[str], set[str]]] = {}
        #: qualname -> parameter indices whose value reaches a sink
        #: inside the function (or transitively through further calls).
        self.sink_params: dict[str, frozenset[int]] = {}
        self._fixpoint()
        self._sink_param_fixpoint()

    def _time_env(self, module_name: str) -> tuple[set[str], set[str]]:
        env = self._module_env.get(module_name)
        if env is None:
            module = self._program.module_named(module_name)
            env = (
                astutil.time_aliases(module.tree)
                if module is not None
                else (set(), set())
            )
            self._module_env[module_name] = env
        return env

    def _fixpoint(self) -> None:
        functions = self._graph.functions
        for qualname in functions:
            self.summaries[qualname] = frozenset()
        for _ in range(8):
            changed = False
            for qualname, info in functions.items():
                walker = _FunctionWalker(self, info, collect_sinks=False)
                returns = walker.run()
                if returns != self.summaries[qualname]:
                    self.summaries[qualname] = returns
                    changed = True
            if not changed:
                break

    def _sink_param_fixpoint(self) -> None:
        """Which parameters flow into a sink, transitively.

        A parameter marker surviving into a sink's taint set means the
        caller's argument is what gets charged — so the *call site* is
        where a tainted argument should be reported.  The walker
        consults ``sink_params`` for resolved callees, which makes this
        a fixpoint over call chains of any depth.
        """
        functions = self._graph.functions
        for qualname in functions:
            self.sink_params[qualname] = frozenset()
        for _ in range(8):
            changed = False
            for qualname, info in functions.items():
                walker = _FunctionWalker(self, info, collect_sinks=True)
                walker.run()
                params = frozenset(
                    int(taint.kind.split(":", 1)[1])
                    for hit in walker.sinks
                    for taint in hit.taints
                    if taint.is_param
                )
                if params != self.sink_params[qualname]:
                    self.sink_params[qualname] = params
                    changed = True
            if not changed:
                break

    def sink_hits(self, info) -> list[SinkHit]:
        """Tainted-sink occurrences inside one function (final pass)."""
        walker = _FunctionWalker(self, info, collect_sinks=True)
        walker.run()
        return walker.sinks


class _FunctionWalker:
    """One abstract interpretation pass over a function body."""

    def __init__(
        self, analysis: TaintAnalysis, info, collect_sinks: bool
    ) -> None:
        self._analysis = analysis
        self._info = info
        self._collect = collect_sinks
        self._module = analysis._program.module_named(info.module)
        self._aliases = (
            self._module.import_aliases if self._module is not None else {}
        )
        self._path = self._module.path if self._module is not None else ""
        self._time_modules, self._clock_names = analysis._time_env(
            info.module
        )
        self.env: dict[str, frozenset[Taint]] = {}
        self.containers: dict[str, str] = {}
        self.sinks: list[SinkHit] = []
        self._seen_sinks: set[tuple[int, str]] = set()

    # -- driver --------------------------------------------------------
    def run(self) -> frozenset[Taint]:
        params = self._info.param_names
        for i, name in enumerate(params):
            self.env[name] = frozenset({Taint(kind=f"param:{i}")})
        returns: set[Taint] = set()
        # Two passes propagate loop-carried taint through simple cycles.
        for _ in range(2):
            self._returns: set[Taint] = set()
            self._block(self._info.node.body)
            returns = self._returns
        return _cap(returns)

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    # -- statements ----------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are analyzed as their own functions
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            taints, container = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, container)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taints, container = self._expr(stmt.value)
            self._assign(stmt.target, taints, container)
        elif isinstance(stmt, ast.AugAssign):
            taints, _ = self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = set(self.env.get(stmt.target.id, frozenset()))
                merged |= taints
                self.env[stmt.target.id] = _cap(merged)
            else:
                self._assign(stmt.target, taints, None)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taints, _ = self._expr(stmt.value)
                self._returns |= taints
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taints, container = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints, container)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _for(self, stmt: ast.For) -> None:
        taints, container = self._expr(stmt.iter)
        element = set(taints)
        if container in ("set", "dict"):
            element.add(
                Taint(
                    kind=UNORDERED,
                    origin_path=self._path,
                    origin_line=getattr(stmt.iter, "lineno", stmt.lineno),
                    note=f"iteration over a {container} has no defined order",
                )
            )
        self._assign(stmt.target, _cap(element), None)
        self._block(stmt.body)
        self._block(stmt.body)
        self._block(stmt.orelse)

    def _assign(
        self,
        target: ast.expr,
        taints: frozenset[Taint],
        container: str | None,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taints
            if container is not None:
                self.containers[target.id] = container
            else:
                self.containers.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints, None)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taints, None)
        elif isinstance(target, ast.Subscript):
            # Writing a tainted value into a container taints it; the
            # *index* being unordered does not (distinct-target writes
            # commute), but rng/clock-derived indices do.
            base = target.value
            index_taints, _ = self._expr(target.slice)
            value_taints = set(taints) | {
                taint
                for taint in index_taints
                if taint.kind in (WALL_CLOCK, RNG)
            }
            if isinstance(base, ast.Name) and value_taints:
                merged = set(self.env.get(base.id, frozenset()))
                merged |= value_taints
                self.env[base.id] = _cap(merged)
            if self._collect:
                self._check_metrics_sink(target, taints)
        elif isinstance(target, ast.Attribute):
            if self._collect:
                self._check_metrics_sink(target, taints)

    def _check_metrics_sink(
        self, target: ast.expr, taints: frozenset[Taint]
    ) -> None:
        dotted = astutil.dotted_name(
            target.value if isinstance(target, ast.Subscript) else target
        )
        if dotted is None or ".metrics." not in dotted + ".":
            return
        if taints:
            self._sink(target, f"assignment to '{dotted}'", taints)

    # -- expressions ---------------------------------------------------
    def _expr(self, node: ast.expr) -> tuple[frozenset[Taint], str | None]:
        method = getattr(
            self, f"_expr_{type(node).__name__.lower()}", None
        )
        if method is not None:
            return method(node)
        # Default: union over child expressions.
        taints: set[Taint] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                child_taints, _ = self._expr(child)
                taints |= child_taints
        return _cap(taints), None

    def _expr_constant(self, node: ast.Constant):
        return frozenset(), None

    def _expr_name(self, node: ast.Name):
        return (
            self.env.get(node.id, frozenset()),
            self.containers.get(node.id),
        )

    def _expr_set(self, node: ast.Set):
        taints: set[Taint] = set()
        for element in node.elts:
            element_taints, _ = self._expr(element)
            taints |= element_taints
        return _cap(taints), "set"

    def _expr_dict(self, node: ast.Dict):
        taints: set[Taint] = set()
        for key in [*node.keys, *node.values]:
            if key is not None:
                key_taints, _ = self._expr(key)
                taints |= key_taints
        return _cap(taints), "dict"

    def _expr_compare(self, node: ast.Compare):
        # Comparison results (including membership tests) are
        # order-insensitive booleans: strip unordered-iter taint.
        taints: set[Taint] = set()
        for child in [node.left, *node.comparators]:
            child_taints, _ = self._expr(child)
            taints |= child_taints
        return (
            _cap({t for t in taints if t.kind != UNORDERED}),
            None,
        )

    def _expr_binop(self, node: ast.BinOp):
        left, left_container = self._expr(node.left)
        right, right_container = self._expr(node.right)
        container = (
            "set"
            if left_container == "set" and right_container == "set"
            else None
        )
        return _cap(set(left) | set(right)), container

    def _expr_attribute(self, node: ast.Attribute):
        return self._expr(node.value)[0], None

    def _comprehension(self, generators, elements) -> tuple[frozenset[Taint], set[Taint]]:
        """Shared comprehension handling; returns (element taints, iter taints)."""
        iter_taints: set[Taint] = set()
        for comp in generators:
            taints, container = self._expr(comp.iter)
            iter_taints |= taints
            if container in ("set", "dict"):
                iter_taints.add(
                    Taint(
                        kind=UNORDERED,
                        origin_path=self._path,
                        origin_line=getattr(comp.iter, "lineno", 0),
                        note=(
                            f"comprehension over a {container} has no "
                            "defined order"
                        ),
                    )
                )
            self._assign(comp.target, _cap(iter_taints), None)
            for cond in comp.ifs:
                self._expr(cond)
        element_taints: set[Taint] = set(iter_taints)
        for element in elements:
            taints, _ = self._expr(element)
            element_taints |= taints
        return _cap(element_taints), iter_taints

    def _expr_listcomp(self, node: ast.ListComp):
        taints, _ = self._comprehension(node.generators, [node.elt])
        return taints, None

    def _expr_generatorexp(self, node: ast.GeneratorExp):
        taints, _ = self._comprehension(node.generators, [node.elt])
        return taints, None

    def _expr_setcomp(self, node: ast.SetComp):
        taints, _ = self._comprehension(node.generators, [node.elt])
        return taints, "set"

    def _expr_dictcomp(self, node: ast.DictComp):
        taints, _ = self._comprehension(
            node.generators, [node.key, node.value]
        )
        return taints, "dict"

    def _expr_lambda(self, node: ast.Lambda):
        return frozenset(), None

    # -- calls ---------------------------------------------------------
    def _canonical(self, name: str) -> str:
        """Expand the leading import alias of a dotted name."""
        head, _, rest = name.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target

    def _expr_call(self, node: ast.Call):
        arg_taints: set[Taint] = set()
        containers: list[str | None] = []
        for value in [*node.args, *[kw.value for kw in node.keywords]]:
            taints, container = self._expr(value)
            arg_taints |= taints
            containers.append(container)

        name = astutil.call_name(node)
        canonical = self._canonical(name) if name is not None else None
        site = self._analysis._sites.get(id(node))

        if self._collect and name is not None:
            self._check_charge_sink(node, arg_taints)
        if self._collect and site is not None and site.targets:
            self._check_forwarded_sinks(node, site)

        # Sources -------------------------------------------------------
        source = self._source_taint(node, name, canonical)
        if source is not None:
            return _cap(arg_taints | {source}), None

        if canonical is not None:
            tail = canonical.rsplit(".", 1)[-1]
            # Sanitizers strip the unordered kind.
            if canonical in _SANITIZERS or tail == "sorted":
                return (
                    _cap(
                        {t for t in arg_taints if t.kind != UNORDERED}
                    ),
                    None,
                )
            # Order-sensitive float reductions preserve it (and are the
            # float-reduction-order source when fed an unordered iter).
            if canonical in _ORDER_SENSITIVE_REDUCTIONS:
                return _cap(arg_taints), None
            # Unordered-container constructors.
            if canonical in _UNORDERED_CONSTRUCTORS:
                return _cap(arg_taints), _UNORDERED_CONSTRUCTORS[canonical]
            # Dict views: d.keys()/values()/items() on a known dict.
            if "." in name and tail in ("keys", "values", "items"):
                base = name.rsplit(".", 1)[0]
                if self.containers.get(base) == "dict":
                    base_taints = self.env.get(base, frozenset())
                    return _cap(arg_taints | set(base_taints)), "dict"

        # Resolved project calls: substitute the callee summary.
        if site is not None and site.targets:
            result: set[Taint] = set()
            for target in site.targets:
                result |= self._substitute(node, target)
            return _cap(result), None

        # Unresolved: union of base-object and argument taints.
        base_taints: frozenset[Taint] = frozenset()
        if isinstance(node.func, ast.Attribute):
            base_taints, _ = self._expr(node.func.value)
        return _cap(arg_taints | set(base_taints)), None

    def _substitute(self, call: ast.Call, target) -> set[Taint]:
        summary = self._analysis.summaries.get(target.qualname, frozenset())
        params = target.param_names
        shift = (
            1
            if target.class_name is not None
            and params[:1] == ["self"]
            and not _is_static_reference(call)
            else 0
        )
        out: set[Taint] = set()
        for taint in summary:
            if not taint.is_param:
                out.add(taint)
                continue
            index = int(taint.kind.split(":", 1)[1])
            expr = None
            arg_pos = index - shift
            if 0 <= arg_pos < len(call.args):
                expr = call.args[arg_pos]
            elif 0 <= index < len(params):
                expr = astutil.keyword_value(call, params[index])
            if expr is not None:
                expr_taints, _ = self._expr(expr)
                out |= expr_taints
        return {t for t in out if not t.is_param}

    def _source_taint(
        self, node: ast.Call, name: str | None, canonical: str | None
    ) -> Taint | None:
        if name is None:
            return None
        line = getattr(node, "lineno", 0)
        head, _, tail = name.rpartition(".")
        if (head in self._time_modules and tail in astutil.CLOCK_FUNCTIONS) or (
            not head and name in self._clock_names
        ):
            return Taint(WALL_CLOCK, self._path, line, f"{name}()")
        if canonical is None:
            return None
        if canonical == "random" or canonical.startswith("random."):
            return Taint(RNG, self._path, line, f"{name}()")
        if canonical.startswith("numpy.random."):
            attr = canonical[len("numpy.random."):].split(".", 1)[0]
            if attr == "default_rng":
                unseeded = (not node.args and not node.keywords) or (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded:
                    return Taint(
                        RNG, self._path, line, "unseeded default_rng()"
                    )
                return None
            if attr not in astutil.GENERATOR_API:
                return Taint(RNG, self._path, line, f"{name}()")
        return None

    def _check_charge_sink(
        self, node: ast.Call, arg_taints: set[Taint]
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if attr not in astutil.CHARGE_METHODS and not attr.startswith(
            "record_"
        ):
            return
        if arg_taints:
            self._sink(node, f"{attr}()", frozenset(arg_taints))

    def _check_forwarded_sinks(self, node: ast.Call, site) -> None:
        """Report tainted arguments that a resolved callee charges."""
        for target in site.targets:
            indices = self._analysis.sink_params.get(
                target.qualname, frozenset()
            )
            if not indices:
                continue
            params = target.param_names
            shift = (
                1
                if target.class_name is not None
                and params[:1] == ["self"]
                and not _is_static_reference(node)
                else 0
            )
            for index in sorted(indices):
                expr = None
                arg_pos = index - shift
                if 0 <= arg_pos < len(node.args):
                    expr = node.args[arg_pos]
                elif 0 <= index < len(params):
                    expr = astutil.keyword_value(node, params[index])
                if expr is None:
                    continue
                taints, _ = self._expr(expr)
                if taints:
                    self._sink(
                        node,
                        f"argument to {target.name}() (charges the ledger)",
                        taints,
                    )

    def _sink(
        self, node: ast.AST, sink: str, taints: frozenset[Taint]
    ) -> None:
        key = (id(node), sink)
        if key in self._seen_sinks:
            return
        self._seen_sinks.add(key)
        self.sinks.append(SinkHit(node=node, sink=sink, taints=taints))


def _is_static_reference(call: ast.Call) -> bool:
    """Whether ``call`` invokes ``Class.method(...)`` unbound (no self)."""
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id[:1].isupper()
    )
