"""Call resolution and the interprocedural fixpoints built on it.

The resolver maps a call expression inside a given function to the
project :class:`~repro.lint.engine.symbols.FunctionInfo` objects it may
invoke.  Resolution is deliberately best-effort and *syntactic* — the
engine never imports checked code — but it covers the shapes this
codebase actually uses:

* direct calls to module-level functions (``helper(...)``);
* calls through import aliases (``import repro.perf.native as nat;
  nat.run_task_loop(...)`` and ``from x import f as g; g(...)``);
* ``self.method(...)`` inside a class, chasing project-resolvable base
  classes;
* ``self.attr.method(...)`` where ``attr`` was assigned from a
  constructor (``self.bag = HashBag(...)``);
* ``obj.method(...)`` where ``obj`` is a local variable assigned from a
  resolved constructor call;
* constructor calls themselves (``HashBag(...)`` resolves to
  ``__init__``).

On top of resolution sit the two fixpoints rules consume:

* **charge reachability** (:meth:`CallGraph.can_charge`) — whether a
  ledger-charging call (``parallel_for`` / ``sequential`` / ... /
  ``record_*``) is reachable from a function through resolved call
  edges, including *callback edges*: a project function passed as an
  argument anywhere is assumed callable by the receiver (that is what
  makes higher-order helpers like task runners transparent to R001);
* **contended parameters** (:meth:`CallGraph.contending_params`) —
  which parameters of a function flow (transitively) into the
  batch-atomic helpers or ``parallel_update``'s contention counts, so
  R004 can see an array become shared through a helper call.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lint import astutil
from repro.lint.engine.symbols import ClassInfo, FunctionInfo, SymbolTable

#: Batch-atomic helpers whose first argument is contended shared state.
BATCH_HELPERS = frozenset({"batch_decrement", "batch_increment_clamped"})


@dataclass
class CallSite:
    """One resolved (or unresolved) call inside a function."""

    call: ast.Call
    #: Project functions this call may invoke (empty when unresolved).
    targets: list[FunctionInfo] = field(default_factory=list)
    #: The class whose constructor this call invokes, if any.
    constructed: ClassInfo | None = None


class CallGraph:
    """Resolved call edges plus the fixpoints computed over them."""

    def __init__(self, program) -> None:
        self._program = program
        #: qualname -> FunctionInfo for every project function.
        self.functions: dict[str, FunctionInfo] = {}
        #: qualname -> resolved CallSites in that function.
        self.calls: dict[str, list[CallSite]] = {}
        #: qualname -> qualnames of resolved callees + callback targets.
        self.edges: dict[str, set[str]] = {}
        #: qualname -> FunctionInfos passed somewhere as an argument.
        self.callbacks: dict[str, list[FunctionInfo]] = {}
        self._can_charge: frozenset[str] | None = None
        self._contending: dict[str, frozenset[int]] | None = None
        self._build()

    # -- resolution ----------------------------------------------------
    def _build(self) -> None:
        for table in self._program.symbol_tables():
            for info in table.all_functions:
                self.functions[info.qualname] = info
        for table in self._program.symbol_tables():
            for info in table.all_functions:
                self._resolve_function(table, info)

    def _resolve_function(
        self, table: SymbolTable, info: FunctionInfo
    ) -> None:
        var_types = self._local_var_types(table, info)
        sites: list[CallSite] = []
        edges: set[str] = set()
        callbacks: list[FunctionInfo] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            site = CallSite(call=node)
            resolved = self._resolve_callee(table, info, node, var_types)
            if isinstance(resolved, ClassInfo):
                site.constructed = resolved
                init = resolved.methods.get("__init__")
                if init is not None:
                    site.targets = [init]
            elif resolved:
                site.targets = resolved
            for target in site.targets:
                edges.add(target.qualname)
            # Callback edges: project functions passed as arguments are
            # assumed callable by the receiver.
            for value in [*node.args, *[kw.value for kw in node.keywords]]:
                target = self._resolve_value(table, info, value, var_types)
                if isinstance(target, FunctionInfo):
                    callbacks.append(target)
                    edges.add(target.qualname)
            sites.append(site)
        self.calls[info.qualname] = sites
        self.edges[info.qualname] = edges
        self.callbacks[info.qualname] = callbacks

    def _local_var_types(
        self, table: SymbolTable, info: FunctionInfo
    ) -> dict[str, ClassInfo]:
        """Local names assigned from resolved constructor calls."""
        var_types: dict[str, ClassInfo] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            resolved = self._resolve_dotted(
                table, astutil.dotted_name(node.value.func)
            )
            if not isinstance(resolved, ClassInfo):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    var_types[target.id] = resolved
        return var_types

    def _resolve_callee(
        self,
        table: SymbolTable,
        info: FunctionInfo,
        call: ast.Call,
        var_types: dict[str, ClassInfo],
    ) -> list[FunctionInfo] | ClassInfo | None:
        name = astutil.call_name(call)
        if name is None:
            return None
        resolved = self._resolve_value_name(table, info, name, var_types)
        if isinstance(resolved, FunctionInfo):
            return [resolved]
        if isinstance(resolved, ClassInfo):
            return resolved
        return None

    def _resolve_value(
        self,
        table: SymbolTable,
        info: FunctionInfo,
        node: ast.expr,
        var_types: dict[str, ClassInfo],
    ) -> FunctionInfo | ClassInfo | None:
        dotted = astutil.dotted_name(node)
        if dotted is None:
            return None
        return self._resolve_value_name(table, info, dotted, var_types)

    def _resolve_value_name(
        self,
        table: SymbolTable,
        info: FunctionInfo,
        name: str,
        var_types: dict[str, ClassInfo],
    ) -> FunctionInfo | ClassInfo | None:
        parts = name.split(".")
        # self.method / self.attr.method inside a class body.
        if parts[0] == "self" and info.class_name is not None:
            cls = table.classes.get(info.class_name)
            if cls is None:
                return None
            if len(parts) == 2:
                return self.method_of(cls, parts[1])
            if len(parts) == 3:
                attr_cls = self._resolve_dotted(
                    table, cls.attr_types.get(parts[1])
                )
                if isinstance(attr_cls, ClassInfo):
                    return self.method_of(attr_cls, parts[2])
            return None
        # obj.method where obj is a typed local.
        if parts[0] in var_types:
            if len(parts) == 2:
                return self.method_of(var_types[parts[0]], parts[1])
            return None
        return self._resolve_dotted(table, name)

    def _resolve_dotted(
        self, table: SymbolTable, name: str | None
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve a dotted name in a module's top-level namespace."""
        if name is None:
            return None
        program = self._program
        parts = name.split(".")
        head, rest = parts[0], parts[1:]
        symbol: FunctionInfo | ClassInfo | None = table.lookup(head)
        if symbol is None:
            target = program.module_named(table.module)
            aliases = target.import_aliases if target is not None else {}
            imported = aliases.get(head)
            if imported is None:
                return None
            return self._resolve_imported(imported, rest)
        return self._descend(symbol, rest)

    def _resolve_imported(
        self, dotted: str, rest: list[str]
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve ``dotted`` (an import target) then descend ``rest``."""
        program = self._program
        # Longest module prefix wins: "repro.perf.native.run_task_loop"
        # splits into module "repro.perf.native" + symbol path.
        parts = dotted.split(".") + rest
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            table = program.symbols_for(module_name)
            if table is None:
                continue
            symbol_path = parts[cut:]
            if not symbol_path:
                return None  # a bare module, not a callable
            symbol = table.lookup(symbol_path[0])
            if symbol is None:
                # Chase one level of re-export through import aliases.
                module = program.module_named(module_name)
                if module is not None:
                    onward = module.import_aliases.get(symbol_path[0])
                    if onward is not None:
                        return self._resolve_imported(
                            onward, symbol_path[1:]
                        )
                return None
            return self._descend(symbol, symbol_path[1:])
        return None

    def _descend(
        self, symbol: FunctionInfo | ClassInfo, rest: list[str]
    ) -> FunctionInfo | ClassInfo | None:
        if not rest:
            return symbol
        if isinstance(symbol, ClassInfo) and len(rest) == 1:
            return self.method_of(symbol, rest[0])
        return None

    def method_of(
        self, cls: ClassInfo, name: str, _seen: frozenset[str] = frozenset()
    ) -> FunctionInfo | None:
        """Look up a method on ``cls``, chasing resolvable bases."""
        if name in cls.methods:
            return cls.methods[name]
        if cls.qualname in _seen:
            return None
        table = self._program.symbols_for(cls.module)
        for base in cls.bases:
            resolved = self._resolve_dotted(table, base) if table else None
            if isinstance(resolved, ClassInfo):
                found = self.method_of(
                    resolved, name, _seen | {cls.qualname}
                )
                if found is not None:
                    return found
        return None

    # -- charge reachability -------------------------------------------
    @staticmethod
    def directly_charges(func: ast.AST) -> bool:
        """Whether a charge or ``record_*`` call appears in ``func``."""
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            if callee.attr in astutil.CHARGE_METHODS:
                return True
            if callee.attr.startswith("record_"):
                return True
        return False

    def _charge_fixpoint(self) -> frozenset[str]:
        charging = {
            qualname
            for qualname, info in self.functions.items()
            if self.directly_charges(info.node)
        }
        changed = True
        while changed:
            changed = False
            for qualname, callees in self.edges.items():
                if qualname in charging:
                    continue
                if any(callee in charging for callee in callees):
                    charging.add(qualname)
                    changed = True
        return frozenset(charging)

    def can_charge(self, func: FunctionInfo | str) -> bool:
        """Whether a ledger charge is reachable from ``func``."""
        if self._can_charge is None:
            self._can_charge = self._charge_fixpoint()
        qualname = func if isinstance(func, str) else func.qualname
        return qualname in self._can_charge

    def class_can_charge(self, cls: ClassInfo) -> bool:
        """Whether any method of ``cls`` reaches a ledger charge."""
        return any(
            self.can_charge(method) for method in cls.methods.values()
        )

    # -- contended parameters ------------------------------------------
    def _direct_contending(self, info: FunctionInfo) -> set[int]:
        """Parameter indices fed straight into the batch atomics."""
        params = info.param_names
        index = {name: i for i, name in enumerate(params)}
        out: set[int] = set()
        for site in self.calls[info.qualname]:
            call = site.call
            name = astutil.call_name(call)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            candidates: list[ast.expr] = []
            if tail in BATCH_HELPERS and call.args:
                candidates.append(call.args[0])
            elif tail == "parallel_update":
                counts = astutil.argument(call, 1, "contention_counts")
                if counts is not None:
                    candidates.append(counts)
            for expr in candidates:
                if isinstance(expr, ast.Name) and expr.id in index:
                    out.add(index[expr.id])
        return out

    def _contending_fixpoint(self) -> dict[str, frozenset[int]]:
        contending: dict[str, set[int]] = {
            qualname: self._direct_contending(info)
            for qualname, info in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                params = {
                    name: i for i, name in enumerate(info.param_names)
                }
                for site in self.calls[qualname]:
                    for target in site.targets:
                        tainted = contending.get(target.qualname)
                        if not tainted:
                            continue
                        # Map callee parameter positions back onto the
                        # caller's arguments (methods: skip ``self``).
                        shift = 1 if target.class_name is not None else 0
                        for pos in tainted:
                            arg_pos = pos - shift
                            expr = self._argument_at(
                                site.call, arg_pos, target, pos
                            )
                            if (
                                isinstance(expr, ast.Name)
                                and expr.id in params
                                and params[expr.id]
                                not in contending[qualname]
                            ):
                                contending[qualname].add(params[expr.id])
                                changed = True
        return {
            qualname: frozenset(indices)
            for qualname, indices in contending.items()
        }

    @staticmethod
    def _argument_at(
        call: ast.Call, position: int, target: FunctionInfo, param_pos: int
    ) -> ast.expr | None:
        if 0 <= position < len(call.args):
            return call.args[position]
        param_names = target.param_names
        if 0 <= param_pos < len(param_names):
            return astutil.keyword_value(call, param_names[param_pos])
        return None

    def contending_params(self, func: FunctionInfo) -> frozenset[int]:
        """Parameter indices of ``func`` that reach the batch atomics."""
        if self._contending is None:
            self._contending = self._contending_fixpoint()
        return self._contending.get(func.qualname, frozenset())

    # -- convenience ---------------------------------------------------
    def sites_in(self, func: FunctionInfo) -> Iterator[CallSite]:
        yield from self.calls.get(func.qualname, [])
