"""The finding record emitted by lint rules.

A finding pins one violation to one source location.  Findings are
value objects: hashable, totally ordered by location, and rendered by
the reporters in :mod:`repro.lint.reporters`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Path of the offending file, as given to the runner.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule_id: Identifier of the violated rule (``R001`` ... ``R005``,
            or ``E000`` for files the runner could not parse).
        message: Human-readable explanation with the fix spelled out.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: ID message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation (see ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
