"""R005 magic-cost-constant: per-op costs come from the CostModel.

Every constant of the simulated machine lives in
:class:`repro.runtime.cost_model.CostModel` so that experiments can
*vary* it (the omega sweeps, the contention ablations).  A numeric
literal smuggled into a charge call as a cost — ``runtime.sequential(
5.0, ...)`` — is invisible to those sweeps: the experiment dials the
model and part of the cost surface silently refuses to move.

R005 inspects the cost expression of every costed charge call
(``task_costs`` / ``work`` / ``thread_works``).  The expression is clean
if it references a cost-model field (any attribute named after a
``CostModel`` field, e.g. ``model.edge_op``) or contains no numeric
literal other than the neutral ``0`` and ``1`` (zero-cost charges and
``max(x, 1)``-style clamps are idiomatic).  Otherwise the literal is a
magic cost and R005 fires.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule
from repro.runtime.cost_model import CostModel

#: Field names of the cost model; an attribute access with one of these
#: names marks the expression as model-derived.
COST_MODEL_FIELDS = frozenset(CostModel.__dataclass_fields__)

#: Literals that never encode a per-op cost by themselves.
NEUTRAL_VALUES = frozenset({0.0, 1.0})


def _references_model(expr: ast.expr) -> bool:
    """Whether ``expr`` touches a CostModel field or a model object."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            if node.attr in COST_MODEL_FIELDS or node.attr == "model":
                return True
        elif isinstance(node, ast.Name) and node.id == "model":
            return True
    return False


def _magic_literal(expr: ast.expr) -> ast.AST | None:
    """First non-neutral numeric literal inside ``expr``, if any."""
    for node in ast.walk(expr):
        value = astutil.numeric_value(node)
        if value is not None and abs(value) not in NEUTRAL_VALUES:
            return node
    return None


@rule(
    "R005",
    "magic-cost-constant",
    "charge costs must come from CostModel fields, not numeric literals",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        method = astutil.charge_method_of(node)
        if method not in astutil.COSTED_CHARGE_METHODS:
            continue
        cost = astutil.argument(node, 0, astutil.COST_KEYWORDS[method])
        if cost is None or _references_model(cost):
            continue
        literal = _magic_literal(cost)
        if literal is None:
            continue
        value = astutil.numeric_value(literal)
        rendered = (
            f"{value:g}" if value is not None else ast.dump(literal)
        )
        yield ctx.finding(
            node,
            "R005",
            f"{method}() charges the magic cost constant {rendered}; "
            "cost-model sweeps cannot reach it — use (or add) a "
            "CostModel field instead",
        )
