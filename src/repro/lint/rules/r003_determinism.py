"""R003 determinism: no nondeterminism sources, and none reaching sinks.

The whole point of the simulated runtime is that a run's work, span and
simulated time are **pure functions of the input graph and the seed** —
that is what makes every figure reproducible bit-for-bit and every test
assertable.  The rule has two layers.

**Hard bans** (syntactic, flagged where they appear):

* **wall-clock reads** (``time.time`` / ``perf_counter`` / ...) leaking
  into algorithm code couple results to the host machine (benchmarks,
  which *do* time the harness itself, are exempt via their directory);
* **legacy global-state RNG** (``np.random.rand`` etc. and the
  ``random`` module) — hidden mutable state shared across call sites,
  so unrelated code reorders draw sequences;
* **unseeded generators** (``np.random.default_rng()`` with no seed) —
  fresh OS entropy per call, unreproducible by construction;
* **cache-key functions** (names ending in ``_key``, or named ``key`` /
  ``key_fields``) reading the environment — cache identity would depend
  on host state.

**Taint sinks** (interprocedural, via the engine's dataflow): sources
that are only harmful when they reach the accounting — iterating a
``set``/``dict`` (no defined order), and values derived from clocks or
RNG — are tracked through assignments, containers, and *resolved calls*
(summaries + parameters), and flagged where they enter a ledger charge
(``parallel_for`` / ``sequential`` / ``record_*``) or a ``.metrics.``
assignment.  Sorting (``sorted`` / ``np.sort`` / ``np.unique``) strips
the unordered taint; membership tests are order-insensitive and do the
same.

The sampling scheme's Las-Vegas analysis (paper Sec. 4.1) only holds for
*documented, seeded* randomness, which is exactly what this rule pins.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Re-exported for compatibility; the canonical home is astutil.
CLOCK_FUNCTIONS = astutil.CLOCK_FUNCTIONS
GENERATOR_API = astutil.GENERATOR_API
_time_aliases = astutil.time_aliases


@rule(
    "R003",
    "determinism",
    "no wall clocks, global RNG, or unordered iteration reaching ledgers",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.in_directory("benchmarks"):
        return
    time_modules, clock_names = astutil.time_aliases(ctx.tree)

    for node in ast.walk(ctx.tree):
        # The random module is global-state RNG wholesale: flag the import.
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                    "random."
                ):
                    yield ctx.finding(
                        node,
                        "R003",
                        "the 'random' module is global-state RNG; use a "
                        "seeded np.random.default_rng(seed) generator",
                    )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            yield ctx.finding(
                node,
                "R003",
                "the 'random' module is global-state RNG; use a seeded "
                "np.random.default_rng(seed) generator",
            )
        elif isinstance(node, ast.Call):
            yield from _check_call(
                ctx, node, time_modules, clock_names
            )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and _is_key_function(node.name):
            yield from _check_key_function(ctx, node)

    yield from _check_sinks(ctx)


def _check_sinks(ctx: ModuleContext) -> Iterator[Finding]:
    """Taint findings: nondeterminism entering a ledger or metrics."""
    if ctx.program is None or ctx.module is None:
        return
    taint = ctx.program.taint
    for info in ctx.functions():
        for hit in taint.sink_hits(info):
            real = sorted(t for t in hit.taints if not t.is_param)
            if not real:
                continue
            source = real[0]
            origin = (
                f"{source.origin_path}:{source.origin_line}"
                if source.origin_path
                else "caller"
            )
            yield ctx.finding(
                hit.node,
                "R003",
                f"{source.kind} value reaches {hit.sink}: "
                f"{source.note or source.kind} (source at {origin}); "
                "ledger inputs must be pure functions of graph and seed",
            )


def _is_key_function(name: str) -> bool:
    """Whether a function computes a cache key (by naming convention)."""
    return name in ("key", "key_fields") or name.endswith("_key")


def _check_key_function(
    ctx: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> Iterator[Finding]:
    """Cache-key functions must not read the process environment."""
    for sub in ast.walk(node):
        leaked: str | None = None
        if isinstance(sub, ast.Attribute):
            dotted = astutil.dotted_name(sub)
            if dotted in ("os.environ", "os.environb"):
                leaked = dotted
        elif isinstance(sub, ast.Call):
            name = astutil.call_name(sub)
            if name in ("os.getenv", "getenv"):
                leaked = name
        if leaked is not None:
            yield ctx.finding(
                sub,
                "R003",
                f"cache-key function '{node.name}' reads the environment "
                f"({leaked}); keys must be pure functions of content, or "
                "two hosts will disagree about what a cache entry means",
            )


def _check_call(
    ctx: ModuleContext,
    node: ast.Call,
    time_modules: set[str],
    clock_names: set[str],
) -> Iterator[Finding]:
    name = astutil.call_name(node)
    if name is None:
        return

    # Wall-clock reads: time.time(), perf_counter(), t.monotonic() ...
    head, _, tail = name.rpartition(".")
    if (head in time_modules and tail in CLOCK_FUNCTIONS) or (
        not head and name in clock_names
    ):
        yield ctx.finding(
            node,
            "R003",
            f"wall-clock read '{name}()' in algorithm code; simulated "
            "time must come from the SimRuntime ledger (benchmarks/ is "
            "exempt)",
        )
        return

    # np.random.*: legacy global-state API vs. the Generator API.
    for prefix in ("np.random.", "numpy.random."):
        if name.startswith(prefix):
            attr = name[len(prefix):].split(".", 1)[0]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        node,
                        "R003",
                        "unseeded default_rng() draws OS entropy; pass an "
                        "explicit seed",
                    )
                elif node.args and isinstance(
                    node.args[0], ast.Constant
                ) and node.args[0].value is None:
                    yield ctx.finding(
                        node,
                        "R003",
                        "default_rng(None) is unseeded; pass an explicit "
                        "seed",
                    )
            elif attr not in GENERATOR_API:
                yield ctx.finding(
                    node,
                    "R003",
                    f"legacy global-state RNG '{name}()'; use a seeded "
                    "np.random.default_rng(seed) generator",
                )
            return
