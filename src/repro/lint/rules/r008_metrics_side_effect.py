"""R008 metrics-side-effect: the metrics registry stays observational.

The obs layer's contract (docs/OBSERVABILITY.md) mirrors the tracer's:
attaching a :class:`repro.obs.MetricsRegistry` changes *nothing* — the
regression goldens pass bit-exactly with metrics on and off, and two
same-seed observed runs produce byte-identical snapshots.  Two
disciplines keep that true, enforced syntactically here exactly as
R006 enforces them for the tracer:

* **(A) obs purity** — code under ``repro/obs/`` must not charge the
  simulated ledger (no ``parallel_for`` / ``sequential`` / ...,
  no ``record_*``), must not draw randomness, and must not assign to
  ``*.metrics.*``; the registry only *reads* the execution.  Purity is
  interprocedural: an obs module calling a resolved project function
  from which a ledger charge is reachable is flagged too (driver
  modules — ``cli.py`` / ``__main__.py`` — are exempt; launching an
  observed run is their job).
* **(B) guarded hooks** — every registry mutation outside
  ``repro/obs/`` (``inc``, ``observe``, ``set_gauge``, ``mark``, ...)
  on an optional slot (a name ending in ``registry``) must sit inside
  an ``if <slot> is not None:`` guard, so the unobserved path stays
  zero-cost and can never raise.  A local variable assigned directly
  from a ``MetricsRegistry(...)`` constructor is known non-None and
  exempt.

Wall-clock containment (no host-clock reads outside
``repro.bench.wallclock``) is already pinned structurally by R006 and
covers metric values too: a ``wall``-family observation can only carry
a value measured by the one sanctioned reader.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Registry methods that record into the metrics (optional-slot hooks).
REGISTRY_MUTATORS = frozenset(
    {
        "attach",
        "attach_model",
        "inc",
        "set_gauge",
        "observe",
        "mark",
        "merge_counts",
        "declare_histogram",
    }
)

#: Ledger-charging calls forbidden inside ``repro/obs/``.
CHARGING_METHODS = astutil.CHARGE_METHODS | {
    "record_parallel",
    "record_sequential",
}


def _parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _constructed_registries(tree: ast.Module) -> set[str]:
    """Bare names assigned from a ``MetricsRegistry(...)`` constructor."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        callee = astutil.call_name(node.value)
        if callee is None or not callee.split(".")[-1].endswith(
            "MetricsRegistry"
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_guarded(
    call: ast.Call, base: str, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Whether ``call`` is in the body of ``if <base> is not None:``."""
    child: ast.AST = call
    parent = parents.get(call)
    while parent is not None:
        if isinstance(parent, ast.If) and any(
            child is stmt for stmt in parent.body
        ):
            test = parent.test
            if (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
                and astutil.dotted_name(test.left) == base
            ):
                return True
        child, parent = parent, parents.get(parent)
    return False


@rule(
    "R008",
    "metrics-side-effect",
    "metrics are observational: pure obs/ package, registry hooks "
    "behind 'is not None' guards",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.in_package("repro", "obs"):
        yield from _check_purity(ctx)
        yield from _check_transitive_purity(ctx)
        return
    yield from _check_guards(ctx)


def _is_obs_driver(ctx: ModuleContext) -> bool:
    """Driver modules that legitimately launch charging runs."""
    return Path(ctx.path).name in ("cli.py", "__main__.py")


def _check_transitive_purity(ctx: ModuleContext) -> Iterator[Finding]:
    """Obs code must not *reach* a ledger charge through calls."""
    if ctx.program is None or ctx.module is None or _is_obs_driver(ctx):
        return
    graph = ctx.program.callgraph
    for info in ctx.functions():
        for site in graph.sites_in(info):
            for target in site.targets:
                if target.module.startswith("repro.obs"):
                    continue  # flagged by (A) where the charge appears
                if graph.can_charge(target):
                    yield ctx.finding(
                        site.call,
                        "R008",
                        f"obs code calls '{target.qualname}', from which "
                        "a ledger charge is reachable; the registry must "
                        "observe the run, not drive it (drivers belong in "
                        "cli.py/__main__.py)",
                    )
                    break


def _check_purity(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = astutil.call_name(node)
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in CHARGING_METHODS
            ):
                yield ctx.finding(
                    node,
                    "R008",
                    f"obs code must not charge the ledger "
                    f"('{func.attr}'); the registry only observes the run",
                )
            elif name is not None and (
                name.startswith(("np.random.", "numpy.random."))
                or name.split(".")[-1] == "random"
            ):
                yield ctx.finding(
                    node,
                    "R008",
                    f"obs code must not draw randomness ('{name}()'); "
                    "an observed run must equal the unobserved run "
                    "bit-exactly",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                dotted = astutil.dotted_name(target)
                if dotted is not None and ".metrics." in dotted + ".":
                    yield ctx.finding(
                        node,
                        "R008",
                        f"obs code must not mutate runtime metrics "
                        f"('{dotted}')",
                    )


def _check_guards(ctx: ModuleContext) -> Iterator[Finding]:
    parents: dict[ast.AST, ast.AST] | None = None
    constructed: set[str] | None = None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.call_name(node)
        if name is None or "." not in name:
            continue
        base, _, method = name.rpartition(".")
        if method not in REGISTRY_MUTATORS:
            continue
        if not (base == "registry" or base.endswith("registry")):
            continue
        if constructed is None:
            constructed = _constructed_registries(ctx.tree)
        if base in constructed:
            continue
        if parents is None:
            parents = _parents(ctx.tree)
        if not _is_guarded(node, base, parents):
            yield ctx.finding(
                node,
                "R008",
                f"registry hook '{name}()' outside an "
                f"'if {base} is not None:' guard; the unobserved path "
                "must stay zero-cost",
            )
