"""R007 native-parity: the embedded C kernel must match its Python side.

:mod:`repro.perf.native` embeds a C transcription of the VGC task loop
and drives it through ``ctypes``; :mod:`repro.perf.kernels` prices the
per-task counters it returns with the dyadic closed form
``vertex_op * nv + edge_op * ne + sample_flip_op * ns``.  Nothing
executes across that boundary at lint time, so nothing *types* it —
a reordered argument, a widened counters array, or a cost constant that
stops being a dyadic rational would ship silently and corrupt the
work/span ledger (or the goldens) in ways no unit test of either side
alone can see.

R007 cross-checks the three artifacts syntactically, anchoring each
finding in the file whose edit would fix it:

in ``repro/perf/native.py``:

* the C parameter list of ``vgc_peel_tasks`` (pointer vs. integer,
  parsed from the embedded source) must match the ``argtypes``
  expression (``c_void_p`` vs. ``c_int64``), position by position;
* the ``lib.vgc_peel_tasks(...)`` call must wrap exactly the pointer
  positions in ``_ptr(...)``;
* the ``counters`` array written by the C code (highest index + 1),
  the ``np.zeros(N)`` allocation, and the Python tuple unpack must all
  agree on the counter width;
* every key of :data:`repro.perf.native.COST_COUNTERS` must have a
  ``<key>_out`` output parameter in the C signature, and every value
  must name a real ``CostModel`` field whose default is a **dyadic
  rational** (exactly representable in binary floating point, the
  exactness argument of docs/PERFORMANCE.md);

in ``repro/perf/kernels.py``:

* the ``task_costs`` closed form of ``vgc_peel_tasks_native`` must
  multiply exactly the ``model.<field> * <counter>`` pairs that
  ``COST_COUNTERS`` declares — no more, no fewer, no renames.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from fractions import Fraction
from pathlib import Path

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

_KERNEL_NAME = "vgc_peel_tasks"


# -- C-side parsing (regex over the embedded source string) ------------
def _embedded_source(tree: ast.Module) -> tuple[str, ast.AST] | None:
    """The ``_SOURCE`` string constant and its assignment node."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_SOURCE"
            for t in node.targets
        ):
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                return node.value.value, node
    return None


def _c_parameters(source: str) -> list[tuple[str, bool]] | None:
    """``(name, is_pointer)`` per parameter of the kernel signature."""
    match = re.search(rf"\b{_KERNEL_NAME}\s*\(", source)
    if match is None:
        return None
    depth, start = 1, match.end()
    end = start
    while end < len(source) and depth:
        if source[end] == "(":
            depth += 1
        elif source[end] == ")":
            depth -= 1
        end += 1
    params_text = re.sub(r"/\*.*?\*/", "", source[start : end - 1], flags=re.S)
    params: list[tuple[str, bool]] = []
    for raw in params_text.split(","):
        text = raw.strip()
        if not text:
            continue
        names = re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text)
        if not names:
            return None
        params.append((names[-1], "*" in text))
    return params


def _c_counter_width(source: str) -> int:
    """Highest ``counters[i]`` index written by the C code, plus one."""
    indices = [
        int(m) for m in re.findall(r"\bcounters\s*\[\s*(\d+)\s*\]", source)
    ]
    return max(indices) + 1 if indices else 0


# -- Python-side extraction --------------------------------------------
def _argtypes_layout(tree: ast.Module) -> tuple[list[bool], ast.AST] | None:
    """Pointer-flags sequence from the ``.argtypes = ...`` assignment."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Attribute) and t.attr == "argtypes"
            for t in node.targets
        ):
            continue
        layout = _eval_ctype_list(node.value)
        if layout is not None:
            return layout, node
        return None
    return None


def _eval_ctype_list(node: ast.expr) -> list[bool] | None:
    """Evaluate ``[c_void_p]*7 + [c_int64]*4 + ...`` into pointer flags."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _eval_ctype_list(node.left)
        right = _eval_ctype_list(node.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        if isinstance(node.right, ast.Constant) and isinstance(
            node.right.value, int
        ):
            base = _eval_ctype_list(node.left)
            if base is None:
                return None
            return base * node.right.value
        return None
    if isinstance(node, ast.List):
        flags: list[bool] = []
        for element in node.elts:
            dotted = astutil.dotted_name(element)
            if dotted is None:
                return None
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "c_void_p":
                flags.append(True)
            elif tail in ("c_int64", "c_int32", "c_int", "c_long"):
                flags.append(False)
            else:
                return None
        return flags
    return None


def _kernel_call(tree: ast.Module) -> ast.Call | None:
    """The ``lib.vgc_peel_tasks(...)`` invocation."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == _KERNEL_NAME
        ):
            return node
    return None


def _counters_zeros_width(tree: ast.Module) -> tuple[int, ast.AST] | None:
    """N from the ``counters = np.zeros(N, ...)`` allocation."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "counters"
            for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            name = astutil.call_name(value)
            if name is not None and name.rsplit(".", 1)[-1] == "zeros":
                if value.args and isinstance(value.args[0], ast.Constant):
                    width = value.args[0].value
                    if isinstance(width, int):
                        return width, node
    return None


def _unpack_width(tree: ast.Module) -> tuple[int, ast.AST] | None:
    """Arity of the ``dp, ep, ... = (... for x in counters)`` unpack."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not _mentions_counters(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                return len(target.elts), node
    return None


def _mentions_counters(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "counters"
        for sub in ast.walk(node)
    )


def _cost_counters_table(tree: ast.Module) -> tuple[dict, ast.AST] | None:
    """The literal ``COST_COUNTERS`` mapping and its assignment."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "COST_COUNTERS"
            for t in node.targets
        ):
            try:
                table = ast.literal_eval(node.value)
            except ValueError:
                return None
            if isinstance(table, dict):
                return table, node
    return None


def _cost_model_fields(tree: ast.Module) -> dict[str, ast.AST]:
    """CostModel field name -> default-value node."""
    fields: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "CostModel":
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                ):
                    fields[stmt.target.id] = stmt.value
    return fields


def _is_dyadic(value: float) -> bool:
    """Whether ``value`` is exactly representable in binary floats.

    The closed form multiplies these constants by integer counts; the
    products stay exact only when each constant's denominator is a
    power of two (1.5 = 3/2 is fine, 0.3 = 3/10 is not).
    """
    try:
        denominator = Fraction(str(value)).denominator
    except ValueError:
        return False
    return denominator & (denominator - 1) == 0


# -- the rule ----------------------------------------------------------
@rule(
    "R007",
    "native-parity",
    "embedded C kernel, ctypes signature, counter table and cost model "
    "must agree",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("repro", "perf"):
        return
    filename = Path(ctx.path).name
    if filename == "native.py":
        yield from _check_native(ctx)
    elif filename == "kernels.py":
        yield from _check_kernels(ctx)


def _check_native(ctx: ModuleContext) -> Iterator[Finding]:
    embedded = _embedded_source(ctx.tree)
    if embedded is None:
        return
    source, source_node = embedded
    params = _c_parameters(source)
    if params is None:
        yield ctx.finding(
            source_node,
            "R007",
            f"embedded C source has no parseable '{_KERNEL_NAME}' "
            "signature; the parity checker cannot verify the ctypes "
            "layout",
        )
        return

    # (1) C parameter list vs. argtypes, position by position.
    argtypes = _argtypes_layout(ctx.tree)
    if argtypes is not None:
        layout, node = argtypes
        if len(layout) != len(params):
            yield ctx.finding(
                node,
                "R007",
                f"argtypes declares {len(layout)} arguments but the C "
                f"'{_KERNEL_NAME}' signature has {len(params)}; the "
                "ctypes call would smash the kernel's stack",
            )
        else:
            for i, ((name, c_ptr), py_ptr) in enumerate(
                zip(params, layout)
            ):
                if c_ptr != py_ptr:
                    yield ctx.finding(
                        node,
                        "R007",
                        f"argtypes[{i}] is "
                        f"{'c_void_p' if py_ptr else 'an integer type'} "
                        f"but C parameter {i} ('{name}') is "
                        f"{'a pointer' if c_ptr else 'int64_t'}; "
                        "pointer/integer layout must match the embedded "
                        "C signature exactly",
                    )

    # (2) The foreign call wraps exactly the pointer positions in _ptr().
    call = _kernel_call(ctx.tree)
    if call is not None and not call.keywords:
        if len(call.args) != len(params):
            yield ctx.finding(
                call,
                "R007",
                f"'{_KERNEL_NAME}' is called with {len(call.args)} "
                f"arguments but the C signature has {len(params)}",
            )
        else:
            for i, (arg, (name, c_ptr)) in enumerate(
                zip(call.args, params)
            ):
                wrapped = (
                    isinstance(arg, ast.Call)
                    and astutil.call_name(arg) == "_ptr"
                )
                if wrapped != c_ptr:
                    yield ctx.finding(
                        arg,
                        "R007",
                        f"argument {i} of the '{_KERNEL_NAME}' call "
                        f"{'is' if wrapped else 'is not'} a _ptr(...) "
                        f"but C parameter '{name}' is "
                        f"{'a pointer' if c_ptr else 'int64_t'}",
                    )

    # (3) Counter-width agreement: C writes / np.zeros / tuple unpack.
    c_width = _c_counter_width(source)
    zeros = _counters_zeros_width(ctx.tree)
    if zeros is not None and c_width and zeros[0] != c_width:
        yield ctx.finding(
            zeros[1],
            "R007",
            f"counters buffer is allocated with {zeros[0]} slots but the "
            f"C kernel writes counters[0..{c_width - 1}]",
        )
    unpack = _unpack_width(ctx.tree)
    if unpack is not None and c_width and unpack[0] != c_width:
        yield ctx.finding(
            unpack[1],
            "R007",
            f"the counters unpack binds {unpack[0]} names but the C "
            f"kernel writes {c_width} counters",
        )

    # (4) COST_COUNTERS: keys are kernel outputs, values are dyadic
    # CostModel fields.
    table_info = _cost_counters_table(ctx.tree)
    if table_info is None:
        return
    table, table_node = table_info
    param_names = {name for name, _ in params}
    for key in table:
        if f"{key}_out" not in param_names:
            yield ctx.finding(
                table_node,
                "R007",
                f"COST_COUNTERS key '{key}' has no '{key}_out' output "
                f"parameter in the C '{_KERNEL_NAME}' signature",
            )
    cost_model = _cost_model_module(ctx)
    if cost_model is None:
        return
    fields = _cost_model_fields(cost_model.tree)
    for key, field in table.items():
        default = fields.get(field)
        if default is None:
            yield ctx.finding(
                table_node,
                "R007",
                f"COST_COUNTERS maps '{key}' to '{field}', which is not "
                "a CostModel field",
            )
            continue
        value = astutil.numeric_value(default)
        if value is None or not _is_dyadic(value):
            yield ctx.finding(
                table_node,
                "R007",
                f"CostModel.{field} defaults to "
                f"{value if value is not None else 'a non-literal'} "
                f"({cost_model.path}:{getattr(default, 'lineno', '?')}), "
                "which is not a dyadic rational; the native kernel's "
                "closed-form costs are only exact for power-of-two "
                "denominators (docs/PERFORMANCE.md)",
            )


def _cost_model_module(ctx: ModuleContext):
    if ctx.program is None:
        return None
    return ctx.program.module_named("repro.runtime.cost_model")


def _check_kernels(ctx: ModuleContext) -> Iterator[Finding]:
    """The closed form in kernels.py must price what COST_COUNTERS says."""
    if ctx.program is None:
        return
    native = ctx.program.module_named("repro.perf.native")
    if native is None:
        return
    table_info = _cost_counters_table(native.tree)
    if table_info is None:
        return
    table, _ = table_info
    expected = {(field, counter) for counter, field in table.items()}

    func = None
    for node in ctx.tree.body:
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == f"{_KERNEL_NAME}_native"
        ):
            func = node
            break
    if func is None:
        return
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "task_costs"
            for t in node.targets
        ):
            continue
        actual = set(_model_products(node.value))
        if actual != expected:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            detail = []
            if missing:
                detail.append(
                    "missing "
                    + ", ".join(f"model.{f} * {c}" for f, c in missing)
                )
            if extra:
                detail.append(
                    "unexpected "
                    + ", ".join(f"model.{f} * {c}" for f, c in extra)
                )
            yield ctx.finding(
                node,
                "R007",
                "task_costs closed form disagrees with "
                f"native.COST_COUNTERS: {'; '.join(detail)}",
            )
        return


def _model_products(node: ast.expr) -> Iterator[tuple[str, str]]:
    """``(field, counter)`` pairs from a sum of ``model.f * c`` terms."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        yield from _model_products(node.left)
        yield from _model_products(node.right)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left = astutil.dotted_name(node.left)
        right = astutil.dotted_name(node.right)
        if left is not None and right is not None:
            if left.startswith("model.") and "." not in right:
                yield left[len("model.") :], right
            elif right.startswith("model.") and "." not in left:
                yield right[len("model.") :], left
