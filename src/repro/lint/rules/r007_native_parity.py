"""R007 native-parity: the embedded C kernels must match their Python side.

:mod:`repro.perf.native` embeds C transcriptions of the hot peel loops
(the VGC task loop, the PKC chain drain, the fused scan/peel, the
frontier scan) and drives them through ``ctypes``;
:mod:`repro.perf.kernels` prices the per-task counters they return with
dyadic closed forms (``vertex_op * nv + edge_op * ne + ...``).  Nothing
executes across that boundary at lint time, so nothing *types* it —
a reordered argument, a widened counters array, or a cost constant that
stops being a dyadic rational would ship silently and corrupt the
work/span ledger (or the goldens) in ways no unit test of either side
alone can see.

R007 cross-checks the artifacts syntactically, per embedded kernel,
anchoring each finding in the file whose edit would fix it:

in ``repro/perf/native.py``, for every ``void <kernel>(...)`` in the
embedded source:

* the C parameter list (pointer vs. integer) must match the kernel's
  ``argtypes`` expression (``c_void_p`` vs. ``c_int64``), position by
  position — the assignment is found through the ``<var> =
  lib.<kernel>`` binding;
* every ``lib.<kernel>(...)`` call must pass a pointer expression in
  exactly the pointer positions — ``_ptr(...)``, a cached
  ``scratch.ptr(...)`` (or a local alias/variable bound to one), or a
  conditional between such forms;
* the ``counters`` array written by the kernel's C body (highest index
  + 1), the ``np.zeros(N)`` allocation, and the Python tuple unpack in
  the calling function must all agree on the counter width;
* every key of a cost-counter table (:data:`COST_COUNTERS`,
  :data:`PKC_COST_COUNTERS`) must have a ``<key>_out`` output parameter
  in its kernel's C signature, and every value — a field name or a list
  of field names — must name real ``CostModel`` fields whose defaults
  are **dyadic rationals** (exactly representable in binary floating
  point, the exactness argument of docs/PERFORMANCE.md);

in ``repro/perf/kernels.py``:

* each table's ``task_costs`` closed form (``vgc_peel_tasks_native``,
  ``pkc_thread_works``) must multiply exactly the ``model.<field> *
  <counter>`` pairs the table declares — no more, no fewer, no renames.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from fractions import Fraction
from pathlib import Path

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Cost-counter tables in native.py -> (C kernel, closed-form function
#: in kernels.py whose ``task_costs`` assignment prices the counters).
_COST_TABLES = {
    "COST_COUNTERS": ("vgc_peel_tasks", "vgc_peel_tasks_native"),
    "PKC_COST_COUNTERS": ("pkc_chain_drain", "pkc_thread_works"),
}


# -- C-side parsing (regex over the embedded source string) ------------
def _embedded_source(tree: ast.Module) -> tuple[str, ast.AST] | None:
    """The ``_SOURCE`` string constant and its assignment node."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_SOURCE"
            for t in node.targets
        ):
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                return node.value.value, node
    return None


def _c_kernels(source: str) -> dict[str, tuple[list[tuple[str, bool]], str]]:
    """``{kernel: (params, body)}`` for every ``void <name>(...)``.

    ``params`` is ``(name, is_pointer)`` per parameter; ``body`` is the
    text from the signature's closing paren to the next kernel (used to
    count the ``counters[i]`` writes of *this* kernel only).
    """
    kernels: dict[str, tuple[list[tuple[str, bool]], str]] = {}
    matches = list(re.finditer(r"\bvoid\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(",
                               source))
    for pos, match in enumerate(matches):
        depth, start = 1, match.end()
        end = start
        while end < len(source) and depth:
            if source[end] == "(":
                depth += 1
            elif source[end] == ")":
                depth -= 1
            end += 1
        params_text = re.sub(
            r"/\*.*?\*/", "", source[start : end - 1], flags=re.S
        )
        params: list[tuple[str, bool]] = []
        ok = True
        for raw in params_text.split(","):
            text = raw.strip()
            if not text:
                continue
            names = re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text)
            if not names:
                ok = False
                break
            params.append((names[-1], "*" in text))
        if not ok:
            continue
        body_end = (
            matches[pos + 1].start() if pos + 1 < len(matches) else len(source)
        )
        kernels[match.group(1)] = (params, source[end:body_end])
    return kernels


def _c_counter_width(body: str) -> int:
    """Highest ``counters[i]`` index written by a kernel body, plus one."""
    indices = [
        int(m) for m in re.findall(r"\bcounters\s*\[\s*(\d+)\s*\]", body)
    ]
    return max(indices) + 1 if indices else 0


# -- Python-side extraction --------------------------------------------
def _kernel_bindings(tree: ast.Module, kernels: set[str]) -> dict[str, str]:
    """``{local_var: kernel}`` from ``<var> = lib.<kernel>`` bindings."""
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr in kernels
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            bindings[node.targets[0].id] = value.attr
    return bindings


def _argtypes_layouts(
    tree: ast.Module, bindings: dict[str, str]
) -> dict[str, tuple[list[bool], ast.AST]]:
    """Pointer-flag sequences per kernel from ``<var>.argtypes = ...``."""
    layouts: dict[str, tuple[list[bool], ast.AST]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and target.attr == "argtypes"
                and isinstance(target.value, ast.Name)
            ):
                continue
            kernel = bindings.get(target.value.id)
            if kernel is None:
                continue
            layout = _eval_ctype_list(node.value)
            if layout is not None:
                layouts[kernel] = (layout, node)
    return layouts


def _eval_ctype_list(node: ast.expr) -> list[bool] | None:
    """Evaluate ``[c_void_p]*7 + [c_int64]*4 + ...`` into pointer flags."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _eval_ctype_list(node.left)
        right = _eval_ctype_list(node.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        if isinstance(node.right, ast.Constant) and isinstance(
            node.right.value, int
        ):
            base = _eval_ctype_list(node.left)
            if base is None:
                return None
            return base * node.right.value
        return None
    if isinstance(node, ast.List):
        flags: list[bool] = []
        for element in node.elts:
            dotted = astutil.dotted_name(element)
            if dotted is None:
                return None
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "c_void_p":
                flags.append(True)
            elif tail in ("c_int64", "c_int32", "c_int", "c_long"):
                flags.append(False)
            else:
                return None
        return flags
    return None


def _kernel_calls(
    tree: ast.Module, kernels: set[str]
) -> list[tuple[str, ast.Call, ast.FunctionDef | None]]:
    """Every ``lib.<kernel>(...)`` call with its enclosing function."""
    calls: list[tuple[str, ast.Call, ast.FunctionDef | None]] = []
    functions = [
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    ]
    seen: set[int] = set()
    for func in functions:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in kernels
            ):
                calls.append((node.func.attr, node, func))
                seen.add(id(node))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in kernels
            and id(node) not in seen
        ):
            calls.append((node.func.attr, node, None))
    return calls


def _ptr_maker(node: ast.expr) -> bool:
    """Is ``node`` a pointer-producing callable (``_ptr`` / ``<x>.ptr``)?

    Covers the cached-pointer idiom of :class:`KernelScratch`: wrappers
    bind ``sp = scratch.ptr`` (or ``sp = scratch.ptr if scratch is not
    None else _ptr``) once and call the alias per argument.
    """
    if isinstance(node, ast.Name):
        return node.id == "_ptr"
    if isinstance(node, ast.Attribute):
        return node.attr == "ptr"
    if isinstance(node, ast.IfExp):
        return _ptr_maker(node.body) and _ptr_maker(node.orelse)
    return False


def _ptr_makers(scope: ast.AST) -> set[str]:
    """Local names bound to a pointer-producing callable."""
    makers: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _ptr_maker(node.value)
        ):
            makers.add(node.targets[0].id)
    return makers


def _pointer_expr(
    node: ast.expr, makers: set[str], locals_: set[str]
) -> bool:
    """Does ``node`` evaluate to a kernel pointer argument?

    Accepted forms: a call to a pointer maker (``_ptr(x)``, ``sp(x)``,
    ``scratch.ptr(x)``), a conditional between such calls (``None``
    branches allowed — argtypes are ``c_void_p``), or a local name
    previously assigned one of those (``peeled_p``).
    """
    if isinstance(node, ast.Call):
        fn = node.func
        return _ptr_maker(fn) or (
            isinstance(fn, ast.Name) and fn.id in makers
        )
    if isinstance(node, ast.IfExp):
        return all(
            (isinstance(arm, ast.Constant) and arm.value is None)
            or _pointer_expr(arm, makers, locals_)
            for arm in (node.body, node.orelse)
        )
    if isinstance(node, ast.Name):
        return node.id in locals_
    return False


def _pointer_locals(scope: ast.AST, makers: set[str]) -> set[str]:
    """Local names assigned from pointer expressions (any branch)."""
    locals_: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _pointer_expr(node.value, makers, locals_)
        ):
            locals_.add(node.targets[0].id)
    return locals_


def _counters_zeros_width(scope: ast.AST) -> tuple[int, ast.AST] | None:
    """N from the ``counters = np.zeros(N, ...)`` allocation in scope."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "counters"
            for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            name = astutil.call_name(value)
            if name is not None and name.rsplit(".", 1)[-1] == "zeros":
                if value.args and isinstance(value.args[0], ast.Constant):
                    width = value.args[0].value
                    if isinstance(width, int):
                        return width, node
    return None


def _unpack_width(scope: ast.AST) -> tuple[int, ast.AST] | None:
    """Arity of the ``dp, ep, ... = (... for x in counters)`` unpack."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        if not _mentions_counters(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                return len(target.elts), node
    return None


def _mentions_counters(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "counters"
        for sub in ast.walk(node)
    )


def _cost_tables(tree: ast.Module) -> dict[str, tuple[dict, ast.AST]]:
    """Every literal cost-counter table present in the module."""
    tables: dict[str, tuple[dict, ast.AST]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id in _COST_TABLES
            ):
                try:
                    table = ast.literal_eval(node.value)
                except ValueError:
                    continue
                if isinstance(table, dict):
                    tables[target.id] = (table, node)
    return tables


def _table_fields(value) -> list[str]:
    """The CostModel field names a table value declares (str or list)."""
    if isinstance(value, str):
        return [value]
    if isinstance(value, (list, tuple)):
        return [v for v in value if isinstance(v, str)]
    return []


def _cost_model_fields(tree: ast.Module) -> dict[str, ast.AST]:
    """CostModel field name -> default-value node."""
    fields: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "CostModel":
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                ):
                    fields[stmt.target.id] = stmt.value
    return fields


def _is_dyadic(value: float) -> bool:
    """Whether ``value`` is exactly representable in binary floats.

    The closed form multiplies these constants by integer counts; the
    products stay exact only when each constant's denominator is a
    power of two (1.5 = 3/2 is fine, 0.3 = 3/10 is not).
    """
    try:
        denominator = Fraction(str(value)).denominator
    except ValueError:
        return False
    return denominator & (denominator - 1) == 0


# -- the rule ----------------------------------------------------------
@rule(
    "R007",
    "native-parity",
    "embedded C kernels, ctypes signatures, counter tables and cost model "
    "must agree",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("repro", "perf"):
        return
    filename = Path(ctx.path).name
    if filename == "native.py":
        yield from _check_native(ctx)
    elif filename == "kernels.py":
        yield from _check_kernels(ctx)


def _check_native(ctx: ModuleContext) -> Iterator[Finding]:
    embedded = _embedded_source(ctx.tree)
    if embedded is None:
        return
    source, source_node = embedded
    kernels = _c_kernels(source)
    if not kernels:
        yield ctx.finding(
            source_node,
            "R007",
            "embedded C source has no parseable kernel signature; the "
            "parity checker cannot verify the ctypes layout",
        )
        return

    bindings = _kernel_bindings(ctx.tree, set(kernels))
    layouts = _argtypes_layouts(ctx.tree, bindings)

    # (1) C parameter list vs. argtypes, position by position.
    for kernel, (params, _) in kernels.items():
        if kernel not in layouts:
            continue
        layout, node = layouts[kernel]
        if len(layout) != len(params):
            yield ctx.finding(
                node,
                "R007",
                f"argtypes declares {len(layout)} arguments but the C "
                f"'{kernel}' signature has {len(params)}; the "
                "ctypes call would smash the kernel's stack",
            )
            continue
        for i, ((name, c_ptr), py_ptr) in enumerate(zip(params, layout)):
            if c_ptr != py_ptr:
                yield ctx.finding(
                    node,
                    "R007",
                    f"argtypes[{i}] is "
                    f"{'c_void_p' if py_ptr else 'an integer type'} "
                    f"but C parameter {i} ('{name}') of '{kernel}' is "
                    f"{'a pointer' if c_ptr else 'int64_t'}; "
                    "pointer/integer layout must match the embedded "
                    "C signature exactly",
                )

    # (2) Every foreign call wraps exactly the pointer positions in
    # _ptr(); (3) counter widths agree within the calling function.
    for kernel, call, func in _kernel_calls(ctx.tree, set(kernels)):
        params, body = kernels[kernel]
        if not call.keywords:
            if len(call.args) != len(params):
                yield ctx.finding(
                    call,
                    "R007",
                    f"'{kernel}' is called with {len(call.args)} "
                    f"arguments but the C signature has {len(params)}",
                )
            else:
                scope = func if func is not None else ctx.tree
                makers = _ptr_makers(scope)
                ptr_locals = _pointer_locals(scope, makers)
                for i, (arg, (name, c_ptr)) in enumerate(
                    zip(call.args, params)
                ):
                    wrapped = _pointer_expr(arg, makers, ptr_locals)
                    if wrapped != c_ptr:
                        yield ctx.finding(
                            arg,
                            "R007",
                            f"argument {i} of the '{kernel}' call "
                            f"{'is' if wrapped else 'is not'} a pointer "
                            f"expression (_ptr/scratch.ptr) but C "
                            f"parameter '{name}' is "
                            f"{'a pointer' if c_ptr else 'int64_t'}",
                        )
        scope = func if func is not None else ctx.tree
        c_width = _c_counter_width(body)
        zeros = _counters_zeros_width(scope)
        if zeros is not None and c_width and zeros[0] != c_width:
            yield ctx.finding(
                zeros[1],
                "R007",
                f"counters buffer is allocated with {zeros[0]} slots but "
                f"the C kernel '{kernel}' writes "
                f"counters[0..{c_width - 1}]",
            )
        unpack = _unpack_width(scope)
        if unpack is not None and c_width and unpack[0] != c_width:
            yield ctx.finding(
                unpack[1],
                "R007",
                f"the counters unpack binds {unpack[0]} names but the C "
                f"kernel '{kernel}' writes {c_width} counters",
            )

    # (4) Cost tables: keys are kernel outputs, values are dyadic
    # CostModel fields.
    tables = _cost_tables(ctx.tree)
    cost_model = _cost_model_module(ctx)
    fields = (
        _cost_model_fields(cost_model.tree) if cost_model is not None else None
    )
    for table_name, (table, table_node) in tables.items():
        kernel = _COST_TABLES[table_name][0]
        kernel_info = kernels.get(kernel)
        if kernel_info is not None:
            param_names = {name for name, _ in kernel_info[0]}
            for key in table:
                if f"{key}_out" not in param_names:
                    yield ctx.finding(
                        table_node,
                        "R007",
                        f"{table_name} key '{key}' has no '{key}_out' "
                        f"output parameter in the C '{kernel}' signature",
                    )
        if fields is None:
            continue
        for key, value in table.items():
            for field in _table_fields(value):
                default = fields.get(field)
                if default is None:
                    yield ctx.finding(
                        table_node,
                        "R007",
                        f"{table_name} maps '{key}' to '{field}', which "
                        "is not a CostModel field",
                    )
                    continue
                number = astutil.numeric_value(default)
                if number is None or not _is_dyadic(number):
                    yield ctx.finding(
                        table_node,
                        "R007",
                        f"CostModel.{field} defaults to "
                        f"{number if number is not None else 'a non-literal'}"
                        f" ({cost_model.path}:"
                        f"{getattr(default, 'lineno', '?')}), "
                        "which is not a dyadic rational; the native "
                        "kernel's closed-form costs are only exact for "
                        "power-of-two denominators (docs/PERFORMANCE.md)",
                    )


def _cost_model_module(ctx: ModuleContext):
    if ctx.program is None:
        return None
    return ctx.program.module_named("repro.runtime.cost_model")


def _check_kernels(ctx: ModuleContext) -> Iterator[Finding]:
    """The closed forms in kernels.py must price what the tables say."""
    if ctx.program is None:
        return
    native = ctx.program.module_named("repro.perf.native")
    if native is None:
        return
    tables = _cost_tables(native.tree)
    for table_name, (table, _) in tables.items():
        fn_name = _COST_TABLES[table_name][1]
        expected = {
            (field, counter)
            for counter, value in table.items()
            for field in _table_fields(value)
        }
        func = None
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == fn_name:
                func = node
                break
        if func is None:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "task_costs"
                for t in node.targets
            ):
                continue
            actual = set(_model_products(node.value))
            if actual != expected:
                missing = sorted(expected - actual)
                extra = sorted(actual - expected)
                detail = []
                if missing:
                    detail.append(
                        "missing "
                        + ", ".join(f"model.{f} * {c}" for f, c in missing)
                    )
                if extra:
                    detail.append(
                        "unexpected "
                        + ", ".join(f"model.{f} * {c}" for f, c in extra)
                    )
                yield ctx.finding(
                    node,
                    "R007",
                    f"task_costs closed form of {fn_name} disagrees with "
                    f"native.{table_name}: {'; '.join(detail)}",
                )
            break


def _model_products(node: ast.expr) -> Iterator[tuple[str, str]]:
    """``(field, counter)`` pairs from a sum of ``model.f * c`` terms."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        yield from _model_products(node.left)
        yield from _model_products(node.right)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left = astutil.dotted_name(node.left)
        right = astutil.dotted_name(node.right)
        if left is not None and right is not None:
            if left.startswith("model.") and "." not in right:
                yield left[len("model.") :], right
            elif right.startswith("model.") and "." not in left:
                yield right[len("model.") :], left
