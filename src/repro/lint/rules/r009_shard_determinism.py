"""R009 shard-determinism: canonical merge order inside ``repro/shard/``.

The shard engine's contract (docs/SHARDING.md) is that the simulated
ledger and every ``shard.*`` metric are **worker-count invariant**: the
coordinator must fold worker replies in the fixed shard order, never in
completion order.  The classic way to break that silently is iterating
``concurrent.futures.as_completed(...)`` (or a multiprocessing pool's
``imap_unordered``) and charging the ledger — or recording metrics —
inside the loop body: the charge sequence then depends on OS scheduling
and differs run to run and worker count to worker count.

This rule flags, inside the ``repro/shard/`` package only, any ``for``
(or ``async for``) loop whose iterable is an unordered-completion
source and whose body reaches

* a ledger charge (``parallel_for`` / ``sequential`` / ``record_*``), or
* a registry mutation (``inc`` / ``observe`` / ``set_gauge`` / ...),

unless the loop body only *collects* results (the collect-then-sort
idiom: gather replies into a dict/list keyed by shard, then fold in
sorted order outside the loop — that is fine and is what the pool
does).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule
from repro.lint.rules.r008_metrics_side_effect import (
    CHARGING_METHODS,
    REGISTRY_MUTATORS,
)

#: Call names (last component) yielding results in completion order.
UNORDERED_SOURCES = frozenset(
    {
        "as_completed",
        "imap_unordered",
    }
)


def _unordered_source(iterable: ast.AST) -> str | None:
    """The unordered-completion callee feeding a loop, if any.

    Matches both a direct ``for f in as_completed(...)`` and the
    wrapped forms ``enumerate(as_completed(...))`` /
    ``list(pool.imap_unordered(...))``.
    """
    if not isinstance(iterable, ast.Call):
        return None
    name = astutil.call_name(iterable)
    if name is not None and name.split(".")[-1] in UNORDERED_SOURCES:
        return name
    for arg in iterable.args:
        inner = _unordered_source(arg)
        if inner is not None:
            return inner
    return None


def _ordering_sinks(body: list[ast.stmt]) -> Iterator[tuple[ast.Call, str]]:
    """Calls in a loop body whose order the ledger/metrics can observe."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in CHARGING_METHODS:
                yield node, f"ledger charge '{func.attr}()'"
            elif func.attr in REGISTRY_MUTATORS:
                yield node, f"registry hook '{func.attr}()'"


@rule(
    "R009",
    "shard-determinism",
    "shard merges fold replies in shard order: no ledger charge or "
    "registry hook inside an as_completed/imap_unordered loop",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("repro", "shard"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        source = _unordered_source(node.iter)
        if source is None:
            continue
        for call, sink in _ordering_sinks(node.body + node.orelse):
            yield ctx.finding(
                call,
                "R009",
                f"{sink} inside a '{source}(...)' loop folds worker "
                "replies in completion order; collect the replies and "
                "fold them in shard order so the ledger stays "
                "worker-count invariant",
            )
