"""R001 charge-coverage: numpy work in runtime-aware code must be charged.

Every figure of the reproduction is computed from the :class:`SimRuntime`
ledger, so an algorithm function that performs numpy array operations but
never charges them records *zero* work and span for real computation —
silently deflating work/span/burdened-span everywhere that function runs
(the exact failure mode Cilkview-style instrumentation exists to catch).

The heuristic: a function that **accepts a runtime** (a parameter named
``runtime``/``rt`` or annotated ``SimRuntime``) is declared to be on the
accounting path.  If its body contains numpy array operations but

* no reachable charge call (``parallel_for`` / ``parallel_update`` /
  ``sequential`` / ``barrier_only`` / ``imbalanced_step`` / ``record_*``),
  and
* never *forwards* the runtime (passing it to a callee, storing it on an
  object, or returning it — in all of which cases the receiver is
  responsible for charging),

then the work it performs can never reach the ledger, and R001 fires on
the function definition.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Parameter names treated as "this is the simulated runtime".
RUNTIME_PARAM_NAMES = frozenset({"runtime", "rt"})


def _runtime_parameter(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> str | None:
    """Name of the runtime parameter of ``func``, if it has one."""
    for arg in astutil.all_parameters(func):
        if arg.arg in RUNTIME_PARAM_NAMES:
            return arg.arg
        if "SimRuntime" in astutil.annotation_source(arg):
            return arg.arg
    return None


def _has_charge(func: ast.AST) -> bool:
    """Whether any charge or ``record_*`` call appears in ``func``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not isinstance(callee, ast.Attribute):
            continue
        if callee.attr in astutil.CHARGE_METHODS:
            return True
        if callee.attr.startswith("record_"):
            return True
    return False


def _forwards_runtime(func: ast.AST, param: str) -> bool:
    """Whether ``func`` hands its runtime to someone else.

    Forwarding means the callee (or the object the runtime is stored on)
    takes over the charging responsibility, so R001 stays quiet.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            for value in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(value, ast.Name) and value.id == param:
                    return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if isinstance(value, ast.Name) and value.id == param:
                return True
            if isinstance(value, ast.Tuple) and any(
                isinstance(el, ast.Name) and el.id == param
                for el in value.elts
            ):
                return True
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == param:
                    return True
    return False


def _first_numpy_operation(func: ast.AST) -> ast.AST | None:
    """First numpy-flavored array operation in ``func``, if any.

    Counts calls through the ``np``/``numpy`` modules and in-place
    subscript writes (``arr[idx] = ...`` / ``arr[idx] += ...``) — the two
    shapes real kernels in this codebase take.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = astutil.call_name(node)
            if name is not None and (
                name.startswith("np.") or name.startswith("numpy.")
            ):
                return node
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if any(isinstance(t, ast.Subscript) for t in targets):
                return node
    return None


@rule(
    "R001",
    "charge-coverage",
    "numpy work in a runtime-accepting function must reach the ledger",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    for func in astutil.iter_functions(ctx.tree):
        param = _runtime_parameter(func)
        if param is None:
            continue
        if _has_charge(func) or _forwards_runtime(func, param):
            continue
        operation = _first_numpy_operation(func)
        if operation is None:
            continue
        yield ctx.finding(
            func,
            "R001",
            f"function '{func.name}' accepts a SimRuntime ({param!r}) and "
            f"performs numpy array operations (first at line "
            f"{getattr(operation, 'lineno', '?')}) but never charges the "
            "runtime or forwards it to a callee; the work is invisible to "
            "the work/span ledger",
        )
