"""R001 charge-coverage: numpy work in runtime-aware code must be charged.

Every figure of the reproduction is computed from the :class:`SimRuntime`
ledger, so an algorithm function that performs numpy array operations but
never charges them records *zero* work and span for real computation —
silently deflating work/span/burdened-span everywhere that function runs
(the exact failure mode Cilkview-style instrumentation exists to catch).

A function that **accepts a runtime** (a parameter named ``runtime``/
``rt`` or annotated ``SimRuntime``) is declared to be on the accounting
path.  Since v2 the check is *interprocedural*: the engine's call graph
answers whether a ledger charge is **reachable** from the function
through resolved calls (including methods, aliased imports, and
callbacks passed to helpers).  That closes the v1 hole where merely
*passing the runtime onward* silenced the rule — forwarding to a callee
that itself never charges is now flagged at the forwarding function.

The rule stays quiet only when charging responsibility provably or
unresolvably leaves the function:

* the runtime is passed to a call the engine cannot resolve (a foreign
  or dynamic callee may charge; syntactic analysis cannot see inside);
* the runtime is stored on ``self`` of a class that has a charging
  method (the instance charges later);
* the runtime is passed to the constructor of a class that charges;
* the runtime is returned (the caller keeps the responsibility).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Parameter names treated as "this is the simulated runtime".
RUNTIME_PARAM_NAMES = frozenset({"runtime", "rt"})


def _runtime_parameter(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> str | None:
    """Name of the runtime parameter of ``func``, if it has one."""
    for arg in astutil.all_parameters(func):
        if arg.arg in RUNTIME_PARAM_NAMES:
            return arg.arg
        if "SimRuntime" in astutil.annotation_source(arg):
            return arg.arg
    return None


def _first_numpy_operation(func: ast.AST) -> ast.AST | None:
    """First numpy-flavored array operation in ``func``, if any.

    Counts calls through the ``np``/``numpy`` modules and in-place
    subscript writes (``arr[idx] = ...`` / ``arr[idx] += ...``) — the two
    shapes real kernels in this codebase take.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = astutil.call_name(node)
            if name is not None and (
                name.startswith("np.") or name.startswith("numpy.")
            ):
                return node
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if any(isinstance(t, ast.Subscript) for t in targets):
                return node
    return None


def _mentions(node: ast.AST, param: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == param
        for sub in ast.walk(node)
    )


def _runtime_escapes(ctx: ModuleContext, info, param: str) -> bool:
    """Whether charging responsibility leaves ``info`` with the runtime.

    Resolved calls are *not* escapes: the charge fixpoint already saw
    them, so if none of them can charge, forwarding is no excuse.
    """
    program = ctx.program
    graph = program.callgraph
    func = info.node

    for site in graph.sites_in(info):
        call = site.call
        carries = any(
            _mentions(value, param)
            for value in [*call.args, *[kw.value for kw in call.keywords]]
        )
        if not carries:
            continue
        if not site.targets and site.constructed is None:
            return True  # unresolved callee may charge
        if site.constructed is not None and graph.class_can_charge(
            site.constructed
        ):
            return True

    cls = None
    if info.class_name is not None and ctx.module is not None:
        table = program.symbols_for(info.module)
        cls = table.classes.get(info.class_name) if table else None

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _mentions(value, param):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    on_self = (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    )
                    if not on_self:
                        return True  # foreign object takes ownership
                    if cls is None or graph.class_can_charge(cls):
                        return True
        elif isinstance(node, ast.Return) and node.value is not None:
            if _mentions(node.value, param):
                return True
    return False


@rule(
    "R001",
    "charge-coverage",
    "numpy work in a runtime-accepting function must reach the ledger",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    program = ctx.program
    if program is None or ctx.module is None:
        return
    for info in ctx.functions():
        func = info.node
        param = _runtime_parameter(func)
        if param is None:
            continue
        if program.can_charge(info):
            continue
        if _runtime_escapes(ctx, info, param):
            continue
        operation = _first_numpy_operation(func)
        if operation is None:
            continue
        yield ctx.finding(
            func,
            "R001",
            f"function '{func.name}' accepts a SimRuntime ({param!r}) and "
            f"performs numpy array operations (first at line "
            f"{getattr(operation, 'lineno', '?')}) but no ledger charge is "
            "reachable through its resolved call graph; the work is "
            "invisible to the work/span ledger",
        )
