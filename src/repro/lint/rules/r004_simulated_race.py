"""R004 simulated-race: contended arrays must not take raw in-place writes.

In the paper's contention model (Sec. 2), concurrent updates to one
memory location serialize on its cache line; the runtime accounts for
that through the batch-atomic helpers in :mod:`repro.runtime.atomics`
(``batch_decrement`` / ``batch_increment_clamped``), which both apply
the updates *and* return the per-location contention counts that
``parallel_update`` charges to the span.

A function that routes an array through those helpers (or hands it to
``parallel_update``) has declared it **shared state of a parallel
region**.  A *raw* in-place write to the same array in the same function
— ``arr[idx] = ...``, ``arr[idx] -= ...``, ``np.subtract.at(arr, ...)``
— is the simulated equivalent of a data race: the mutation happens but
its contention never reaches the span, so burdened-span figures
(Figs. 9/14) undercount exactly where the paper says contention bites.

Scope is limited to ``repro/core/`` modules: that is where algorithm
code lives; the atomics helpers themselves (``repro/runtime/``) must of
course write the arrays they implement.

Deliberate inline reimplementations of the batch-atomic semantics (there
is one in the online peel, which needs the survivors mask) should carry
an explicit ``# lint: disable=R004`` with a comment explaining why the
contention is still accounted.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Call names (match on trailing attribute) that mark their first
#: argument as a contended shared array.
BATCH_HELPERS = frozenset({"batch_decrement", "batch_increment_clamped"})


def _contended_arrays(func: ast.AST) -> set[str]:
    """Dotted names of arrays this function treats as contended."""
    contended: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.call_name(node)
        if name is None:
            continue
        tail = name.rsplit(".", 1)[-1]
        if tail in BATCH_HELPERS and node.args:
            target = astutil.dotted_name(node.args[0])
            if target is not None:
                contended.add(target)
        elif tail == "parallel_update":
            # Only the contention-counts argument describes shared state;
            # per-task cost arrays are thread-private by construction.
            counts = astutil.argument(node, 1, "contention_counts")
            if counts is not None:
                target = astutil.dotted_name(counts)
                if target is not None:
                    contended.add(target)
    return contended


def _subscript_base(node: ast.expr) -> str | None:
    """Dotted name of ``x`` in a ``x[...]`` expression, else None."""
    if isinstance(node, ast.Subscript):
        return astutil.dotted_name(node.value)
    return None


def _raw_writes(
    func: ast.AST, contended: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    """(node, array name) for each raw in-place write to contended state."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = _subscript_base(target)
                if base is not None and base in contended:
                    yield node, base
        elif isinstance(node, ast.Call):
            # In-place ufunc application: np.subtract.at(arr, idx, v).
            name = astutil.call_name(node)
            if (
                name is not None
                and (name.startswith("np.") or name.startswith("numpy."))
                and name.endswith(".at")
                and node.args
            ):
                base = astutil.dotted_name(node.args[0])
                if base is not None and base in contended:
                    yield node, base


@rule(
    "R004",
    "simulated-race",
    "no raw in-place writes to arrays shared with the batch atomics",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("repro", "core"):
        return
    for func in astutil.iter_functions(ctx.tree):
        contended = _contended_arrays(func)
        if not contended:
            continue
        for node, array in _raw_writes(func, contended):
            yield ctx.finding(
                node,
                "R004",
                f"raw in-place write to '{array}', which this function "
                "also routes through the batch-atomic helpers / "
                "parallel_update; the write bypasses contention "
                "accounting (a data race in the paper's model) — use "
                "repro.runtime.atomics or account the contention "
                "explicitly",
            )
