"""R004 simulated-race: contended arrays must not take raw in-place writes.

In the paper's contention model (Sec. 2), concurrent updates to one
memory location serialize on its cache line; the runtime accounts for
that through the batch-atomic helpers in :mod:`repro.runtime.atomics`
(``batch_decrement`` / ``batch_increment_clamped``), which both apply
the updates *and* return the per-location contention counts that
``parallel_update`` charges to the span.

An array routed through those helpers (or handed to ``parallel_update``)
is **shared state of a parallel region** — and since v2 the marking is
*interprocedural*: the engine's contended-parameter fixpoint follows the
array through resolved helper calls, so wrapping the atomics in a
convenience function no longer hides the sharing from the rule.

A *raw* in-place write to a shared array — ``arr[idx] = ...``,
``arr[idx] -= ...``, ``np.subtract.at(arr, ...)`` — is treated with a
may-happen-in-parallel approximation: every statement of a function that
participates in the parallel step may run concurrently with the atomic
updates, so the write is a simulated data race **unless the index is
provably disjoint** (one write per location).  Accepted disjointness
evidence, matching how real kernels here are written:

* a slice or boolean-mask index (``arr[mask] = ...`` writes each
  location at most once);
* an index produced by ``np.unique`` / ``np.nonzero`` /
  ``np.flatnonzero`` / ``np.where`` / ``np.arange`` (distinct by
  construction), directly or through a local variable.

Unproven writes bypass contention accounting — the mutation happens but
its contention never reaches the span, so burdened-span figures
(Figs. 9/14) undercount exactly where the paper says contention bites.

Scope is limited to ``repro/core/`` modules: that is where algorithm
code lives; the atomics helpers themselves (``repro/runtime/``) must of
course write the arrays they implement.

Deliberate inline reimplementations of the batch-atomic semantics (there
is one in the online peel, which needs the survivors mask) should carry
an explicit ``# lint: disable=R004`` with a comment explaining why the
contention is still accounted.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.engine.callgraph import BATCH_HELPERS
from repro.lint.finding import Finding
from repro.lint.registry import rule

#: Index-producing numpy calls whose result holds distinct locations.
_DISJOINT_PRODUCERS = frozenset(
    {"unique", "nonzero", "flatnonzero", "where", "arange"}
)


def _direct_contended(func: ast.AST) -> set[str]:
    """Dotted names this function itself routes through the atomics."""
    contended: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.call_name(node)
        if name is None:
            continue
        tail = name.rsplit(".", 1)[-1]
        if tail in BATCH_HELPERS and node.args:
            target = astutil.dotted_name(node.args[0])
            if target is not None:
                contended.add(target)
        elif tail == "parallel_update":
            # Only the contention-counts argument describes shared state;
            # per-task cost arrays are thread-private by construction.
            counts = astutil.argument(node, 1, "contention_counts")
            if counts is not None:
                target = astutil.dotted_name(counts)
                if target is not None:
                    contended.add(target)
    return contended


def _contended_arrays(ctx: ModuleContext, info) -> set[str]:
    """Shared arrays of ``info``, including through resolved helpers."""
    contended = _direct_contended(info.node)
    if ctx.program is None:
        return contended
    graph = ctx.program.callgraph
    for site in graph.sites_in(info):
        call = site.call
        for target in site.targets:
            tainted = graph.contending_params(target)
            if not tainted:
                continue
            params = target.param_names
            shift = 1 if target.class_name is not None else 0
            for pos in tainted:
                expr = None
                arg_pos = pos - shift
                if 0 <= arg_pos < len(call.args):
                    expr = call.args[arg_pos]
                elif 0 <= pos < len(params):
                    expr = astutil.keyword_value(call, params[pos])
                if expr is None:
                    continue
                dotted = astutil.dotted_name(expr)
                if dotted is not None:
                    contended.add(dotted)
    return contended


def _index_assignments(func: ast.AST) -> dict[str, ast.expr]:
    """Last simple assignment to each local name (for disjointness)."""
    assigns: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
                elif isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            assigns[element.id] = node.value
    return assigns


def _is_disjoint_index(
    index: ast.expr, assigns: dict[str, ast.expr], depth: int = 0
) -> bool:
    """Whether every location ``index`` selects is written at most once."""
    if depth > 3:
        return False
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Compare):
        return True  # boolean mask
    if isinstance(index, ast.Call):
        name = astutil.call_name(index)
        if name is not None and name.rsplit(".", 1)[-1] in _DISJOINT_PRODUCERS:
            return True
        return False
    if isinstance(index, ast.Name):
        source = assigns.get(index.id)
        if source is not None and source is not index:
            return _is_disjoint_index(source, assigns, depth + 1)
    return False


def _raw_writes(
    func: ast.AST, contended: set[str], assigns: dict[str, ast.expr]
) -> Iterator[tuple[ast.AST, str]]:
    """(node, array name) for each unproven raw write to shared state."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                base = astutil.dotted_name(target.value)
                if base is None or base not in contended:
                    continue
                if _is_disjoint_index(target.slice, assigns):
                    continue
                yield node, base
        elif isinstance(node, ast.Call):
            # In-place ufunc application: np.subtract.at(arr, idx, v).
            name = astutil.call_name(node)
            if (
                name is not None
                and (name.startswith("np.") or name.startswith("numpy."))
                and name.endswith(".at")
                and node.args
            ):
                base = astutil.dotted_name(node.args[0])
                if base is not None and base in contended:
                    yield node, base


@rule(
    "R004",
    "simulated-race",
    "no raw in-place writes to arrays shared with the batch atomics",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("repro", "core"):
        return
    infos = ctx.functions()
    if infos:
        for info in infos:
            yield from _check_function(ctx, info)
    else:  # no program attached (standalone parse): per-file fallback
        for func in astutil.iter_functions(ctx.tree):
            contended = _direct_contended(func)
            yield from _findings(ctx, func, contended)


def _check_function(ctx: ModuleContext, info) -> Iterator[Finding]:
    contended = _contended_arrays(ctx, info)
    yield from _findings(ctx, info.node, contended)


def _findings(
    ctx: ModuleContext, func: ast.AST, contended: set[str]
) -> Iterator[Finding]:
    if not contended:
        return
    assigns = _index_assignments(func)
    for node, array in _raw_writes(func, contended, assigns):
        yield ctx.finding(
            node,
            "R004",
            f"raw in-place write to '{array}', which this parallel step "
            "shares with the batch-atomic helpers / parallel_update, and "
            "the write index is not provably one-write-per-location; the "
            "contention bypasses the span accounting (a data race in the "
            "paper's model) — use repro.runtime.atomics, a disjoint index "
            "(mask/np.unique), or account the contention explicitly",
        )
