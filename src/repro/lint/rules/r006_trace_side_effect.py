"""R006 trace-side-effect: tracing must stay observational.

The trace layer's contract (docs/OBSERVABILITY.md) is that attaching a
:class:`repro.trace.Tracer` changes *nothing*: the regression goldens
pass bit-exactly with tracing on and off, and two traced runs of the
same input produce identical trace files.  Three disciplines keep that
true, and this rule enforces each syntactically:

* **(A) clock containment** — no wall-clock read anywhere under the
  ``repro`` package except ``repro/bench/wallclock.py``, the single
  sanctioned host-clock reader.  R003 already flags clocks in algorithm
  code via suppressions; R006 pins the *location* structurally, so a
  stray ``# lint: disable=R003`` cannot quietly add a second reader.
* **(B) trace purity** — code under ``repro/trace/`` must not charge
  the simulated ledger (no ``parallel_for`` / ``sequential`` / ...,
  no ``record_*``), must not draw randomness, and must not assign to
  ``*.metrics.*``; the tracer only *reads* the execution.  Since v2
  purity is *interprocedural*: a trace module calling a resolved
  project function from which a ledger charge is reachable is flagged
  too (driver modules — ``cli.py`` / ``__main__.py`` — are exempt;
  launching a traced run is their job).
* **(C) guarded hooks** — every tracer method call outside
  ``repro/trace/`` (``on_step``, ``instant``, ...) on an optional slot
  (a name ending in ``tracer``) must sit inside an
  ``if <slot> is not None:`` guard, so the untraced path stays
  zero-cost and can never raise.  A local variable assigned directly
  from a ``Tracer(...)`` constructor is known non-None and exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule

CLOCK_FUNCTIONS = astutil.CLOCK_FUNCTIONS
_time_aliases = astutil.time_aliases

#: Tracer methods that record into the trace (the optional-slot hooks).
TRACER_MUTATORS = frozenset(
    {
        "attach",
        "attach_model",
        "on_step",
        "on_round",
        "on_subround",
        "instant",
        "host_span",
    }
)

#: Ledger-charging calls forbidden inside ``repro/trace/``.
CHARGING_METHODS = astutil.CHARGE_METHODS | {
    "record_parallel",
    "record_sequential",
}


def _is_wallclock_module(ctx: ModuleContext) -> bool:
    return ctx.in_package("repro", "bench") and (
        Path(ctx.path).name == "wallclock.py"
    )


def _parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _constructed_tracers(tree: ast.Module) -> set[str]:
    """Bare names assigned from a ``Tracer(...)`` constructor call."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        callee = astutil.call_name(node.value)
        if callee is None or not callee.split(".")[-1].endswith("Tracer"):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_guarded(
    call: ast.Call, base: str, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Whether ``call`` is in the body of ``if <base> is not None:``."""
    child: ast.AST = call
    parent = parents.get(call)
    while parent is not None:
        if isinstance(parent, ast.If) and any(
            child is stmt for stmt in parent.body
        ):
            test = parent.test
            if (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
                and astutil.dotted_name(test.left) == base
            ):
                return True
        child, parent = parent, parents.get(parent)
    return False


@rule(
    "R006",
    "trace-side-effect",
    "tracing is observational: clocks only in bench.wallclock, pure "
    "trace/ package, tracer hooks behind 'is not None' guards",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.in_package("repro"):
        if not _is_wallclock_module(ctx):
            yield from _check_clocks(ctx)
        if ctx.in_package("repro", "trace"):
            yield from _check_purity(ctx)
            yield from _check_transitive_purity(ctx)
            return
    yield from _check_guards(ctx)


def _is_trace_driver(ctx: ModuleContext) -> bool:
    """Driver modules that legitimately launch charging runs."""
    return Path(ctx.path).name in ("cli.py", "__main__.py")


def _check_transitive_purity(ctx: ModuleContext) -> Iterator[Finding]:
    """Trace code must not *reach* a ledger charge through calls."""
    if ctx.program is None or ctx.module is None or _is_trace_driver(ctx):
        return
    graph = ctx.program.callgraph
    for info in ctx.functions():
        for site in graph.sites_in(info):
            for target in site.targets:
                if target.module.startswith("repro.trace"):
                    continue  # flagged by (B) where the charge appears
                if graph.can_charge(target):
                    yield ctx.finding(
                        site.call,
                        "R006",
                        f"trace code calls '{target.qualname}', from which "
                        "a ledger charge is reachable; the tracer must "
                        "observe the run, not drive it (drivers belong in "
                        "cli.py/__main__.py)",
                    )
                    break


def _check_clocks(ctx: ModuleContext) -> Iterator[Finding]:
    time_modules, clock_names = _time_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.call_name(node)
        if name is None:
            continue
        head, _, tail = name.rpartition(".")
        if (head in time_modules and tail in CLOCK_FUNCTIONS) or (
            not head and name in clock_names
        ):
            yield ctx.finding(
                node,
                "R006",
                f"wall-clock read '{name}()' outside repro.bench.wallclock;"
                " host timing must go through wallclock.measure() so traces"
                " stay deterministic",
            )


def _check_purity(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = astutil.call_name(node)
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in CHARGING_METHODS
            ):
                yield ctx.finding(
                    node,
                    "R006",
                    f"trace code must not charge the ledger "
                    f"('{func.attr}'); the tracer only observes the run",
                )
            elif name is not None and (
                name.startswith(("np.random.", "numpy.random."))
                or name.split(".")[-1] == "random"
            ):
                yield ctx.finding(
                    node,
                    "R006",
                    f"trace code must not draw randomness ('{name}()'); "
                    "a traced run must equal the untraced run bit-exactly",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                dotted = astutil.dotted_name(target)
                if dotted is not None and ".metrics." in dotted + ".":
                    yield ctx.finding(
                        node,
                        "R006",
                        f"trace code must not mutate runtime metrics "
                        f"('{dotted}')",
                    )


def _check_guards(ctx: ModuleContext) -> Iterator[Finding]:
    parents: dict[ast.AST, ast.AST] | None = None
    constructed: set[str] | None = None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.call_name(node)
        if name is None or "." not in name:
            continue
        base, _, method = name.rpartition(".")
        if method not in TRACER_MUTATORS:
            continue
        if not (base == "tracer" or base.endswith("tracer")):
            continue
        if constructed is None:
            constructed = _constructed_tracers(ctx.tree)
        if base in constructed:
            continue
        if parents is None:
            parents = _parents(ctx.tree)
        if not _is_guarded(node, base, parents):
            yield ctx.finding(
                node,
                "R006",
                f"tracer hook '{name}()' outside an "
                f"'if {base} is not None:' guard; the untraced path must "
                "stay zero-cost",
            )
