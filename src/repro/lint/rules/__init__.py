"""Rule modules; importing this package registers every rule.

Each rule lives in its own module named ``rNNN_<rule-name>.py`` and
registers itself via :func:`repro.lint.registry.rule`.  Adding a rule is
adding a module here and importing it below — nothing else to wire.
"""

from repro.lint.rules import (  # noqa: F401
    r001_charge_coverage,
    r002_untagged_charge,
    r003_determinism,
    r004_simulated_race,
    r005_magic_cost_constant,
    r006_trace_side_effect,
    r007_native_parity,
    r008_metrics_side_effect,
    r009_shard_determinism,
)
