"""R002 untagged-charge: every charge call must carry a ``tag=`` keyword.

The profiler and the per-phase breakdowns (Fig. 12-style "where does the
time go" plots) aggregate ledger entries *by tag*.  A charge with no tag
lands in an anonymous bucket, so an entire phase of the algorithm
disappears from every attribution report while still inflating totals —
the numbers stop adding up and nobody can say why.

R002 requires each ``parallel_for`` / ``parallel_update`` /
``sequential`` / ``barrier_only`` / ``imbalanced_step`` call to pass
``tag=`` **as a keyword** whose value is not an empty string literal.
Positional string tags are flagged too: the keyword form is what keeps
call sites greppable when a phase shows up hot in a profile.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import rule


@rule(
    "R002",
    "untagged-charge",
    "charge calls must pass a non-empty tag= keyword",
)
def check(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        method = astutil.charge_method_of(node)
        if method is None:
            continue
        tag = astutil.keyword_value(node, "tag")
        if tag is None:
            positional = [
                arg
                for arg in node.args
                if isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
            ]
            if positional:
                yield ctx.finding(
                    node,
                    "R002",
                    f"{method}() passes its tag positionally; write "
                    "tag=... explicitly so profiler phases stay greppable",
                )
            else:
                yield ctx.finding(
                    node,
                    "R002",
                    f"{method}() has no tag=; untagged charges are "
                    "unattributable in profiler and metrics breakdowns",
                )
            continue
        if isinstance(tag, ast.Constant) and (
            not isinstance(tag.value, str) or not tag.value.strip()
        ):
            yield ctx.finding(
                node,
                "R002",
                f"{method}() has an empty or non-string tag=; give the "
                "phase a descriptive name",
            )
