"""Finding baselines: fail only on *new* findings.

A baseline file records a fingerprint for every finding present at the
time it was written.  Subsequent runs subtract baselined fingerprints
and fail only on what is new — the standard adoption path for a linter
growing stricter rules over an existing tree (the committed baseline in
this repository is empty: the tree lints clean and must stay so).

Fingerprints hash ``path | rule | message`` and deliberately exclude the
line number, so reformatting or unrelated edits that shift a suppressed
legacy finding do not resurrect it.  Two identical findings in one file
share a fingerprint; the baseline stores a count so adding a *second*
occurrence of an already-baselined defect still fails.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.lint.finding import Finding

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding, independent of its line number."""
    key = f"{finding.path}|{finding.rule_id}|{finding.message}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint multiset from ``path`` (empty on missing file)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Counter()
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unrecognized baseline format in {path}")
    counts = data.get("fingerprints", {})
    if isinstance(counts, list):  # tolerate a bare list of fingerprints
        return Counter(counts)
    return Counter({str(k): int(v) for k, v in counts.items()})


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Record ``findings`` as the new baseline at ``path``."""
    counts = Counter(fingerprint(finding) for finding in findings)
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": {k: counts[k] for k in sorted(counts)},
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def filter_new(
    findings: Sequence[Finding], baseline: Counter
) -> list[Finding]:
    """Findings not covered by the baseline (per-fingerprint counted)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    return new
