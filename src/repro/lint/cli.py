"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit status is 0 when no unsuppressed finding was emitted, 1 otherwise,
2 on usage errors — the contract CI and ``make lint`` rely on.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.registry import all_rules
from repro.lint.reporters import REPORTERS
from repro.lint.runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for the simulated-runtime discipline: "
            "charge coverage, tag hygiene, determinism, simulated races "
            "and magic cost constants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R001,R004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} {rule.name}: {rule.summary}")
        return 0

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    select = args.select.split(",") if args.select else None
    try:
        findings = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(REPORTERS[args.format](findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
