"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit status is 0 when no unsuppressed, non-baselined finding was
emitted, 1 otherwise, 2 on usage errors — the contract CI and ``make
lint`` rely on.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.baseline import filter_new, load_baseline, write_baseline
from repro.lint.registry import all_rules
from repro.lint.reporters import REPORTERS
from repro.lint.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Whole-program static analysis for the simulated-runtime "
            "discipline: charge-coverage reachability, tag hygiene, "
            "determinism taint, simulated races, magic cost constants "
            "and native-kernel parity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R001,R004)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        nargs="?",
        const=".lint-cache",
        default=None,
        help=(
            "enable the content-hash incremental cache in DIR "
            "(default dir when flag is bare: .lint-cache); ignored "
            "with --select"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into the --baseline file",
    )
    parser.add_argument(
        "--only",
        metavar="PATHS",
        help=(
            "comma-separated path prefixes: analyze the whole program "
            "but report findings only for matching files (make "
            "lint-changed)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _matches_only(path: str, prefixes: list[str]) -> bool:
    normalized = Path(path).as_posix().lstrip("./")
    return any(
        normalized.startswith(prefix.strip().lstrip("./"))
        for prefix in prefixes
        if prefix.strip()
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} {rule.name}: {rule.summary}")
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    select = args.select.split(",") if args.select else None
    try:
        result = run_lint(args.paths, select=select, cache_dir=args.cache)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = result.findings
    if args.only:
        prefixes = args.only.split(",")
        findings = [
            finding
            for finding in findings
            if _matches_only(finding.path, prefixes)
        ]

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"baseline: recorded {len(findings)} finding(s) in "
            f"{args.baseline}"
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings = filter_new(findings, baseline)

    print(REPORTERS[args.format](findings, result.stats))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
