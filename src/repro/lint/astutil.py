"""Small AST helpers shared by the lint rules.

Everything here is syntactic: the linter never imports the code it
checks, so "is this a runtime?" style questions are answered from names
and annotations, not from types.  Rules document the heuristics they
build on top of these helpers.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Wall-clock reading functions of the ``time`` module.
CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``np.random`` attributes that are part of the modern Generator API and
#: therefore *not* global-state RNG.
GENERATOR_API = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


def time_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``time``, local names bound to its clocks)."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_FUNCTIONS:
                    functions.add(alias.asname or alias.name)
    return modules, functions


#: The charge vocabulary of :class:`repro.runtime.simulator.SimRuntime`.
#: Every simulated parallel or sequential step enters the ledger through
#: one of these methods (``record_*`` are the underlying metric hooks).
CHARGE_METHODS = frozenset(
    {
        "parallel_for",
        "parallel_update",
        "sequential",
        "barrier_only",
        "imbalanced_step",
    }
)

#: Charge methods that take a cost expression as their first argument.
COSTED_CHARGE_METHODS = frozenset(
    {"parallel_for", "parallel_update", "sequential", "imbalanced_step"}
)

#: First-argument name of the cost expression per charge method.
COST_KEYWORDS = {
    "parallel_for": "task_costs",
    "parallel_update": "task_costs",
    "sequential": "work",
    "imbalanced_step": "thread_works",
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Chains interrupted by calls or subscripts (``f().x``, ``a[0].y``)
    return ``None``: they are not stable references a rule can track.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (``runtime.parallel_for``)."""
    return dotted_name(call.func)


def charge_method_of(call: ast.Call) -> str | None:
    """The charge-method name if ``call`` is a runtime charge, else None."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in CHARGE_METHODS:
        return func.attr
    return None


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    """Value of keyword argument ``name``, or None if absent."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def argument(call: ast.Call, position: int, name: str) -> ast.expr | None:
    """Argument passed positionally at ``position`` or by ``name``."""
    if len(call.args) > position:
        return call.args[position]
    return keyword_value(call, name)


def numeric_value(node: ast.AST) -> float | None:
    """The value of a numeric literal, unwrapping unary ``-``/``+``."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = numeric_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def all_parameters(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.arg]:
    """All parameters of ``func`` in declaration order."""
    args = func.args
    return [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]


def annotation_source(arg: ast.arg) -> str:
    """Source text of a parameter annotation (empty when absent)."""
    if arg.annotation is None:
        return ""
    try:
        return ast.unparse(arg.annotation)
    except Exception:  # pragma: no cover - unparse is total on ast nodes
        return ""
