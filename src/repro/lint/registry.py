"""The rule registry.

Rules live one per module under :mod:`repro.lint.rules` and register
themselves with the :func:`rule` decorator at import time.  The runner
iterates :func:`all_rules`; the CLI's ``--select`` filters by id.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.lint.context import ModuleContext
from repro.lint.finding import Finding

CheckFunction = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule.

    Attributes:
        rule_id: Stable identifier (``R001`` ...), used in reports,
            ``--select`` and suppression comments.
        name: Short kebab-case name (``charge-coverage``).
        summary: One-line description shown by ``--list-rules``.
        check: The per-module check; yields findings.
    """

    rule_id: str
    name: str
    summary: str
    check: CheckFunction


_RULES: dict[str, Rule] = {}


def rule(rule_id: str, name: str, summary: str) -> Callable[[CheckFunction], CheckFunction]:
    """Class decorator-style registrar for rule check functions."""

    def register(check: CheckFunction) -> CheckFunction:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _RULES[rule_id] = Rule(rule_id, name, summary, check)
        return check

    return register


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    import repro.lint.rules  # noqa: F401  (side effect: registers rules)

    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` for unknown ids)."""
    import repro.lint.rules  # noqa: F401

    return _RULES[rule_id]
