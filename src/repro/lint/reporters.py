"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

Every reporter takes the findings plus an optional :class:`LintStats`;
the JSON reporter embeds the stats (engine wall time, files analyzed,
cache hits, per-rule counts) and SARIF carries them as run properties,
so CI can chart both without a second invocation.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.lint.finding import Finding

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def format_text(findings: Sequence[Finding], stats=None) -> str:
    """One ``path:line:col: ID message`` line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    summary = f"{count} {noun}"
    if stats is not None:
        summary += (
            f" ({stats.files_analyzed} analyzed, {stats.cache_hits} cached,"
            f" {stats.wall_s:.2f}s)"
        )
    lines.append(summary)
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], stats=None) -> str:
    """A stable JSON document (``{"findings": [...], "count": N}``)."""
    document: dict = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if stats is not None:
        document["stats"] = stats.to_dict()
    return json.dumps(document, indent=2, sort_keys=True)


def format_sarif(findings: Sequence[Finding], stats=None) -> str:
    """A SARIF 2.1.0 log suitable for code-scanning upload."""
    from repro.lint.registry import all_rules

    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "rules": rules,
            }
        },
        "results": results,
    }
    if stats is not None:
        run["properties"] = stats.to_dict()
    return json.dumps(
        {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]},
        indent=2,
        sort_keys=True,
    )


REPORTERS = {"text": format_text, "json": format_json, "sarif": format_sarif}
