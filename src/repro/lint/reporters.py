"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.lint.finding import Finding


def format_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: ID message`` line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"{count} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document (``{"findings": [...], "count": N}``)."""
    return json.dumps(
        {
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )


REPORTERS = {"text": format_text, "json": format_json}
