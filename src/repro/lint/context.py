"""Per-module context handed to every lint rule."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.finding import Finding
from repro.lint.suppress import parse_suppressions


class ModuleContext:
    """One parsed Python module plus everything rules ask about it.

    Attributes:
        path: The file's path as given on the command line (kept verbatim
            so reported locations match what the user typed).
        source: Full source text.
        tree: Parsed ``ast.Module``.
        suppressions: Line -> suppressed-rule-ids map (see
            :mod:`repro.lint.suppress`).
        program: The :class:`repro.lint.engine.Program` this module was
            analyzed inside.  Always set by the runner; rules use it for
            interprocedural questions (call-graph reachability, taint).
        module: This file's :class:`repro.lint.engine.Module` inside the
            program (dotted name, import aliases, content hash).
    """

    def __init__(
        self,
        path: str | Path,
        source: str,
        tree: ast.Module,
        program=None,
        module=None,
    ):
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        self.program = program
        self.module = module
        self._parts = Path(path).parts

    @classmethod
    def parse(cls, path: str | Path, source: str) -> "ModuleContext":
        """Parse ``source``; raises ``SyntaxError`` on broken files.

        Standalone parse without a program; the runner instead builds a
        whole :class:`~repro.lint.engine.Program` and attaches contexts
        through :meth:`for_module`.
        """
        tree = ast.parse(source, filename=str(path))
        return cls(path, source, tree)

    @classmethod
    def for_module(cls, program, module) -> "ModuleContext":
        """Context for one module of an already-built program."""
        return cls(
            module.path,
            module.source,
            module.tree,
            program=program,
            module=module,
        )

    # ------------------------------------------------------------------
    def functions(self):
        """FunctionInfos of this module (empty without a program)."""
        if self.program is None or self.module is None:
            return []
        return self.program.functions_in(self.module.name)

    # ------------------------------------------------------------------
    def in_package(self, *parts: str) -> bool:
        """Whether the file path contains ``parts`` consecutively.

        ``ctx.in_package("repro", "core")`` is true for any file under a
        ``repro/core/`` directory regardless of the repository root the
        linter was launched from.
        """
        n = len(parts)
        return any(
            self._parts[i : i + n] == parts
            for i in range(len(self._parts) - n + 1)
        )

    def in_directory(self, name: str) -> bool:
        """Whether any path component equals ``name``."""
        return name in self._parts

    # ------------------------------------------------------------------
    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """A finding anchored at ``node``'s location in this module."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )
