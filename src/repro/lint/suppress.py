"""Suppression comments: ``# lint: disable=R001`` and friends.

A suppression is a source comment that silences specific rules:

* a **trailing** comment silences its own line::

      runtime.sequential(5.0, tag="init")  # lint: disable=R005

* a **standalone** comment line silences the next line (useful when the
  flagged expression has no room left on its line)::

      # lint: disable=R004
      dtilde[touched] = new

``disable=all`` silences every rule.  Rule lists may be comma-separated
(``disable=R001,R004``).  Findings are reported at the first line of the
offending statement, so multi-line calls are suppressed at their first
line, not at the closing parenthesis.
"""

from __future__ import annotations

import io
import re
import tokenize

#: Sentinel stored in a line's rule set when ``disable=all`` was used.
ALL = "all"

_DIRECTIVE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip().lower() if part.strip().lower() == ALL
            else part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        )
        if not rules:
            continue
        row, col = token.start
        lines = [row]
        if token.line[:col].strip() == "":
            # Standalone comment: also applies to the following line.
            lines.append(row + 1)
        for line in lines:
            suppressed.setdefault(line, set()).update(rules)
    return {line: frozenset(rules) for line, rules in suppressed.items()}


def is_suppressed(
    suppressions: dict[int, frozenset[str]], line: int, rule_id: str
) -> bool:
    """Whether ``rule_id`` is silenced on ``line``."""
    rules = suppressions.get(line)
    if rules is None:
        return False
    return ALL in rules or rule_id in rules
