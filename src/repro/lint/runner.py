"""File discovery, program construction, and rule execution.

The v2 runner is whole-program: every file of a run is parsed into one
:class:`repro.lint.engine.Program` so rules can resolve calls across
modules.  On top sits the incremental path — with a cache directory,
modules whose dependency closure is unchanged replay their stored
findings, and only the dirty modules (plus the closure they need for
context) are re-analyzed.  See :mod:`repro.lint.engine.cache`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.wallclock import measure
from repro.lint.context import ModuleContext
from repro.lint.engine.cache import CacheEntry, LintCache
from repro.lint.engine.modulegraph import Module, content_sha, module_name_for
from repro.lint.engine.program import ANALYSIS_COUPLINGS, Program
from repro.lint.finding import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import is_suppressed


@dataclass
class LintStats:
    """What one run did, for ``--format json`` and the cache tests."""

    files_total: int = 0
    files_analyzed: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    rule_counts: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "files_total": self.files_total,
            "files_analyzed": self.files_analyzed,
            "cache_hits": self.cache_hits,
            "wall_s": round(self.wall_s, 6),
            "rule_counts": dict(sorted(self.rule_counts.items())),
        }


@dataclass
class LintResult:
    """Sorted findings plus run statistics."""

    findings: list[Finding]
    stats: LintStats


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            yield path


def select_rules(select: Sequence[str] | None) -> list[Rule]:
    """Resolve a ``--select`` list (``None`` means every rule)."""
    rules = all_rules()
    if select is None:
        return rules
    wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
    unknown = wanted - {rule.rule_id for rule in rules}
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return [rule for rule in rules if rule.rule_id in wanted]


# ----------------------------------------------------------------------
def _error_finding(path: str | Path, message: str, line: int = 1, col: int = 0) -> Finding:
    return Finding(
        path=str(path), line=line, col=col, rule_id="E000", message=message
    )


def _parse_module(path: str | Path, source: str, name: str) -> Module:
    module = Module.parse(path, source)
    if module.name != name:  # collision fallback: path-unique name
        module.name = name
    return module


def _check_module(
    program: Program, module: Module, rules: Sequence[Rule]
) -> list[Finding]:
    ctx = ModuleContext.for_module(program, module)
    return sorted(
        finding
        for rule in rules
        for finding in rule.check(ctx)
        if not is_suppressed(ctx.suppressions, finding.line, finding.rule_id)
    )


def run_lint(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    cache_dir: str | Path | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` as one program.

    ``cache_dir`` enables the incremental cache; it is ignored when a
    rule subset is selected (cached entries describe full-rule runs).
    """
    stats = LintStats()
    with measure() as sample:
        findings = _run_lint(paths, select, cache_dir, stats)
    stats.wall_s = sample.wall_s
    for finding in findings:
        stats.rule_counts[finding.rule_id] = (
            stats.rule_counts.get(finding.rule_id, 0) + 1
        )
    return LintResult(findings=findings, stats=stats)


def _run_lint(
    paths: Iterable[str | Path],
    select: Sequence[str] | None,
    cache_dir: str | Path | None,
    stats: LintStats,
) -> list[Finding]:
    rules = select_rules(select)
    findings: list[Finding] = []

    # Read every file once; assign collision-free module names.
    sources: dict[str, tuple[str, str]] = {}  # name -> (path, source)
    names: dict[str, str] = {}  # path -> name
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(_error_finding(path, f"could not read file: {exc}"))
            continue
        name = module_name_for(path)
        if name in sources:
            name = str(path)
        sources[name] = (str(path), source)
        names[str(path)] = name
    stats.files_total = len(sources) + len(findings)

    use_cache = cache_dir is not None and select is None
    cache = LintCache(cache_dir) if use_cache else None
    shas = {
        name: content_sha(source) for name, (_, source) in sources.items()
    }

    clean: dict[str, CacheEntry] = {}
    if cache is not None:
        for name in sources:
            entry = cache.valid_entry(name, shas)
            if entry is not None:
                clean[name] = entry
    dirty = [name for name in sources if name not in clean]
    stats.cache_hits = len(clean)
    stats.files_analyzed = len(dirty)

    # Parse the dirty modules plus the closure they need for context.
    known = set(sources)
    modules: dict[str, Module] = {}
    queue = list(dirty)
    while queue:
        name = queue.pop()
        if name in modules or name not in sources:
            continue
        path, source = sources[name]
        try:
            modules[name] = _parse_module(path, source, name)
        except SyntaxError as exc:
            if name in dirty:
                findings.append(
                    _error_finding(
                        path,
                        f"could not parse file: {exc.msg}",
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                    )
                )
            continue
        deps = modules[name].project_imports(known)
        deps |= ANALYSIS_COUPLINGS.get(name, frozenset()) & known
        queue.extend(dep for dep in deps if dep not in modules)

    program = Program(modules.values())
    for name in sorted(dirty):
        module = modules.get(name)
        if module is None:
            continue  # read/parse error already reported
        module_findings = _check_module(program, module, rules)
        findings.extend(module_findings)
        if cache is not None:
            cache.store(
                CacheEntry(
                    path=module.path,
                    module=name,
                    sha=module.sha,
                    closure=sorted(program.closure(name)),
                    closure_sha=program.closure_sha(name),
                    findings=module_findings,
                )
            )
    for entry in clean.values():
        findings.extend(entry.findings)

    if cache is not None:
        # Drop entries for files that left the run, then persist.
        cache.entries = {
            name: entry
            for name, entry in cache.entries.items()
            if name in sources
        }
        cache.write()
    return sorted(findings)


# -- back-compatible entry points --------------------------------------
def lint_source(
    source: str,
    path: str | Path = "<string>",
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one source string (the test suite's entry point)."""
    try:
        module = Module.parse(path, source)
    except SyntaxError as exc:
        return [
            _error_finding(
                path,
                f"could not parse file: {exc.msg}",
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    program = Program([module])
    return _check_module(program, module, select_rules(select))


def lint_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; sorted findings."""
    return run_lint(paths, select=select).findings
