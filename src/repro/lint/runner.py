"""File discovery and rule execution."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.lint.context import ModuleContext
from repro.lint.finding import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import is_suppressed


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            yield path


def select_rules(select: Sequence[str] | None) -> list[Rule]:
    """Resolve a ``--select`` list (``None`` means every rule)."""
    rules = all_rules()
    if select is None:
        return rules
    wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
    unknown = wanted - {rule.rule_id for rule in rules}
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return [rule for rule in rules if rule.rule_id in wanted]


def lint_source(
    source: str,
    path: str | Path = "<string>",
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one source string (the test suite's entry point)."""
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="E000",
                message=f"could not parse file: {exc.msg}",
            )
        ]
    findings = [
        finding
        for rule in select_rules(select)
        for finding in rule.check(ctx)
        if not is_suppressed(ctx.suppressions, finding.line, finding.rule_id)
    ]
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths``; sorted findings."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=0,
                    rule_id="E000",
                    message=f"could not read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, path=path, select=select))
    return sorted(findings)
