"""Static analysis for the simulated-runtime discipline (``repro.lint``).

The reproduction's single load-bearing invariant is that algorithm code
*charges* every operation to :class:`repro.runtime.simulator.SimRuntime`
and routes every concurrent update to shared state through the
batch-atomic helpers — otherwise work/span/burdened-span (paper Sec. 2)
and the contention figures are silently wrong.  Nothing in Python
enforces that, so this package does, the way Cilkview-style tooling
does for the paper's C++ stack:

* ``R001 charge-coverage`` — numpy work near a runtime must be charged;
* ``R002 untagged-charge`` — every charge carries a ``tag=`` keyword;
* ``R003 determinism`` — no wall clocks or global-state RNG in ``src/``;
* ``R004 simulated-race`` — no raw writes to contended shared arrays;
* ``R005 magic-cost-constant`` — per-op costs come from the CostModel.

Run it with ``python -m repro.lint src/`` (or ``make lint``); suppress a
deliberate violation with a trailing ``# lint: disable=R00x`` comment.
See ``docs/LINTING.md`` for the full catalogue and rationale.
"""

from repro.lint.finding import Finding
from repro.lint.registry import Rule, all_rules, get_rule, rule
from repro.lint.runner import lint_paths, lint_source

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "rule",
    "lint_paths",
    "lint_source",
]
