"""The HISTOGRAM parallel primitive (paper Sec. 2).

Julienne's offline peel collects the concatenated neighbor lists of a
frontier into a list ``L`` and counts the occurrences of each vertex with a
HISTOGRAM, implemented in the literature by parallel semisort (Gu et al.
2015; Dong et al. 2023).  Semisort groups equal keys with ``O(|L|)`` work in
expectation but with a noticeably larger constant than a streaming pass —
the cost model charges ``histogram_op`` per element and several fork/join
phases, which is what makes the offline peel's burdened span a constant
factor worse than the online peel's (paper Sec. 6.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.simulator import SimRuntime


@dataclass(frozen=True)
class HistogramResult:
    """Grouped counts of a key array.

    Attributes:
        keys: Distinct keys in ascending order.
        counts: Occurrence count per distinct key.
    """

    keys: np.ndarray
    counts: np.ndarray


def histogram(
    keys: np.ndarray,
    runtime: SimRuntime | None = None,
    phases: int = 3,
    tag: str = "histogram",
) -> HistogramResult:
    """Count occurrences of each key (semisort-based HISTOGRAM).

    Args:
        keys: Integer key array (the list ``L`` of Alg. 2).
        runtime: Simulated runtime; charged ``histogram_op`` per element and
            ``phases`` fork/join barriers (sample, partition, count — the
            passes of a top-down semisort).
        phases: Number of synchronization phases to charge.
        tag: Ledger label.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if runtime is not None and keys.size:
        model = runtime.model
        runtime.parallel_for(
            model.histogram_op, count=keys.size, barriers=phases, tag=tag
        )
    if keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return HistogramResult(keys=empty, counts=empty)
    distinct, counts = np.unique(keys, return_counts=True)
    return HistogramResult(keys=distinct, counts=counts)


def dense_histogram(
    keys: np.ndarray,
    domain: int,
    runtime: SimRuntime | None = None,
    tag: str = "dense_histogram",
) -> np.ndarray:
    """Counts over a dense integer domain ``[0, domain)``.

    Cheaper than semisort when the domain is small and pre-allocated (the
    BZ sequential algorithm's bucket sort uses this shape).
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size and (keys.min() < 0 or keys.max() >= domain):
        raise ValueError("key out of domain for dense histogram")
    if runtime is not None and keys.size:
        runtime.parallel_for(
            runtime.model.scan_op, count=keys.size + domain, barriers=1,
            tag=tag,
        )
    return np.bincount(keys, minlength=domain)
