"""Instrumented parallel primitives: PACK, HISTOGRAM, scans, reductions."""

from repro.primitives.histogram import (
    HistogramResult,
    dense_histogram,
    histogram,
)
from repro.primitives.pack import filter_by, pack, pack_index
from repro.primitives.scan import (
    exclusive_scan,
    inclusive_scan,
    reduce_max,
    reduce_sum,
)

__all__ = [
    "HistogramResult",
    "dense_histogram",
    "exclusive_scan",
    "filter_by",
    "histogram",
    "inclusive_scan",
    "pack",
    "pack_index",
    "reduce_max",
    "reduce_sum",
]
