"""Instrumented parallel primitives: PACK, HISTOGRAM, scans, reductions."""

from repro.primitives.bitops import bit_length64, sorted_member_mask
from repro.primitives.histogram import (
    HistogramResult,
    dense_histogram,
    histogram,
)
from repro.primitives.pack import filter_by, pack, pack_index
from repro.primitives.scan import (
    exclusive_scan,
    inclusive_scan,
    reduce_max,
    reduce_sum,
)

__all__ = [
    "HistogramResult",
    "bit_length64",
    "dense_histogram",
    "exclusive_scan",
    "filter_by",
    "histogram",
    "inclusive_scan",
    "pack",
    "pack_index",
    "reduce_max",
    "reduce_sum",
    "sorted_member_mask",
]
