"""The PACK parallel primitive (paper Sec. 2).

Given an array and a predicate, PACK returns the elements satisfying the
predicate, in order, using ``O(|A|)`` work and logarithmic span (a prefix
sum over flags followed by a scatter).  The k-core framework uses PACK to
extract the initial frontier of each round (Alg. 1 line 5) and to refine
the active set (line 9).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.simulator import SimRuntime


def pack(
    values: np.ndarray,
    flags: np.ndarray,
    runtime: SimRuntime | None = None,
    tag: str = "pack",
) -> np.ndarray:
    """Return ``values[flags]`` with PACK cost accounting.

    Args:
        values: Input array.
        flags: Boolean mask of the same length.
        runtime: Simulated runtime to charge ``O(|values|)`` work to; the
            span of a parallel pack is logarithmic, which the step model
            approximates with a unit-cost task plus one barrier.
        tag: Ledger label.
    """
    values = np.asarray(values)
    flags = np.asarray(flags, dtype=bool)
    if values.shape != flags.shape:
        raise ValueError(
            f"values {values.shape} and flags {flags.shape} must match"
        )
    if runtime is not None and values.size:
        model = runtime.model
        runtime.parallel_for(
            model.scan_op, count=values.size, barriers=1, tag=tag
        )
    return values[flags]


def pack_index(
    flags: np.ndarray,
    runtime: SimRuntime | None = None,
    tag: str = "pack_index",
) -> np.ndarray:
    """Indices at which ``flags`` is true, with PACK cost accounting."""
    flags = np.asarray(flags, dtype=bool)
    if runtime is not None and flags.size:
        model = runtime.model
        runtime.parallel_for(
            model.scan_op, count=flags.size, barriers=1, tag=tag
        )
    return np.nonzero(flags)[0].astype(np.int64)


def filter_by(
    values: np.ndarray,
    predicate,
    runtime: SimRuntime | None = None,
    tag: str = "filter",
) -> np.ndarray:
    """PACK with a vectorized predicate callable instead of a mask."""
    values = np.asarray(values)
    flags = np.asarray(predicate(values), dtype=bool)
    return pack(values, flags, runtime=runtime, tag=tag)
