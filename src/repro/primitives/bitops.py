"""Integer bit manipulation primitives (vectorized, exact).

The bucketing structures map a key to its dyadic interval through the
bit length of an integer offset.  Computing that with ``np.log2`` on
float64 is exact only while the offset fits the 53-bit mantissa *and*
the rounding of the log lands on the right side of an integer — near
power-of-two boundaries at large magnitudes it silently misbuckets.
These helpers stay in integer arithmetic the whole way, so they are
exact for the full int64 range.
"""

from __future__ import annotations

import numpy as np

#: Shift schedule that peels a 64-bit value down to one bit.
_SHIFTS = (32, 16, 8, 4, 2, 1)


def bit_length64(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 arrays.

    ``bit_length64(x)[i] == int(x[i]).bit_length()`` exactly, for every
    ``0 <= x[i] < 2**63``.  Zero maps to zero, matching Python.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.size and v.min() < 0:
        raise ValueError("bit_length64 is defined for non-negative values")
    v = v.astype(np.uint64)
    out = np.zeros(v.shape, dtype=np.int64)
    for shift in _SHIFTS:
        threshold = np.uint64(1) << np.uint64(shift)
        big = v >= threshold
        out[big] += shift
        v[big] >>= np.uint64(shift)
    return out + (v > 0)


def sorted_member_mask(
    values: np.ndarray, sorted_targets: np.ndarray
) -> np.ndarray:
    """Boolean mask of which ``values`` appear in ``sorted_targets``.

    Equivalent to ``np.isin(values, sorted_targets)`` but requires (and
    exploits) ``sorted_targets`` being sorted: one ``searchsorted`` pass
    instead of a full sort of the concatenation.  The peel's resampling
    rejoin paths compute this once per resample and reuse the mask for
    both the survivor and the old-key selection.
    """
    values = np.asarray(values, dtype=np.int64)
    targets = np.asarray(sorted_targets, dtype=np.int64)
    if targets.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(targets, values)
    pos[pos == targets.size] = targets.size - 1
    return targets[pos] == values
