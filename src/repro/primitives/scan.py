"""Prefix-sum (scan) and reduce primitives with cost accounting.

Scans back the PACK primitive and the hash-bag extraction; reduce is used
for frontier work estimation.  Both are ``O(n)`` work, ``O(log n)`` span.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.simulator import SimRuntime


def exclusive_scan(
    values: np.ndarray,
    runtime: SimRuntime | None = None,
    tag: str = "scan",
) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``."""
    values = np.asarray(values)
    if runtime is not None and values.size:
        runtime.parallel_for(
            runtime.model.scan_op, count=values.size, barriers=1, tag=tag
        )
    out = np.zeros(values.size, dtype=np.int64)
    if values.size > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out


def inclusive_scan(
    values: np.ndarray,
    runtime: SimRuntime | None = None,
    tag: str = "scan",
) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i + 1])``."""
    values = np.asarray(values)
    if runtime is not None and values.size:
        runtime.parallel_for(
            runtime.model.scan_op, count=values.size, barriers=1, tag=tag
        )
    return np.cumsum(values).astype(np.int64)


def reduce_sum(
    values: np.ndarray,
    runtime: SimRuntime | None = None,
    tag: str = "reduce",
) -> int:
    """Parallel sum reduction."""
    values = np.asarray(values)
    if runtime is not None and values.size:
        runtime.parallel_for(
            runtime.model.scan_op, count=values.size, barriers=1, tag=tag
        )
    return int(values.sum())


def reduce_max(
    values: np.ndarray,
    runtime: SimRuntime | None = None,
    tag: str = "reduce",
) -> int:
    """Parallel max reduction (0 on empty input)."""
    values = np.asarray(values)
    if runtime is not None and values.size:
        runtime.parallel_for(
            runtime.model.scan_op, count=values.size, barriers=1, tag=tag
        )
    if values.size == 0:
        return 0
    return int(values.max())
