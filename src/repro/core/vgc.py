"""Vertical granularity control — VGC (paper Sec. 4.2).

On sparse graphs, subrounds are tiny: processing a frontier of low-degree
vertices costs far less than the fork/join barrier (``omega``) that ends it,
so scheduling dominates.  VGC grafts a *local search* onto the online peel:
when a vertex is peeled, neighbors whose induced degree drops to ``k`` are
pushed onto a bounded FIFO *local queue* and processed inside the same task,
instead of being deferred to the next subround.  Chains of peels thus
collapse into one task; the paper fixes the queue budget at 128 and reports
5-40x fewer subrounds (Fig. 7) and up to 31.2x faster runs (Fig. 6).

The queue budget caps the work of a single task, which preserves load
balance under work stealing — unlike PKC's unbounded thread-local buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's local-queue budget ("we simply fix the local queue size
#: as 128"; performance is flat from hundreds to thousands).
DEFAULT_QUEUE_SIZE = 128

#: Default work budget (edges touched) of one local search.  The paper
#: notes granularity can equivalently be controlled "by the number of
#: touched vertices" and that the theory wants the local-search work ``L``
#: asymptotically below the scheduling burden ``omega``; capping edges
#: keeps ``L`` bounded even on dense graphs, where a 128-vertex queue
#: could otherwise pull in tens of thousands of edges.
DEFAULT_EDGE_BUDGET = 384


@dataclass(frozen=True)
class VGCConfig:
    """Configuration of the local search.

    Attributes:
        queue_size: Maximum vertices processed by one local search; once
            the budget is exhausted, further threshold-crossing neighbors
            go to the next frontier as usual.
        edge_budget: Maximum neighbor visits charged to one local search
            before it stops absorbing new vertices (``L`` in the paper's
            burdened-span analysis).
    """

    queue_size: int = DEFAULT_QUEUE_SIZE
    edge_budget: int = DEFAULT_EDGE_BUDGET

    def __post_init__(self) -> None:
        if self.queue_size < 1:
            raise ValueError(
                f"queue_size must be >= 1, got {self.queue_size}"
            )
        if self.edge_budget < 1:
            raise ValueError(
                f"edge_budget must be >= 1, got {self.edge_budget}"
            )
