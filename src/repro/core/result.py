"""Result type returned by every decomposition algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics


@dataclass
class CorenessResult:
    """Output of a k-core decomposition run.

    Attributes:
        coreness: ``kappa[v]`` for every vertex (int64 array of length n).
        metrics: The simulated-execution ledger (work, span, subrounds, ...).
        algorithm: Name of the algorithm that produced the result.
        model: Cost model the run was recorded under.
    """

    coreness: np.ndarray
    metrics: RunMetrics
    algorithm: str = ""
    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    @property
    def kmax(self) -> int:
        """Maximum coreness value in the graph."""
        if self.coreness.size == 0:
            return 0
        return int(self.coreness.max())

    @property
    def rho(self) -> int:
        """Peeling complexity: the number of subrounds executed."""
        return self.metrics.subrounds

    def time_on(self, threads: int) -> float:
        """Simulated running time (ns) on ``threads`` threads."""
        return self.metrics.time_on(threads, self.model)

    def vertices_with_coreness(self, k: int) -> np.ndarray:
        """Ids of the vertices whose coreness is exactly ``k``."""
        return np.nonzero(self.coreness == k)[0].astype(np.int64)

    def core_members(self, k: int) -> np.ndarray:
        """Ids of the vertices in the k-core (coreness >= k)."""
        return np.nonzero(self.coreness >= k)[0].astype(np.int64)

    def coreness_histogram(self) -> np.ndarray:
        """Counts of vertices per coreness value (index = coreness)."""
        if self.coreness.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.coreness)

    def summary(self) -> dict[str, float]:
        """Flat summary combining decomposition and execution statistics."""
        out = {"kmax": float(self.kmax), "n": float(self.coreness.size)}
        out.update(self.metrics.summary())
        return out
