"""Semi-external k-core decomposition (edges on disk, vertices in RAM).

The paper's related work spans external-memory k-core (Cheng et al.
2011; Wen et al. 2018 — refs [15, 75]) and the single-PC low-memory
setting (Khaouid et al. 2015 — ref [39]).  The common regime: ``O(n)``
memory for vertex state, edges too large for RAM and streamed from disk.

This module implements the classic *semi-external* algorithm built on
the locality (H-index) characterization: keep one estimate per vertex in
memory, and per round stream the edge file once, accumulating for every
vertex the histogram of its neighbors' (clipped) estimates; at the end
of the pass, lower each estimate to the H-index of what streamed past.
Estimates start at the degrees and converge monotonically to the exact
coreness.  Each round is exactly one sequential pass over the edge file
— the I/O pattern that matters in this setting — and the result reports
the pass count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

#: Number of int64 edge endpoints read per chunk (bounded RAM).
DEFAULT_CHUNK_EDGES = 65_536


def write_edge_file(
    graph: CSRGraph,
    path: str | os.PathLike,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> int:
    """Serialize a graph's undirected edges as raw little-endian int64.

    Returns the number of edges written.  This is the on-disk input the
    semi-external solver streams.  The writer itself honors the
    semi-external memory contract: edges are emitted in vertex-range
    chunks of at most ``chunk_edges`` buffered pairs, never
    materializing the full ``(m, 2)`` edge array.
    """
    if chunk_edges <= 0:
        raise ValueError(f"chunk_edges must be positive: {chunk_edges}")
    indptr = graph.indptr
    written = 0
    with open(path, "wb") as handle:
        lo = 0
        while lo < graph.n:
            # Grow the vertex range [lo, hi) until it covers at least
            # chunk_edges directed entries (a single high-degree vertex
            # may exceed the budget on its own; it still ships whole).
            hi = int(
                np.searchsorted(
                    indptr, indptr[lo] + chunk_edges, side="left"
                )
            )
            hi = min(max(hi, lo + 1), graph.n)
            src = np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(indptr[lo : hi + 1]),
            )
            dst = graph.indices[indptr[lo] : indptr[hi]]
            mask = src < dst
            pairs = np.stack([src[mask], dst[mask]], axis=1)
            pairs.astype("<i8").tofile(handle)
            written += pairs.shape[0]
            lo = hi
    return written


def _stream_edges(path: str | os.PathLike, chunk_edges: int):
    """Yield (u_array, v_array) chunks from a raw edge file."""
    with open(path, "rb") as handle:
        while True:
            block = np.fromfile(
                handle, dtype="<i8", count=2 * chunk_edges
            )
            if block.size == 0:
                return
            if block.size % 2:
                raise ValueError("corrupt edge file: odd element count")
            pairs = block.reshape(-1, 2)
            yield pairs[:, 0], pairs[:, 1]


@dataclass
class SemiExternalResult:
    """Output of the semi-external decomposition.

    Attributes:
        coreness: Exact coreness per vertex.
        passes: Edge-file passes (the I/O cost that matters here).
        peak_memory_values: Array entries held in RAM at the peak —
            the vertex arrays plus the final pass's clipped histogram
            (far below the edge count once estimates shrink).
    """

    coreness: np.ndarray
    passes: int
    peak_memory_values: int


def semi_external_coreness(
    edge_path: str | os.PathLike,
    n: int,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    max_passes: int | None = None,
) -> SemiExternalResult:
    """Exact coreness with vertex-resident memory, streaming the edges.

    Args:
        edge_path: Raw int64 edge file from :func:`write_edge_file`.
        n: Number of vertices.
        chunk_edges: Edges buffered per read (bounds RAM).
        max_passes: Safety limit (default ``2n + 2``).

    The per-round update: for every vertex accumulate
    ``hist[v][min(estimate[u], estimate[v])]`` over streamed neighbors
    ``u``, then lower ``estimate[v]`` to the largest ``h`` with at least
    ``h`` neighbors of clipped estimate ``>= h`` — the H-index computed
    from counts without materializing adjacency.
    """
    if n < 0:
        raise ValueError(f"negative vertex count: {n}")
    # Pass 0: degrees.
    degrees = np.zeros(n, dtype=np.int64)
    for u, v in _stream_edges(edge_path, chunk_edges):
        np.add.at(degrees, u, 1)
        np.add.at(degrees, v, 1)
    estimate = degrees.copy()
    passes = 1

    limit = max_passes if max_passes is not None else 2 * n + 2
    # Each pass accumulates, per vertex, a histogram of its neighbors'
    # estimates clipped at the vertex's own estimate — a ragged layout of
    # size sum(e(v) + 1).  That is O(n + m) in the first refinement pass
    # and shrinks with the estimates afterwards; the classic EM papers
    # additionally cap the histogram and spend extra passes on the few
    # high-estimate vertices, a refinement we document but skip.
    for _ in range(limit):
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(estimate + 1, out=offsets[1:])
        hist = np.zeros(int(offsets[-1]), dtype=np.int64)
        for u, v in _stream_edges(edge_path, chunk_edges):
            eu = estimate[u]
            ev = estimate[v]
            np.add.at(hist, offsets[u] + np.minimum(ev, eu), 1)
            np.add.at(hist, offsets[v] + np.minimum(eu, ev), 1)
        passes += 1
        changed = False
        for v in range(n):
            e = int(estimate[v])
            if e == 0:
                continue
            counts = hist[offsets[v] : offsets[v] + e + 1]
            # H-index from the clipped histogram: largest h <= e with
            # at least h neighbors of clipped estimate >= h.
            total = 0
            new = 0
            for h in range(e, 0, -1):
                total += int(counts[h])
                if total >= h:
                    new = h
                    break
            if new != e:
                estimate[v] = new
                changed = True
        if not changed:
            break
    else:
        raise RuntimeError(
            "semi-external iteration did not converge within the limit"
        )

    return SemiExternalResult(
        coreness=estimate,
        passes=passes,
        peak_memory_values=2 * n + 2 + int(offsets[-1]) if n else 0,
    )
