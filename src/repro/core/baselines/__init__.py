"""Reimplementations of the paper's baselines: Julienne, ParK, PKC, Galois."""

from repro.core.baselines.galois_subgraph import (
    GALOIS_ACTIVITY_OVERHEAD,
    galois_max_kcore,
)
from repro.core.baselines.julienne import JULIENNE_CONFIG, julienne_kcore
from repro.core.baselines.park import park_kcore
from repro.structures.null_buckets import NullBuckets
from repro.core.baselines.pkc import pkc_kcore

__all__ = [
    "GALOIS_ACTIVITY_OVERHEAD",
    "JULIENNE_CONFIG",
    "NullBuckets",
    "galois_max_kcore",
    "julienne_kcore",
    "park_kcore",
    "pkc_kcore",
]
