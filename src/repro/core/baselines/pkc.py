"""PKC baseline (Kabir & Madduri 2017) — thread-local buffers.

PKC is an online peeler that, like ParK, scans the full vertex array at the
start of every round (``O(m + k_max * n)`` work, no active set).  Its
distinguishing optimization is the *thread-local buffer*: the round's
frontier is statically partitioned over the P threads and each thread
peels its share **and every vertex its own decrements drop to k**
sequentially, with no intermediate barrier — exactly one subround per
round.  That eliminates synchronization but sacrifices load balance: a
peeling chain stays on the thread that discovered it, so one thread can
end up with nearly all the work (the paper's critique in Sec. 4.2).  The
simulated step records per-thread work and takes the maximum as the span.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime


def pkc_kcore(
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int | None = None,
) -> CorenessResult:
    """Run PKC and return the coreness of every vertex.

    Args:
        graph: Input graph.
        model: Cost model (supplies the simulated thread count by default).
        threads: Number of simulated threads owning local buffers.
    """
    runtime = SimRuntime(model)
    p = threads if threads is not None else model.n_cores
    n = graph.n
    indptr, indices = graph.indptr, graph.indices
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    if n:
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="init_degrees"
        )

    remaining = n
    k = 0
    while remaining:
        runtime.begin_round()
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="pkc_scan"
        )
        frontier = np.nonzero((~peeled) & (dtilde <= k))[0]
        if frontier.size == 0:
            k += 1
            continue
        runtime.begin_subround(int(frontier.size))
        coreness[frontier] = k
        peeled[frontier] = True
        remaining -= int(frontier.size)

        # Static partition of the frontier over the thread-local buffers;
        # each thread drains its buffer sequentially, chains included.
        thread_works = np.zeros(p, dtype=np.float64)
        decrement_targets: list[int] = []
        for tid in range(p):
            buffer = [int(v) for v in frontier[tid::p]]
            head = 0
            work = 0.0
            while head < len(buffer):
                v = buffer[head]
                head += 1
                work += model.vertex_op
                for u in indices[indptr[v] : indptr[v + 1]]:
                    u = int(u)
                    work += model.edge_op + model.atomic_op
                    old = dtilde[u]
                    dtilde[u] = old - 1
                    decrement_targets.append(u)
                    if old == k + 1 and not peeled[u]:
                        # The atomic claim: the decrementing thread takes
                        # the whole chain into its own buffer — the source
                        # of PKC's load imbalance.
                        peeled[u] = True
                        coreness[u] = k
                        remaining -= 1
                        buffer.append(u)
            thread_works[tid] = work

        targets = np.asarray(decrement_targets, dtype=np.int64)
        if targets.size:
            _, counts = np.unique(targets, return_counts=True)
            runtime.metrics.observe_contention(
                int(counts.max()), int(counts.sum())
            )
            span_penalty = float(counts.max()) * model.contended_atomic_op
        else:
            span_penalty = 0.0
        runtime.metrics.record_parallel(
            work=float(thread_works.sum()),
            span=float(thread_works.max()) + span_penalty,
            barriers=1,
            tag="pkc_round",
        )
        k += 1

    return CorenessResult(
        coreness=coreness, metrics=runtime.metrics, algorithm="pkc",
        model=model,
    )
