"""PKC baseline (Kabir & Madduri 2017) — thread-local buffers.

PKC is an online peeler that, like ParK, scans the full vertex array at the
start of every round (``O(m + k_max * n)`` work, no active set).  Its
distinguishing optimization is the *thread-local buffer*: the round's
frontier is statically partitioned over the P threads and each thread
peels its share **and every vertex its own decrements drop to k**
sequentially, with no intermediate barrier — exactly one subround per
round.  That eliminates synchronization but sacrifices load balance: a
peeling chain stays on the thread that discovered it, so one thread can
end up with nearly all the work (the paper's critique in Sec. 4.2).  The
simulated step records per-thread work and takes the maximum as the span.

The round drain comes in three bit-exact implementations behind the
``REPRO_KERNELS`` switch: the original per-edge Python loop
(:func:`_chain_drain_reference`, the equivalence oracle), the flat NumPy
wave kernel (:func:`repro.perf.kernels.pkc_chain_drain`) and the
compiled C drain (:func:`repro.perf.kernels.pkc_chain_drain_native`).
All three produce the same coreness, the same contention-count multiset
and — via the closed form :func:`repro.perf.kernels.pkc_thread_works` —
the same per-thread work vector, so the metrics ledger is bit-identical
(enforced by the regression goldens and the kernel-matrix tests).
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.perf import NATIVE, REFERENCE, kernel_mode
from repro.perf.kernels import (
    KernelScratch,
    pkc_chain_drain,
    pkc_chain_drain_native,
    pkc_thread_works,
    threshold_frontier,
)
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime


def _chain_drain_reference(
    graph: CSRGraph,
    dtilde: np.ndarray,
    peeled: np.ndarray,
    coreness: np.ndarray,
    frontier: np.ndarray,
    k: int,
    p: int,
    model: CostModel,
) -> tuple[np.ndarray, np.ndarray, int]:
    """The original per-edge Python drain (equivalence oracle).

    Returns ``(thread_works, counts, claimed)``: per-thread accumulated
    work, the round's contention counts per distinct decrement target,
    and the number of chain claims.
    """
    indptr, indices = graph.indptr, graph.indices
    thread_works = np.zeros(p, dtype=np.float64)
    decrement_targets: list[int] = []
    claimed = 0
    for tid in range(p):
        buffer = [int(v) for v in frontier[tid::p]]
        head = 0
        work = 0.0
        while head < len(buffer):
            v = buffer[head]
            head += 1
            work += model.vertex_op
            for u in indices[indptr[v] : indptr[v + 1]]:
                u = int(u)
                work += model.edge_op + model.atomic_op
                old = dtilde[u]
                dtilde[u] = old - 1
                decrement_targets.append(u)
                if old == k + 1 and not peeled[u]:
                    # The atomic claim: the decrementing thread takes
                    # the whole chain into its own buffer — the source
                    # of PKC's load imbalance.
                    peeled[u] = True
                    coreness[u] = k
                    claimed += 1
                    buffer.append(u)
        thread_works[tid] = work

    targets = np.asarray(decrement_targets, dtype=np.int64)
    if targets.size:
        _, counts = np.unique(targets, return_counts=True)
    else:
        counts = np.zeros(0, dtype=np.int64)
    return thread_works, counts, claimed


def pkc_kcore(
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int | None = None,
) -> CorenessResult:
    """Run PKC and return the coreness of every vertex.

    Args:
        graph: Input graph.
        model: Cost model (supplies the simulated thread count by default).
        threads: Number of simulated threads owning local buffers.
    """
    runtime = SimRuntime(model)
    p = threads if threads is not None else model.n_cores
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    if n:
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="init_degrees"
        )

    regime = kernel_mode()
    scratch = KernelScratch(graph) if regime != REFERENCE else None

    remaining = n
    k = 0
    while remaining:
        runtime.begin_round()
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="pkc_scan"
        )
        frontier = threshold_frontier(dtilde, peeled, k, scratch)
        if frontier.size == 0:
            k += 1
            continue
        runtime.begin_subround(int(frontier.size))
        coreness[frontier] = k
        peeled[frontier] = True
        remaining -= int(frontier.size)

        # Static partition of the frontier over the thread-local buffers;
        # each thread drains its buffer sequentially, chains included.
        if regime == REFERENCE:
            thread_works, counts, claimed = _chain_drain_reference(
                graph, dtilde, peeled, coreness, frontier, k, p, model
            )
        else:
            drain = pkc_chain_drain_native if regime == NATIVE else (
                pkc_chain_drain
            )
            nv, ne, counts, claimed = drain(
                graph, dtilde, peeled, coreness, frontier, k, p, scratch
            )
            thread_works = pkc_thread_works(model, nv, ne)
        remaining -= claimed

        if counts.size:
            runtime.metrics.observe_contention(
                int(counts.max()), int(counts.sum())
            )
            span_penalty = float(counts.max()) * model.contended_atomic_op
        else:
            span_penalty = 0.0
        runtime.metrics.record_parallel(
            work=float(thread_works.sum()),
            span=float(thread_works.max()) + span_penalty,
            barriers=1,
            tag="pkc_round",
        )
        k += 1

    return CorenessResult(
        coreness=coreness, metrics=runtime.metrics, algorithm="pkc",
        model=model,
    )
