"""Julienne baseline (Dhulipala, Blelloch, Shun 2017).

Julienne's k-core is the offline (histogram-based, race-free) peel driven
by a 16-bucket structure with an overflow bucket.  Under our framework this
is exactly ``FrameworkConfig(peel="offline", buckets="16")`` — the paper's
Sec. 3 analysis shows the simplified implementation is work-efficient, and
this reimplementation inherits that.  Its weakness is the burdened span:
several global synchronizations per subround make it collapse on graphs
with many tiny subrounds (GRID, TRCE, BBL — paper Figs. 2 and 9).
"""

from __future__ import annotations

from repro.core.framework import FrameworkConfig, decompose
from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL

#: The configuration equivalent to Julienne's implementation.
JULIENNE_CONFIG = FrameworkConfig(
    peel="offline", buckets="16", sampling=False, vgc=False, name="julienne"
)


def julienne_kcore(
    graph: CSRGraph, model: CostModel = DEFAULT_COST_MODEL
) -> CorenessResult:
    """Run the Julienne baseline and return the coreness of every vertex."""
    return decompose(graph, JULIENNE_CONFIG, model=model)
