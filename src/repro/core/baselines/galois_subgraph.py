"""Galois-style baseline for the max k-core subgraph task (Appendix B).

Galois (Nguyen, Lenharth, Pingali 2014) solves this task with an
asynchronous worklist: activities peel vertices with induced degree below
``k`` and push the neighbors they drop under the threshold.  Relative to
the paper's adapted framework, this baseline lacks the sampling scheme
(full contention on high-degree vertices) and VGC (one scheduler activity
per vertex), and its general-purpose priority worklist adds a per-activity
constant.  We model it as the plain online subgraph peel plus that
per-activity overhead.
"""

from __future__ import annotations

from repro.core.subgraph import SubgraphResult, max_kcore_subgraph
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, CostModelOverrides, DEFAULT_COST_MODEL

#: Extra work per processed vertex for Galois's general-purpose worklist
#: (chunked FIFO push/pop, conflict detection bookkeeping).
GALOIS_ACTIVITY_OVERHEAD = 8.0


def galois_max_kcore(
    graph: CSRGraph, k: int, model: CostModel = DEFAULT_COST_MODEL
) -> SubgraphResult:
    """Galois-like worklist extraction of the maximal k-core subgraph."""
    galois_model = CostModelOverrides(model).with_fields(
        vertex_op=model.vertex_op + GALOIS_ACTIVITY_OVERHEAD
    )
    result = max_kcore_subgraph(
        graph,
        k,
        sampling=False,
        vgc=False,
        model=galois_model,
        algorithm="galois",
    )
    return result
