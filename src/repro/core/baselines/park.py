"""ParK baseline (Dasari, Desh, Zubair 2014) — online peel, no active set.

ParK peels with direct atomic decrements like our framework's online peel,
but never maintains an active set: the initial frontier of every round is
found by scanning the *entire* vertex array, giving ``O(m + k_max * n)``
work (paper Sec. 3.2).  On graphs with a large ``k_max`` (HCNS) the scans
dominate, and on high-degree graphs (TW, SD) the unmitigated contention
does — the two failure modes Table 2 shows for ParK.
"""

from __future__ import annotations

import numpy as np

from repro.core.peel_online import OnlinePeel
from repro.core.result import CorenessResult
from repro.core.state import PeelState
from repro.graphs.csr import CSRGraph
from repro.perf.kernels import get_scratch, threshold_frontier
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime
from repro.structures.null_buckets import NullBuckets


def park_kcore(
    graph: CSRGraph, model: CostModel = DEFAULT_COST_MODEL
) -> CorenessResult:
    """Run ParK and return the coreness of every vertex."""
    runtime = SimRuntime(model)
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    if n:
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="init_degrees"
        )

    buckets = NullBuckets()
    buckets.build(graph, dtilde, peeled, runtime)
    peel = OnlinePeel(vgc=None)
    state = PeelState(
        graph=graph,
        dtilde=dtilde,
        peeled=peeled,
        coreness=coreness,
        runtime=runtime,
        buckets=buckets,
        sampling=None,
    )

    remaining = n
    k = 0
    while remaining:
        runtime.begin_round()
        # The work-inefficiency: a full scan of V to build the frontier.
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="park_scan"
        )
        frontier = threshold_frontier(dtilde, peeled, k, get_scratch(state))
        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            coreness[frontier] = k
            peeled[frontier] = True
            remaining -= int(frontier.size)
            runtime.parallel_for(
                model.scan_op,
                count=int(frontier.size),
                barriers=0,
                tag="assign_coreness",
            )
            frontier = peel.subround(state, frontier, k)
        k += 1

    return CorenessResult(
        coreness=coreness, metrics=runtime.metrics, algorithm="park",
        model=model,
    )
