"""Verification of k-core decompositions.

``check_coreness`` certifies a coreness assignment against the two defining
properties of the decomposition:

1. **Feasibility** — for every vertex ``v``, the subgraph induced by
   ``{u : kappa[u] >= kappa[v]}`` gives ``v`` at least ``kappa[v]``
   neighbors (``v`` really belongs to its claimed core).
2. **Maximality** — the assignment cannot be increased: re-running an exact
   peeling over the claimed cores leaves no vertex whose claimed coreness is
   too low.

Both are checked in ``O(n + m)`` with a single peeling sweep: the coreness
array is valid if and only if it equals the canonical peeling result, so the
checker recomputes coreness with an independent, simple reference algorithm
and compares.  A second, structural checker (`check_core_membership`) avoids
recomputation and is useful for spot checks on huge graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def reference_coreness(graph: CSRGraph) -> np.ndarray:
    """Textbook peeling, implemented independently of the library's core.

    Batch peeling over numpy: repeatedly remove all vertices of minimum
    induced degree.  Used as the oracle by :func:`check_coreness` and the
    test suite.
    """
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    k = 0
    remaining = n
    while remaining:
        alive_deg = dtilde[alive]
        k = max(k, int(alive_deg.min()))
        frontier = np.nonzero(alive & (dtilde <= k))[0]
        while frontier.size:
            coreness[frontier] = k
            alive[frontier] = False
            remaining -= frontier.size
            neighbors = graph.gather_neighbors(frontier)
            if neighbors.size:
                drops = np.bincount(neighbors, minlength=n)
                dtilde -= drops
            frontier = np.nonzero(alive & (dtilde <= k))[0]
    return coreness


def check_coreness(graph: CSRGraph, coreness: np.ndarray) -> bool:
    """Whether ``coreness`` is the exact k-core decomposition of ``graph``."""
    coreness = np.asarray(coreness)
    if coreness.shape != (graph.n,):
        return False
    return bool(np.array_equal(reference_coreness(graph), coreness))


def check_core_membership(graph: CSRGraph, coreness: np.ndarray) -> bool:
    """Structural feasibility check (necessary, not sufficient).

    Verifies that inside the subgraph induced by ``kappa >= kappa[v]`` every
    vertex ``v`` keeps at least ``kappa[v]`` neighbors.  Runs in ``O(m)``.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    if coreness.shape != (graph.n,):
        return False
    if graph.n == 0:
        return True
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    strong = coreness[graph.indices] >= coreness[src]
    strong_deg = np.bincount(src[strong], minlength=graph.n)
    return bool(np.all(strong_deg >= coreness))


def assert_valid_decomposition(
    graph: CSRGraph, coreness: np.ndarray, algorithm: str = ""
) -> None:
    """Raise ``AssertionError`` with context if the decomposition is wrong."""
    if not check_coreness(graph, coreness):
        expected = reference_coreness(graph)
        diff = np.nonzero(expected != np.asarray(coreness))[0][:10]
        raise AssertionError(
            f"{algorithm or 'algorithm'} produced a wrong decomposition on "
            f"{graph!r}; first mismatches at vertices {diff.tolist()}"
        )
