"""(3,4)-nucleus decomposition — peeling triangles by K4 support.

The paper cites "theoretically and practically efficient parallel nucleus
decomposition" (Shi, Dhulipala, Shun — its ref [67]) as a prime user of
its bucketing machinery.  The (r, s)-nucleus generalizes cores and
trusses: peel ``r``-cliques by their ``s``-clique support.  The instances
form a hierarchy of ever-denser subgraphs:

* (1, 2): vertices by edges — **k-core** (this library's subject);
* (2, 3): edges by triangles — **k-truss** (:mod:`repro.core.truss`);
* (3, 4): triangles by 4-cliques — this module.

A triangle's *nucleus number* is the largest ``s`` such that it belongs
to a maximal union of triangles, each contained in at least ``s``
four-cliques all of whose triangles are in the union.  As with trusses,
the standard algorithm peels triangles in increasing K4-support order
with the monotone-max level trick.
"""

from __future__ import annotations

import heapq
from itertools import combinations

import numpy as np

from repro.graphs.csr import CSRGraph


def enumerate_triangles(graph: CSRGraph) -> list[tuple[int, int, int]]:
    """All triangles as sorted vertex triples (u < v < w)."""
    triangles = []
    adjacency = [set(graph.neighbors(v).tolist()) for v in range(graph.n)]
    for u in range(graph.n):
        higher_u = [w for w in adjacency[u] if w > u]
        for v in higher_u:
            common = adjacency[u] & adjacency[v]
            for w in common:
                if w > v:
                    triangles.append((u, v, int(w)))
    return triangles


def nucleus_decomposition_34(
    graph: CSRGraph,
) -> dict[tuple[int, int, int], int]:
    """Nucleus number of every triangle (the (3,4)-nucleus).

    Returns a mapping from sorted triangle triples to their nucleus
    numbers; triangles in no 4-clique get 0.
    """
    triangles = enumerate_triangles(graph)
    index = {t: i for i, t in enumerate(triangles)}
    m = len(triangles)
    support = np.zeros(m, dtype=np.int64)
    adjacency = [set(graph.neighbors(v).tolist()) for v in range(graph.n)]

    # K4 support: for each triangle (u, v, w), count vertices x adjacent
    # to all three.  Each K4 contributes to its four triangles.
    def common_of(u, v, w):
        return adjacency[u] & adjacency[v] & adjacency[w]

    for i, (u, v, w) in enumerate(triangles):
        support[i] = len(common_of(u, v, w))

    alive = np.ones(m, dtype=bool)
    value = np.zeros(m, dtype=np.int64)
    heap = [(int(support[i]), i) for i in range(m)]
    heapq.heapify(heap)
    level = 0
    removed = 0
    while removed < m:
        s, i = heapq.heappop(heap)
        if not alive[i] or s != support[i]:
            continue
        level = max(level, s)
        value[i] = level
        alive[i] = False
        removed += 1
        u, v, w = triangles[i]
        # Each surviving K4 through this triangle loses it: the other
        # three triangles of that K4 drop one unit of support.
        for x in common_of(u, v, w):
            others = [
                tuple(sorted(t))
                for t in combinations((u, v, w, int(x)), 3)
            ]
            # Only count the K4 if all four triangles still exist as
            # triangles of the graph (they do: edges are not removed) and
            # the K4 is still "alive" — i.e. its other triangles are
            # unpeeled; peeled ones already accounted for this K4's loss.
            if any(
                index.get(t) is not None and not alive[index[t]]
                and t != (u, v, w)
                for t in others
            ):
                continue
            for t in others:
                if t == (u, v, w):
                    continue
                j = index.get(t)
                if j is not None and alive[j]:
                    support[j] -= 1
                    heapq.heappush(heap, (int(support[j]), j))
    return {t: int(value[index[t]]) for t in triangles}


def max_nucleus_34(graph: CSRGraph) -> int:
    """The largest (3,4)-nucleus number present (0 if no triangles)."""
    values = nucleus_decomposition_34(graph)
    return max(values.values(), default=0)
