"""Generalized cores: peeling with arbitrary monotone vertex functions.

Batagelj and Zaversnik — the authors of the paper's sequential baseline
BZ — defined *generalized cores* (2002): replace the degree in the core
condition with any vertex property function ``p(v, S)`` that is monotone
in the vertex set ``S`` (shrinking ``S`` never increases ``p``).  The
generalized core value of ``v`` is the largest ``t`` such that ``v``
belongs to a maximal subgraph where every member has ``p >= t``.
Ordinary coreness is ``p = |N(v) ∩ S|``; other classic instances are
weighted degree (edge-weight sums) and neighbor-count-above-threshold.

The peeling algorithm carries over verbatim: repeatedly remove a vertex
of minimum current ``p``, with the monotone maximum trick assigning core
values.  This module implements it for any user-supplied monotone
function, plus the two standard instances, and the test suite checks
that the degree instance reproduces coreness exactly.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

import numpy as np

from repro.graphs.csr import CSRGraph


class VertexFunction(Protocol):
    """A monotone vertex property for generalized peeling."""

    def initial(self, graph: CSRGraph) -> np.ndarray:
        """p(v, V) for every vertex (the full-graph values)."""
        ...

    def on_remove(
        self,
        graph: CSRGraph,
        removed: int,
        alive: np.ndarray,
        values: np.ndarray,
    ) -> list[int]:
        """Update ``values`` in place after ``removed`` leaves the set.

        Returns the vertices whose value changed (for re-queueing).
        Must never *increase* any value (monotonicity).
        """
        ...


class DegreeFunction:
    """p(v, S) = |N(v) ∩ S| — ordinary k-core."""

    def initial(self, graph: CSRGraph) -> np.ndarray:
        return graph.degrees.astype(np.float64)

    def on_remove(self, graph, removed, alive, values):
        changed = []
        for u in graph.neighbors(removed):
            u = int(u)
            if alive[u]:
                values[u] -= 1.0
                changed.append(u)
        return changed


class WeightedDegreeFunction:
    """p(v, S) = sum of weights of edges from v into S (s-cores).

    Args:
        weights: Positive weight per arc, aligned with ``graph.indices``.
    """

    def __init__(self, weights: np.ndarray) -> None:
        self.weights = np.asarray(weights, dtype=np.float64)
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")

    def initial(self, graph: CSRGraph) -> np.ndarray:
        if self.weights.shape != (graph.m,):
            raise ValueError("need one weight per arc")
        out = np.zeros(graph.n, dtype=np.float64)
        src = np.repeat(
            np.arange(graph.n, dtype=np.int64), graph.degrees
        )
        np.add.at(out, src, self.weights)
        return out

    def on_remove(self, graph, removed, alive, values):
        changed = []
        start, end = graph.indptr[removed], graph.indptr[removed + 1]
        for idx in range(start, end):
            u = int(graph.indices[idx])
            if alive[u]:
                # The arc u -> removed carries the same weight as
                # removed -> u in a symmetric weighting; find it on u's
                # side for generality.
                u_start, u_end = graph.indptr[u], graph.indptr[u + 1]
                row = graph.indices[u_start:u_end]
                pos = int(np.searchsorted(row, removed))
                values[u] -= float(self.weights[u_start + pos])
                changed.append(u)
        return changed


def generalized_cores(
    graph: CSRGraph, func: VertexFunction
) -> np.ndarray:
    """Generalized core value of every vertex under ``func``.

    The value of ``v`` is the largest level ``t`` (a value the function
    actually attains during peeling) such that ``v`` survives in a
    subgraph where every member's ``p`` is at least ``t``.
    """
    n = graph.n
    values = func.initial(graph).astype(np.float64).copy()
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.float64)
    heap = [(float(values[v]), v) for v in range(n)]
    heapq.heapify(heap)
    level = -np.inf
    remaining = n
    while remaining:
        value, v = heapq.heappop(heap)
        if not alive[v] or value != values[v]:
            continue  # stale entry
        level = max(level, value)
        core[v] = level
        alive[v] = False
        remaining -= 1
        for u in func.on_remove(graph, v, alive, values):
            heapq.heappush(heap, (float(values[u]), u))
    return core


def weighted_coreness(
    graph: CSRGraph, weights: np.ndarray
) -> np.ndarray:
    """s-core values: generalized cores under weighted degree."""
    return generalized_cores(graph, WeightedDegreeFunction(weights))


def symmetric_arc_weights(
    graph: CSRGraph, edge_weight: Callable[[int, int], float]
) -> np.ndarray:
    """Build a per-arc weight array from a symmetric edge function."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    return np.asarray(
        [
            edge_weight(int(u), int(v))
            for u, v in zip(src, graph.indices)
        ],
        dtype=np.float64,
    )
