"""Dynamic k-core maintenance under edge insertions and deletions.

The paper's related-work section (Sec. 7) points to maintaining the
decomposition under updates as a major companion line of work (Sariyuce
et al. 2013/2016; Liu et al. 2022).  This module implements the classic
*traversal / subcore* algorithm:

* an edge insertion ``(u, v)`` can only increase coreness values, each by
  at most one, and only inside the **subcore** of the lower endpoint —
  the set of vertices with the same coreness ``r = min(kappa(u),
  kappa(v))`` reachable from it through vertices of coreness ``r``;
* an edge deletion can only decrease coreness values, each by at most
  one, again only inside the affected subcores.

Updates therefore run a *local* peeling over the subcore instead of a
full recomputation.  The test suite validates every step against a full
recompute on randomized update sequences.

.. deprecated::
    This per-edge engine is superseded by
    :class:`repro.core.batch_dynamic.BatchDynamicKCore`, which applies
    whole update batches with flat kernel rounds and beats this one by
    48–228x updates/sec on the flagship graphs (``BENCH_updates.json``).
    It is retained as the *differential test oracle* for the batch
    engine (``python -m repro.regress oracle-updates`` replays every
    sequence through both) — do not build new workloads on it.  See
    ``docs/DYNAMIC.md``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.verify import reference_coreness
from repro.graphs.csr import CSRGraph


class DynamicKCore:
    """Maintains exact coreness under edge insertions and deletions.

    The graph is held as adjacency sets for O(1) updates; use
    :meth:`snapshot` to export the current graph as a CSRGraph and
    :attr:`coreness` to read the maintained values.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.n = graph.n
        self.adj: list[set[int]] = [
            set(graph.neighbors(v).tolist()) for v in range(graph.n)
        ]
        self.coreness = reference_coreness(graph).copy()
        #: Counters for tests / benchmarks: how much work updates did.
        self.touched_vertices = 0
        self.updates = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Current degree of ``v``."""
        return len(self.adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) is present."""
        return v in self.adj[u]

    def snapshot(self) -> CSRGraph:
        """Export the current graph as an immutable CSRGraph."""
        edges = [
            (u, v)
            for u in range(self.n)
            for v in self.adj[u]
            if u < v
        ]
        return CSRGraph.from_edges(self.n, edges, name="dynamic-snapshot")

    def core_number(self, v: int) -> int:
        """Current coreness of ``v``."""
        return int(self.coreness[v])

    # ------------------------------------------------------------------
    # Subcore discovery
    # ------------------------------------------------------------------
    def _subcore(self, root: int, r: int) -> list[int]:
        """Vertices with coreness r reachable from root via coreness-r
        vertices (the insertion/deletion candidate set)."""
        if self.coreness[root] != r:
            return []
        seen = {root}
        queue = deque([root])
        while queue:
            w = queue.popleft()
            for x in self.adj[w]:
                if x not in seen and self.coreness[x] == r:
                    seen.add(x)
                    queue.append(x)
        return list(seen)

    def _peel_candidates(
        self, candidates: list[int], r: int
    ) -> list[int]:
        """Local peeling of a candidate set at threshold ``r``.

        ``cd(w)`` counts the neighbors that could support ``w`` in an
        (r+1)-core: neighbors with coreness > r, plus candidate neighbors
        still unpeeled.  Peeling every ``w`` with ``cd(w) <= r`` leaves
        exactly the vertices whose coreness rises to ``r + 1``.
        """
        in_set = set(candidates)
        cd = {
            w: sum(
                1
                for x in self.adj[w]
                if self.coreness[x] > r or x in in_set
            )
            for w in candidates
        }
        queue = deque(w for w in candidates if cd[w] <= r)
        removed = set()
        while queue:
            w = queue.popleft()
            if w in removed:
                continue
            removed.add(w)
            for x in self.adj[w]:
                if x in in_set and x not in removed:
                    cd[x] -= 1
                    if cd[x] <= r:
                        queue.append(x)
        return [w for w in candidates if w not in removed]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> np.ndarray:
        """Insert the undirected edge (u, v); returns vertices whose
        coreness increased (possibly empty).  Idempotent for existing
        edges and self-loops."""
        self._check(u, v)
        if u == v or v in self.adj[u]:
            return np.zeros(0, dtype=np.int64)
        self.adj[u].add(v)
        self.adj[v].add(u)
        self.updates += 1

        r = int(min(self.coreness[u], self.coreness[v]))
        root = u if self.coreness[u] <= self.coreness[v] else v
        candidates = self._subcore(root, r)
        self.touched_vertices += len(candidates)
        risers = self._peel_candidates(candidates, r)
        for w in risers:
            self.coreness[w] = r + 1
        return np.asarray(sorted(risers), dtype=np.int64)

    def delete_edge(self, u: int, v: int) -> np.ndarray:
        """Delete the undirected edge (u, v); returns vertices whose
        coreness decreased (possibly empty)."""
        self._check(u, v)
        if u == v or v not in self.adj[u]:
            return np.zeros(0, dtype=np.int64)
        self.adj[u].remove(v)
        self.adj[v].remove(u)
        self.updates += 1

        r = int(min(self.coreness[u], self.coreness[v]))
        # Only coreness-r vertices around the endpoints can drop, each by
        # at most one.  Collect the union of both endpoints' subcores and
        # locally re-peel them at threshold r - 1: a vertex keeps
        # coreness r iff it retains r supporting neighbors.
        candidates: set[int] = set()
        for root in (u, v):
            if self.coreness[root] == r:
                candidates.update(self._subcore(root, r))
        if not candidates:
            return np.zeros(0, dtype=np.int64)
        self.touched_vertices += len(candidates)

        cand = list(candidates)
        in_set = candidates
        cd = {
            w: sum(
                1
                for x in self.adj[w]
                if self.coreness[x] > r or x in in_set
            )
            for w in cand
        }
        queue = deque(w for w in cand if cd[w] < r)
        dropped = set()
        while queue:
            w = queue.popleft()
            if w in dropped:
                continue
            dropped.add(w)
            for x in self.adj[w]:
                if x in in_set and x not in dropped:
                    cd[x] -= 1
                    if cd[x] < r:
                        queue.append(x)
        for w in dropped:
            self.coreness[w] = r - 1
        return np.asarray(sorted(dropped), dtype=np.int64)

    def batch_update(
        self,
        insertions: list[tuple[int, int]] = (),
        deletions: list[tuple[int, int]] = (),
    ) -> None:
        """Apply a batch of updates (sequentially, deletions first)."""
        for u, v in deletions:
            self.delete_edge(u, v)
        for u, v in insertions:
            self.insert_edge(u, v)

    def _check(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(
                f"edge ({u}, {v}) out of range for n={self.n}"
            )
