"""Shared mutable state threaded through the peeling process."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampling import SamplingState
from repro.graphs.csr import CSRGraph
from repro.runtime.simulator import SimRuntime
from repro.structures.buckets_base import BucketStructure


@dataclass
class PeelState:
    """Everything a peel subround needs, bundled once per run.

    Attributes:
        graph: The input graph.
        dtilde: Induced degrees (mutated as vertices are peeled).
        peeled: True once a vertex has been peeled.
        coreness: Output array; written when a vertex is peeled.
        runtime: Simulated runtime collecting cost accounting.
        buckets: The active-set / bucketing strategy.
        sampling: Sampler state, or None when sampling is disabled.
        scratch: Lazily created per-run kernel buffer arena
            (:class:`repro.perf.kernels.KernelScratch`); use
            :func:`repro.perf.kernels.get_scratch` to access it.
    """

    graph: CSRGraph
    dtilde: np.ndarray
    peeled: np.ndarray
    coreness: np.ndarray
    runtime: SimRuntime
    buckets: BucketStructure
    sampling: SamplingState | None = None
    scratch: object | None = None
