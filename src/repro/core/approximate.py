"""Approximate k-core decomposition by geometric threshold peeling.

The paper's related work (Sec. 7) covers approximate decompositions in
both sequential (King, Thomo, Yong 2022) and parallel settings
(Esfandiari, Lattanzi, Mirrokni 2018; Dhulipala et al. 2022; Liu et al.
2022/2024).  The classic scheme peels at *geometrically growing*
thresholds: phase ``i`` repeatedly removes every vertex whose induced
degree is at most ``t_i = ceil(base * (1 + eps)^i)`` and stamps the
removed vertices with the estimate ``t_i``.

Guarantee: a vertex peeled in phase ``i`` survived the exhaustive
threshold-``t_{i-1}`` peel (so its coreness exceeds ``t_{i-1}``) and fell
to the threshold-``t_i`` peel (so its coreness is at most ``t_i``), hence

    kappa(v) <= estimate(v) < (1 + eps) * kappa(v)   (phases i >= 1)

with only ``O(log_{1+eps} d_max)`` phases — each phase is one frontier
cascade, so the subround count drops from the exact algorithm's ``rho``
(which can be ``Theta(sqrt(n))``) to ``O(log d_max / eps)`` cascades.
The test suite asserts the two-sided bound vertex by vertex.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.perf.kernels import (
    FlatPeelState,
    get_scratch,
    scan_peel_round,
    threshold_frontier,
)
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime


def approximate_coreness(
    graph: CSRGraph,
    eps: float = 0.5,
    model: CostModel = DEFAULT_COST_MODEL,
) -> CorenessResult:
    """(1 + eps)-approximate coreness for every vertex.

    Args:
        graph: Input graph.
        eps: Approximation slack (> 0).  Smaller eps means more phases
            and estimates closer to the exact coreness.
        model: Simulated-machine cost model.

    Returns:
        A :class:`CorenessResult` whose ``coreness`` array holds the
        estimates: ``kappa(v) <= estimate(v) < (1 + eps) *
        max(kappa(v), 1)`` for every vertex.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    runtime = SimRuntime(model)
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    state = FlatPeelState(graph, dtilde)
    scratch = get_scratch(state)
    estimate = np.zeros(n, dtype=np.int64)
    if n:
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="init_degrees"
        )

    remaining = n
    threshold = 0
    while remaining:
        runtime.begin_round()
        # Exhaustively peel everything with induced degree <= threshold.
        runtime.parallel_for(
            model.scan_op, count=max(remaining, 1), barriers=1,
            tag="approx_frontier",
        )
        frontier = threshold_frontier(dtilde, peeled, threshold, scratch)
        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            estimate[frontier] = threshold
            peeled[frontier] = True
            remaining -= int(frontier.size)
            task_costs = (
                model.vertex_op
                + model.edge_op
                * (graph.indptr[frontier + 1] - graph.indptr[frontier])
            ).astype(np.float64)
            outcome = scan_peel_round(state, frontier, threshold)
            if outcome.touched.size:
                crossed = outcome.crossed[~peeled[outcome.crossed]]
                runtime.parallel_update(
                    task_costs, outcome.counts, barriers=1,
                    tag="approx_peel",
                )
            else:
                crossed = np.zeros(0, dtype=np.int64)
                runtime.parallel_for(
                    task_costs, barriers=1, tag="approx_peel"
                )
            frontier = crossed
        # Grow the threshold geometrically.
        threshold = max(threshold + 1, math.ceil(threshold * (1 + eps)))

    return CorenessResult(
        coreness=estimate,
        metrics=runtime.metrics,
        algorithm=f"approx(eps={eps})",
        model=model,
    )


def approximation_phases(max_degree: int, eps: float) -> int:
    """Number of threshold phases for a given maximum degree."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    phases = 1
    threshold = 0
    while threshold < max_degree:
        threshold = max(threshold + 1, math.ceil(threshold * (1 + eps)))
        phases += 1
    return phases
