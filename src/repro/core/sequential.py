"""Sequential k-core algorithms: Batagelj–Zaversnik and Matula–Beck.

These are the ``O(n + m)`` sequential baselines of the paper (the "BZ"
column of Table 2 and the smallest-last ordering of Matula and Beck 1983).
Both use the bucket-sort layout: vertices sorted by induced degree with
per-degree bucket boundaries, swapped in place as degrees decrement.

The implementations run genuinely sequentially (one Python loop over the
peeling order) and charge their true operation counts to a metrics ledger so
the benchmark harness can compare them against simulated parallel times.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.perf import REFERENCE, kernel_mode
from repro.perf.kernels import (
    FlatPeelState,
    get_scratch,
    scan_peel_round,
    threshold_frontier,
)
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import active_tracer


def _bz_peel(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray, int]:
    """Core of the BZ algorithm.

    Returns ``(coreness, order, ops)`` where ``order`` is the peeling
    (degeneracy) order and ``ops`` counts executed operations.
    """
    n = graph.n
    degrees = graph.degrees.astype(np.int64)
    dtilde = degrees.copy()
    max_deg = int(degrees.max()) if n else 0

    # Bucket sort vertices by degree: vert is the sorted vertex array,
    # pos[v] the position of v in vert, bin_start[d] the first index of
    # degree-d vertices.
    bin_count = np.bincount(degrees, minlength=max_deg + 1)
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    np.cumsum(bin_count, out=bin_start[1 : max_deg + 2])
    vert = np.argsort(degrees, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[vert] = np.arange(n, dtype=np.int64)

    coreness = np.zeros(n, dtype=np.int64)
    ops = 2 * n  # initialization passes
    indptr, indices = graph.indptr, graph.indices
    boundary = bin_start[:-1].copy()  # first un-peeled index per degree

    for i in range(n):
        v = vert[i]
        coreness[v] = dtilde[v]
        ops += 1
        for u in indices[indptr[v] : indptr[v + 1]]:
            ops += 1
            du = dtilde[u]
            if du > dtilde[v]:
                # Swap u with the first vertex of its degree bucket, then
                # shrink the bucket: u's degree drops by one.
                pu = pos[u]
                pw = boundary[du]
                w = vert[pw]
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                boundary[du] += 1
                dtilde[u] = du - 1
    return coreness, vert, ops


def _bz_peel_flat(graph: CSRGraph) -> tuple[np.ndarray, int]:
    """NumPy bucket peel, bit-exact with :func:`_bz_peel`'s outputs.

    Peels whole degree levels at once instead of one vertex at a time.
    Both produce the (unique) core numbers, so the coreness arrays are
    identical; the operation count has the closed form the reference
    accumulates step by step — two initialization passes (``2n``), one
    pop per vertex (``n``) and one scan per directed arc (``m``) —
    regardless of peeling order.  Equality of both is pinned by
    ``tests/test_sequential.py`` and the regression goldens.

    Returns ``(coreness, ops)``; the peeling *order* is deliberately not
    produced (level peeling has no canonical within-level order), so
    :func:`degeneracy_order` keeps using the reference loop.
    """
    n = graph.n
    ops = 3 * n + graph.m
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness, ops
    dtilde = graph.degrees.astype(np.int64)
    peeled = np.zeros(n, dtype=bool)
    state = FlatPeelState(graph, dtilde)
    scratch = get_scratch(state)
    remaining = n
    sentinel = np.iinfo(np.int64).max
    k = 0
    while remaining:
        # Jump to the lowest occupied level, then peel its cascade.
        k = max(k, int(np.min(np.where(peeled, sentinel, dtilde))))
        frontier = threshold_frontier(dtilde, peeled, k, scratch)
        while frontier.size:
            peeled[frontier] = True
            coreness[frontier] = k
            remaining -= int(frontier.size)
            # The fused scan decrements every gathered neighbor, peeled
            # ones included; a peeled vertex's dtilde is never read
            # again (every consumer masks on ``peeled``), so the values
            # the algorithm observes match the alive-filtered loop.
            outcome = scan_peel_round(state, frontier, k)
            cross = outcome.crossed
            frontier = cross[~peeled[cross]]
    return coreness, ops


def bz_core(
    graph: CSRGraph, model: CostModel = DEFAULT_COST_MODEL
) -> CorenessResult:
    """Batagelj–Zaversnik sequential k-core decomposition (``O(n + m)``).

    ``REPRO_KERNELS=reference`` runs the original per-edge bucket-sort
    loop; every other mode runs the equivalent NumPy level peel (the
    differential oracle's wall-clock depends on it at the large tier).
    """
    if kernel_mode() == REFERENCE:
        coreness, _, ops = _bz_peel(graph)
    else:
        coreness, ops = _bz_peel_flat(graph)
    metrics = RunMetrics()
    metrics.record_sequential(float(ops), tag="bz")
    # BZ runs without a SimRuntime, so the process-wide tracer (if any)
    # is fed its single sequential step directly.
    tracer = active_tracer()
    if tracer is not None:
        tracer.attach_model(model)
        tracer.on_step("sequential", float(ops), float(ops), 0, "bz")
    return CorenessResult(
        coreness=coreness, metrics=metrics, algorithm="bz", model=model
    )


def degeneracy_order(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Matula–Beck smallest-last ordering.

    Returns ``(order, coreness)``; ``order`` lists vertices in peeling
    order (a degeneracy ordering, useful for greedy coloring and as a
    building block of many dense-subgraph algorithms).
    """
    coreness, order, _ = _bz_peel(graph)
    return order, coreness


def degeneracy(graph: CSRGraph) -> int:
    """The degeneracy of the graph (equals ``k_max`` of the decomposition)."""
    if graph.n == 0:
        return 0
    coreness, _, _ = _bz_peel(graph)
    return int(coreness.max())
