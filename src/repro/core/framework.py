"""Work-efficient parallel k-core framework (paper Alg. 1 / Alg. 4).

The framework is peel-strategy- and bucket-strategy-agnostic:

* it obtains the pair ``(k, initial frontier)`` for each round from a
  :class:`~repro.structures.buckets_base.BucketStructure` (the plain active
  set, Julienne's fixed buckets, or the hierarchical bucketing structure);
* with sampling enabled, it validates every sample-mode vertex at the start
  of each round and resamples failures (Alg. 4 lines 5-6);
* it then runs subrounds — assign coreness, peel, collect the next
  frontier — until the frontier drains, delegating the actual peeling to an
  :class:`~repro.core.peel_online.OnlinePeel` or
  :class:`~repro.core.peel_offline.OfflinePeel`.

Theorem 3.1: provided the peel is linear in the frontier's neighborhood and
the frontier/active-set maintenance linear in the active set, the total
work is ``O(n + m)``.  The recorded metrics let tests check the measured
constants against that bound.

Sampling makes the algorithm Las Vegas: a detected sampling error raises
internally and :func:`decompose` restarts with quadrupled ``mu`` (paper
Sec. 4.1.4); after ``MAX_RESTARTS`` failures it falls back to exact mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.peel_offline import OfflinePeel
from repro.core.peel_online import OnlinePeel
from repro.core.result import CorenessResult
from repro.core.sampling import SamplingConfig, SamplingState
from repro.core.state import PeelState
from repro.core.vgc import DEFAULT_QUEUE_SIZE, VGCConfig
from repro.errors import SamplingRestartError
from repro.graphs.csr import CSRGraph
from repro.obs.registry import active_registry
from repro.primitives.bitops import sorted_member_mask
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import SimRuntime, active_tracer
from repro.structures.buckets_base import BucketStructure
from repro.structures.fixed_buckets import FixedBuckets
from repro.structures.hbs import AdaptiveHBS, HierarchicalBuckets
from repro.structures.single_bucket import SingleBucket

#: Sampling restarts before falling back to exact (sampling-free) mode.
MAX_RESTARTS = 2

#: Known bucket strategies for :func:`make_buckets`.
BUCKET_CHOICES = ("1", "16", "hbs", "adaptive")


def make_buckets(choice: str | BucketStructure) -> BucketStructure:
    """Instantiate a bucket strategy from its name (or pass one through)."""
    if isinstance(choice, BucketStructure):
        return choice
    if choice == "1":
        return SingleBucket()
    if choice == "16":
        return FixedBuckets(16)
    if choice == "hbs":
        return HierarchicalBuckets()
    if choice == "adaptive":
        return AdaptiveHBS()
    raise ValueError(
        f"unknown bucket strategy {choice!r}; expected one of "
        f"{BUCKET_CHOICES} or a BucketStructure instance"
    )


@dataclass(frozen=True)
class FrameworkConfig:
    """Full configuration of one decomposition run.

    The paper's eight ablation variants (Table 3) are the cross product of
    ``sampling`` x ``vgc`` x (``buckets`` in {"1", "adaptive"}); the final
    algorithm is all three enabled.
    """

    peel: str = "online"  # "online" or "offline"
    buckets: str = "1"
    sampling: bool = False
    vgc: bool = False
    vgc_queue_size: int = DEFAULT_QUEUE_SIZE
    sampling_config: SamplingConfig = field(default_factory=SamplingConfig)
    name: str = ""

    def label(self) -> str:
        """Human-readable variant name for tables."""
        if self.name:
            return self.name
        parts = [self.peel]
        if self.vgc:
            parts.append("vgc")
        if self.sampling:
            parts.append("sample")
        parts.append(self.buckets if self.buckets != "1" else "plain")
        return "+".join(parts)


def decompose(
    graph: CSRGraph,
    config: FrameworkConfig | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    tracer=None,
    registry=None,
) -> CorenessResult:
    """Run the framework on ``graph`` and return the coreness of every vertex.

    Restarts transparently on (whp-rare) sampling errors.

    ``tracer`` optionally attaches a :class:`repro.trace.Tracer` to the
    run; tracing is observational only (the ledger is bit-identical with
    and without it) and spans every restart attempt.  ``registry``
    likewise attaches a :class:`repro.obs.MetricsRegistry` under the
    same observational contract (lint rule R008).
    """
    config = config if config is not None else FrameworkConfig()
    if config.peel not in ("online", "offline"):
        raise ValueError(f"unknown peel strategy {config.peel!r}")
    if config.sampling and config.peel == "offline":
        raise ValueError("sampling applies to the online peel only")
    if tracer is None:
        tracer = active_tracer()
    if registry is None:
        registry = active_registry()

    carried = None  # metrics from failed attempts
    mu_boost = 1
    attempt_config = config
    while True:
        try:
            result = _run_once(
                graph, attempt_config, model, mu_boost, tracer, registry
            )
        except SamplingRestartError:
            # Las-Vegas recovery (Sec. 4.1.4): retry with a stronger mu,
            # then give up on sampling entirely.
            mu_boost *= 4
            if carried is None:
                carried = RunMetrics()
            carried.restarts += 1
            if tracer is not None:
                tracer.instant(
                    "sampling_restart",
                    restarts=carried.restarts,
                    mu_boost=mu_boost,
                )
            if registry is not None:
                registry.inc("framework.sampling_restarts")
            if carried.restarts > MAX_RESTARTS:
                attempt_config = replace(attempt_config, sampling=False)
            continue
        if carried is not None:
            carried.merge(result.metrics)
            result.metrics = carried
        return result


def _run_once(
    graph: CSRGraph,
    config: FrameworkConfig,
    model: CostModel,
    mu_boost: int,
    tracer=None,
    registry=None,
) -> CorenessResult:
    """One attempt of the decomposition (may raise SamplingRestartError)."""
    runtime = SimRuntime(model, tracer=tracer, registry=registry)
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)

    # Initialize dtilde <- d (Alg. 1 line 1) and the bucket structure.
    if n:
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="init_degrees"
        )
    buckets = make_buckets(config.buckets)
    buckets.build(graph, dtilde, peeled, runtime)

    sampling: SamplingState | None = None
    if config.sampling:
        sampling = SamplingState(
            graph, dtilde, peeled, runtime,
            config=config.sampling_config, mu_boost=mu_boost,
        )
        sampling.attach_coreness(coreness)
        sampling.initialize()

    if config.peel == "online":
        vgc = VGCConfig(config.vgc_queue_size) if config.vgc else None
        peel = OnlinePeel(vgc=vgc)
    else:
        peel = OfflinePeel()

    state = PeelState(
        graph=graph,
        dtilde=dtilde,
        peeled=peeled,
        coreness=coreness,
        runtime=runtime,
        buckets=buckets,
        sampling=sampling,
    )

    while True:
        step = buckets.next_round()
        if step is None:
            break
        k, frontier = step
        runtime.begin_round(k)

        if sampling is not None:
            # The extracted frontier is sorted and duplicate-free until a
            # resampled batch is folded in (lows can collide with it).
            canonical = True
            # Alg. 4 lines 5-6: validate every sample-mode vertex; failed
            # validations are resampled, possibly joining this round.
            failures = sampling.validate_failures(k)
            if failures.size:
                before = dtilde[failures]
                # ``failures`` is a masked subset of the sorted
                # ``np.nonzero(mode)`` scan — already canonical.
                low = sampling.resample_bulk(failures, k, assume_unique=True)
                survivors_mask = ~sorted_member_mask(failures, low)
                survivors = failures[survivors_mask]
                if survivors.size:
                    buckets.on_decrements(survivors, before[survivors_mask])
                if low.size:
                    frontier = np.concatenate([frontier, low])
                    canonical = False

            # Last-line safety: a vertex must never be peeled while still
            # in sample mode (its induced degree is a stale over-estimate).
            # Normally validation has already resampled it; this forced
            # recount is what keeps the algorithm Las Vegas even if every
            # probabilistic check was wrong.
            still_sampled = frontier[sampling.mode[frontier]]
            if still_sampled.size:
                before = dtilde[still_sampled]
                low = sampling.resample_bulk(still_sampled, k)
                # One sorted-membership pass selects the survivors and
                # pairs them with their pre-resample keys (``low`` is a
                # sorted subset of ``still_sampled``).
                in_low = sorted_member_mask(still_sampled, low)
                not_low = still_sampled[~in_low]
                if not_low.size:
                    buckets.on_decrements(not_low, before[~in_low])

            # A resample may have pushed an extracted vertex's exact degree
            # away from k; return such vertices to the structure.
            keep = (dtilde[frontier] <= k) & (~peeled[frontier])
            rejected = frontier[~keep]
            if rejected.size:
                buckets.on_decrements(rejected)
            frontier = frontier[keep]
            if not canonical:
                frontier = np.unique(frontier)

        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            coreness[frontier] = k
            peeled[frontier] = True
            if sampling is not None:
                sampling.exit_sample_mode(frontier)
            runtime.parallel_for(
                model.scan_op,
                count=int(frontier.size),
                barriers=0,
                tag="assign_coreness",
            )
            frontier = peel.subround(state, frontier, k)

        buckets.round_finished(k)

    return CorenessResult(
        coreness=coreness,
        metrics=runtime.metrics,
        algorithm=config.label(),
        model=model,
    )
