"""The H-index locality algorithm for k-core (distributed-style).

The paper's related work covers distributed k-core (Montresor, De
Pellegrini, Miorandi 2011, its ref [58]) and low-memory settings
(Khaouid et al., ref [39]).  Both build on the *locality* theorem of
k-core: a vertex's coreness equals the **H-index** of its neighbors'
corenesses —

    kappa(v) = H({kappa(u) : u in N(v)})

where ``H(S)`` is the largest ``h`` such that at least ``h`` elements of
``S`` are ``>= h``.  Iterating ``estimate(v) <- H(neighbors' estimates)``
from the degree upper bound converges monotonically (from above) to the
exact coreness, with every vertex updated independently — no shared
frontier, no synchronized peeling — which is what makes it the algorithm
of choice for distributed and vertex-centric systems.

Convergence takes at most ``O(n)`` rounds in theory but typically a few
dozen on real graphs; the returned metrics expose the round count so
tests and benchmarks can compare it against the peeling complexity.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime


def h_index(values: np.ndarray) -> int:
    """The H-index of a multiset: max h with at least h values >= h."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    counts = np.bincount(np.minimum(values, values.size))
    total = 0
    for h in range(values.size, 0, -1):
        total += counts[h] if h < counts.size else 0
        if total >= h:
            return h
    return 0


def hindex_coreness(
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    max_rounds: int | None = None,
) -> CorenessResult:
    """Exact coreness via H-index iteration (Montresor-style).

    Each round recomputes every *active* vertex's estimate as the H-index
    of its neighbors' current estimates; vertices whose estimate did not
    change and whose neighbors' estimates did not change are skipped (the
    standard "push on change" optimization).  Rounds are counted in the
    metrics' ``rounds`` field.
    """
    runtime = SimRuntime(model)
    n = graph.n
    estimate = graph.degrees.astype(np.int64).copy()
    if n == 0:
        return CorenessResult(
            coreness=estimate, metrics=runtime.metrics,
            algorithm="hindex", model=model,
        )
    runtime.parallel_for(model.scan_op, count=n, barriers=1, tag="init")

    limit = max_rounds if max_rounds is not None else 2 * n + 2
    dirty = np.ones(n, dtype=bool)
    for _ in range(limit):
        active = np.nonzero(dirty)[0]
        if active.size == 0:
            break
        runtime.begin_round()
        changed: list[int] = []
        work = 0.0
        # Synchronous (Jacobi) update from a snapshot: all vertices read
        # the previous round's estimates, as distributed nodes would.
        snapshot = estimate.copy()
        for v in active:
            v = int(v)
            neighbors = graph.neighbors(v)
            work += model.vertex_op + model.edge_op * neighbors.size
            new = min(int(snapshot[v]), h_index(snapshot[neighbors]))
            if new != estimate[v]:
                estimate[v] = new
                changed.append(v)
        runtime.parallel_for(
            np.array([max(work, 1.0)]), barriers=1, tag="hindex_round"
        )
        dirty[:] = False
        if changed:
            for v in changed:
                dirty[graph.neighbors(v)] = True
    else:
        raise RuntimeError(
            "H-index iteration did not converge within the round limit"
        )

    return CorenessResult(
        coreness=estimate,
        metrics=runtime.metrics,
        algorithm="hindex",
        model=model,
    )
