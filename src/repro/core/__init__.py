"""The paper's algorithms: framework, techniques, baselines, verification,
plus the related-problem extensions (dynamic maintenance, approximation,
applications, core hierarchy)."""

from repro.core.anchored import (
    AnchorResult,
    anchor_greedy,
    anchored_kcore,
)
from repro.core.applications import (
    DensestSubgraphResult,
    densest_subgraph_peel,
    greedy_degeneracy_coloring,
    influence_ranking,
    onion_layers,
)
from repro.core.approximate import approximate_coreness, approximation_phases
from repro.core.batch_dynamic import BatchDynamicKCore, BatchResult
from repro.core.dcore import dcore_in_decomposition, dcore_subgraph
from repro.core.collapse import CollapseResult, collapse_kcore_greedy
from repro.core.densest_exact import Dinic, exact_densest_subgraph
from repro.core.dynamic import DynamicKCore

from repro.core.external import (
    SemiExternalResult,
    semi_external_coreness,
    write_edge_file,
)
from repro.core.generalized import (
    DegreeFunction,
    WeightedDegreeFunction,
    generalized_cores,
    symmetric_arc_weights,
    weighted_coreness,
)
from repro.core.hierarchy import (
    CoreComponent,
    core_hierarchy,
    hierarchy_levels,
)
from repro.core.framework import (
    BUCKET_CHOICES,
    FrameworkConfig,
    decompose,
    make_buckets,
)
from repro.core.locality import h_index, hindex_coreness
from repro.core.nucleus import (
    enumerate_triangles,
    max_nucleus_34,
    nucleus_decomposition_34,
)
from repro.core.parallel_kcore import ParallelKCore, kcore
from repro.core.result import CorenessResult
from repro.core.sampling import (
    SamplingConfig,
    SamplingState,
    default_mu,
)
from repro.core.sequential import bz_core, degeneracy, degeneracy_order
from repro.core.state import PeelState
from repro.core.subgraph import SubgraphResult, max_kcore_subgraph
from repro.core.truss import (
    ktruss_subgraph,
    max_trussness,
    triangle_support,
    truss_decomposition,
)
from repro.core.truss_parallel import (
    truss_decomposition_bucketed,
    trussness_bucketed,
)
from repro.core.verify import (
    assert_valid_decomposition,
    check_core_membership,
    check_coreness,
    reference_coreness,
)
from repro.core.vgc import DEFAULT_QUEUE_SIZE, VGCConfig

__all__ = [
    "BUCKET_CHOICES",
    "BatchDynamicKCore",
    "BatchResult",
    "CoreComponent",
    "DensestSubgraphResult",
    "DynamicKCore",
    "approximate_coreness",
    "approximation_phases",
    "core_hierarchy",
    "dcore_in_decomposition",
    "dcore_subgraph",
    "AnchorResult",
    "anchor_greedy",
    "anchored_kcore",
    "CollapseResult",
    "collapse_kcore_greedy",
    "Dinic",
    "exact_densest_subgraph",
    "SemiExternalResult",
    "semi_external_coreness",
    "write_edge_file",
    "DegreeFunction",
    "WeightedDegreeFunction",
    "generalized_cores",
    "symmetric_arc_weights",
    "weighted_coreness",
    "densest_subgraph_peel",
    "greedy_degeneracy_coloring",
    "h_index",
    "hierarchy_levels",
    "hindex_coreness",
    "influence_ranking",
    "onion_layers",
    "CorenessResult",
    "DEFAULT_QUEUE_SIZE",
    "FrameworkConfig",
    "ParallelKCore",
    "PeelState",
    "SamplingConfig",
    "SamplingState",
    "SubgraphResult",
    "VGCConfig",
    "assert_valid_decomposition",
    "bz_core",
    "check_core_membership",
    "check_coreness",
    "decompose",
    "default_mu",
    "degeneracy",
    "degeneracy_order",
    "kcore",
    "ktruss_subgraph",
    "max_trussness",
    "enumerate_triangles",
    "max_nucleus_34",
    "nucleus_decomposition_34",
    "triangle_support",
    "truss_decomposition",
    "truss_decomposition_bucketed",
    "trussness_bucketed",
    "make_buckets",
    "max_kcore_subgraph",
    "reference_coreness",
]
