"""Collapsed k-core: finding critical users (paper's application ref [79]).

Zhang et al. (AAAI 2017, cited in the paper's introduction) pose the
*collapsed k-core* problem: pick ``b`` vertices whose removal minimizes
the size of the resulting k-core — the "critical users" whose departure
would unravel an online community.  The problem is NP-hard; the standard
baseline is the greedy collapser that repeatedly deletes the vertex whose
removal shrinks the k-core most.

This module implements that greedy with the classic *corona* pruning: a
vertex removal can only start a cascade through vertices with exactly
``k`` remaining in-core neighbors (the corona), so candidates outside the
k-core or far above the threshold are skipped.  Cascade sizes are
evaluated with a lightweight local peel, making the greedy usable at
suite scale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.verify import reference_coreness
from repro.graphs.csr import CSRGraph


@dataclass
class CollapseResult:
    """Output of the greedy collapse attack.

    Attributes:
        removed: The ``b`` vertices chosen for removal, in pick order.
        core_sizes: k-core size after each removal (len == b + 1; index 0
            is the original size).
        followers: Vertices cascading out of the k-core per pick.
    """

    removed: list[int] = field(default_factory=list)
    core_sizes: list[int] = field(default_factory=list)
    followers: list[int] = field(default_factory=list)

    @property
    def collapse(self) -> int:
        """Total k-core shrinkage achieved."""
        if not self.core_sizes:
            return 0
        return self.core_sizes[0] - self.core_sizes[-1]


def _core_degrees(graph: CSRGraph, in_core: np.ndarray) -> np.ndarray:
    """Number of in-core neighbors for every in-core vertex (0 outside)."""
    out = np.zeros(graph.n, dtype=np.int64)
    members = np.nonzero(in_core)[0]
    for v in members:
        out[v] = int(in_core[graph.neighbors(int(v))].sum())
    return out


def _cascade(
    graph: CSRGraph,
    in_core: np.ndarray,
    core_deg: np.ndarray,
    victim: int,
    k: int,
    apply: bool,
) -> int:
    """Vertices leaving the k-core if ``victim`` is deleted.

    With ``apply=False`` the state arrays are restored before returning
    (evaluation mode); with ``apply=True`` the removal is committed.
    """
    if not in_core[victim]:
        return 0
    touched: list[tuple[int, int]] = []  # (vertex, old core_deg)
    removed: list[int] = [victim]
    in_core[victim] = False
    queue = deque([victim])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(int(v)):
            u = int(u)
            if not in_core[u]:
                continue
            touched.append((u, int(core_deg[u])))
            core_deg[u] -= 1
            if core_deg[u] < k:
                in_core[u] = False
                removed.append(u)
                queue.append(u)
    count = len(removed)
    if not apply:
        for u, old in reversed(touched):
            core_deg[u] = old
        for v in removed:
            in_core[v] = True
    return count


def collapse_kcore_greedy(
    graph: CSRGraph, k: int, budget: int
) -> CollapseResult:
    """Greedy collapsed-k-core attack: remove ``budget`` vertices.

    Each pick evaluates the cascade of every *corona-adjacent* candidate
    (in-core vertices whose removal touches a vertex at exactly ``k``
    in-core neighbors, plus corona vertices themselves) and commits the
    best one.  Ties break toward the lowest vertex id for determinism.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    coreness = reference_coreness(graph)
    in_core = coreness >= k
    core_deg = _core_degrees(graph, in_core)
    result = CollapseResult()
    result.core_sizes.append(int(in_core.sum()))

    for _ in range(budget):
        members = np.nonzero(in_core)[0]
        if members.size == 0:
            break
        # Candidate pruning: removals only cascade through the corona
        # (core degree exactly k); any vertex adjacent to the corona —
        # or in it — is a candidate, others shrink the core by exactly 1.
        corona = members[core_deg[members] == k]
        candidate_set = set(corona.tolist())
        for v in corona:
            for u in graph.neighbors(int(v)):
                if in_core[u]:
                    candidate_set.add(int(u))
        if not candidate_set:
            candidate_set = {int(members[0])}
        best_v = -1
        best_gain = 0
        for v in sorted(candidate_set):
            gain = _cascade(graph, in_core, core_deg, v, k, apply=False)
            if gain > best_gain:
                best_gain = gain
                best_v = v
        if best_v == -1:
            # No cascades anywhere: any removal shrinks the core by one.
            best_v = int(members[0])
            best_gain = 1
        _cascade(graph, in_core, core_deg, best_v, k, apply=True)
        result.removed.append(best_v)
        result.followers.append(best_gain - 1)
        result.core_sizes.append(int(in_core.sum()))
    return result
