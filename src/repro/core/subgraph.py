"""Maximum k-core subgraph extraction (paper Appendix B).

Given a target ``k``, find the maximal subgraph in which every vertex has
degree at least ``k`` — a single-threshold variant of the decomposition
used by dense-subgraph-discovery pipelines.  The peeling condition changes
("remove while induced degree < k"); there is exactly one round and the
paper's techniques carry over: VGC hides subround scheduling and sampling
kills contention on the high-degree vertices that dominate the social /
web graphs this task usually runs on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.structures.null_buckets import NullBuckets
from repro.core.peel_online import OnlinePeel
from repro.core.sampling import SamplingConfig, SamplingState
from repro.core.state import PeelState
from repro.core.vgc import DEFAULT_QUEUE_SIZE, VGCConfig
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import SimRuntime


@dataclass
class SubgraphResult:
    """Result of a max k-core subgraph extraction.

    Attributes:
        members: Boolean mask over vertices — True for k-core members.
        k: The requested degree threshold.
        metrics: Simulated-execution ledger.
        algorithm: Label of the strategy used.
    """

    members: np.ndarray
    k: int
    metrics: RunMetrics
    algorithm: str = ""

    @property
    def size(self) -> int:
        """Number of vertices in the extracted core."""
        return int(self.members.sum())

    def vertex_ids(self) -> np.ndarray:
        """Vertex ids of the core members."""
        return np.nonzero(self.members)[0].astype(np.int64)

    def extract(self, graph: CSRGraph) -> CSRGraph:
        """Materialize the induced subgraph."""
        return graph.induced_subgraph(self.vertex_ids())


def max_kcore_subgraph(
    graph: CSRGraph,
    k: int,
    sampling: bool = True,
    vgc: bool = True,
    queue_size: int = DEFAULT_QUEUE_SIZE,
    sampling_config: SamplingConfig | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    algorithm: str = "",
) -> SubgraphResult:
    """Compute the maximal subgraph with minimum degree ``k``.

    This is our framework adapted as described in Appendix B: a single
    peeling round at threshold ``t = k - 1`` with the online peel, and the
    sampling / VGC techniques toggled by the flags.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    runtime = SimRuntime(model)
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)  # scratch required by the peel
    if n:
        runtime.parallel_for(
            model.scan_op, count=n, barriers=1, tag="init_degrees"
        )

    threshold = k - 1  # peel while dtilde <= threshold
    buckets = NullBuckets()
    buckets.build(graph, dtilde, peeled, runtime)

    sampling_state: SamplingState | None = None
    if sampling and n:
        sampling_state = SamplingState(
            graph, dtilde, peeled, runtime, config=sampling_config
        )
        sampling_state.attach_coreness(coreness)
        if threshold >= 0:
            runtime.parallel_for(
                model.scan_op, count=n, barriers=1, tag="init_samplers"
            )
            sampling_state.set_sampler_bulk(
                np.arange(n, dtype=np.int64), threshold
            )

    peel = OnlinePeel(vgc=VGCConfig(queue_size) if vgc else None)
    state = PeelState(
        graph=graph,
        dtilde=dtilde,
        peeled=peeled,
        coreness=coreness,
        runtime=runtime,
        buckets=buckets,
        sampling=sampling_state,
    )

    runtime.begin_round()
    runtime.parallel_for(
        model.scan_op, count=max(n, 1), barriers=1, tag="initial_frontier"
    )
    frontier = np.nonzero(dtilde <= threshold)[0].astype(np.int64)
    while True:
        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            peeled[frontier] = True
            coreness[frontier] = threshold if threshold >= 0 else 0
            if sampling_state is not None:
                sampling_state.exit_sample_mode(frontier)
            runtime.parallel_for(
                model.scan_op,
                count=int(frontier.size),
                barriers=0,
                tag="mark_removed",
            )
            frontier = peel.subround(state, frontier, threshold)
        if sampling_state is None:
            break
        # Final validation sweep: vertices still in sample mode hold stale
        # (over-)estimates; recount them exactly.  Any that fall below the
        # threshold resume the peel; once a full sweep finds none, every
        # survivor provably has induced degree >= k.
        in_sample_mode = np.nonzero(sampling_state.mode)[0]
        if in_sample_mode.size == 0:
            break
        low = sampling_state.resample_bulk(in_sample_mode, threshold)
        frontier = low[~peeled[low]]
        if frontier.size == 0:
            break

    if not algorithm:
        bits = ["ours"]
        if sampling:
            bits.append("sample")
        if vgc:
            bits.append("vgc")
        algorithm = "+".join(bits)
    return SubgraphResult(
        members=~peeled, k=k, metrics=runtime.metrics, algorithm=algorithm
    )
