"""D-core ((k, l)-core) decomposition of directed graphs.

A **(k, l)-core** of a digraph is the maximal subgraph in which every
vertex has in-degree at least ``k`` and out-degree at least ``l``
(Giatsidis, Thilikos, Vazirgiannis 2013).  The paper lists D-core
decomposition among the closely related problems its techniques could
carry to (Sec. 7, citing Liao et al. 2022 and Luo et al. 2024).

This module provides:

* :func:`dcore_subgraph` — extract one (k, l)-core by simultaneous
  peeling of both degree constraints (the directed analogue of
  Appendix B's max k-core task);
* :func:`dcore_in_decomposition` — for a fixed out-degree floor ``l``,
  the maximum ``k`` such that each vertex belongs to the (k, l)-core
  (a one-dimensional slice of the D-core skyline, computed by a peeling
  sweep analogous to the undirected decomposition).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.digraph import DirectedCSRGraph


def dcore_subgraph(
    graph: DirectedCSRGraph, k: int, l: int
) -> np.ndarray:
    """Membership mask of the (k, l)-core.

    Peels every vertex whose in-degree drops below ``k`` or out-degree
    below ``l``, cascading until a fixed point; the survivors are the
    unique maximal (k, l)-core (possibly empty).
    """
    if k < 0 or l < 0:
        raise ValueError(f"k and l must be non-negative, got {k}, {l}")
    n = graph.n
    din = graph.in_degrees.astype(np.int64).copy()
    dout = graph.out_degrees.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)

    queue = deque(
        int(v) for v in np.nonzero((din < k) | (dout < l))[0]
    )
    queued = np.zeros(n, dtype=bool)
    for v in queue:
        queued[v] = True
    while queue:
        v = queue.popleft()
        if not alive[v]:
            continue
        alive[v] = False
        # v's removal lowers the in-degree of its out-neighbors and the
        # out-degree of its in-neighbors.
        for u in graph.out_neighbors(v):
            u = int(u)
            din[u] -= 1
            if alive[u] and not queued[u] and din[u] < k:
                queued[u] = True
                queue.append(u)
        for u in graph.in_neighbors(v):
            u = int(u)
            dout[u] -= 1
            if alive[u] and not queued[u] and dout[u] < l:
                queued[u] = True
                queue.append(u)
    return alive


def dcore_in_decomposition(
    graph: DirectedCSRGraph, l: int
) -> np.ndarray:
    """For fixed ``l``: the largest ``k`` with ``v`` in the (k, l)-core.

    Returns -1 for vertices outside even the (0, l)-core.  Computed with
    a peeling sweep over increasing ``k``: first reduce to the (0,
    l)-core, then peel by in-degree while keeping the out-degree
    constraint alive (a vertex evicted by the out-degree constraint
    inherits the current level).
    """
    if l < 0:
        raise ValueError(f"l must be non-negative, got {l}")
    n = graph.n
    din = graph.in_degrees.astype(np.int64).copy()
    dout = graph.out_degrees.astype(np.int64).copy()
    alive = dcore_subgraph(graph, 0, l)
    result = np.full(n, -1, dtype=np.int64)
    if not alive.any():
        return result

    # Recompute induced degrees inside the (0, l)-core.
    for v in np.nonzero(~alive)[0]:
        for u in graph.out_neighbors(int(v)):
            din[u] -= 1
        for u in graph.in_neighbors(int(v)):
            dout[u] -= 1

    remaining = int(alive.sum())
    k = 0
    while remaining:
        frontier = deque(
            int(v)
            for v in np.nonzero(alive & ((din <= k) | (dout < l)))[0]
        )
        seen = set(frontier)
        while frontier:
            v = frontier.popleft()
            if not alive[v]:
                continue
            alive[v] = False
            result[v] = k
            remaining -= 1
            for u in graph.out_neighbors(v):
                u = int(u)
                din[u] -= 1
                if alive[u] and u not in seen and (
                    din[u] <= k or dout[u] < l
                ):
                    seen.add(u)
                    frontier.append(u)
            for u in graph.in_neighbors(v):
                u = int(u)
                dout[u] -= 1
                if alive[u] and u not in seen and (
                    din[u] <= k or dout[u] < l
                ):
                    seen.add(u)
                    frontier.append(u)
        k += 1
    return result
