"""Offline peeling (paper Alg. 2) — the Julienne strategy.

The offline peel is batch-synchronous and race-free: it concatenates the
neighbor lists of the frontier into a list ``L``, counts the occurrences of
each vertex with a semisort-based HISTOGRAM, applies all decrements at once,
and packs the vertices that crossed the threshold into the next frontier.
Each subround therefore needs several global synchronizations (gather,
histogram phases, apply/pack), which is exactly why its burdened span is a
constant factor worse than the online peel's and why it collapses on graphs
with many tiny subrounds (the GRID adversary, paper Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import PeelState
from repro.perf.kernels import scan_peel_round


class OfflinePeel:
    """Offline (histogram-based) peel strategy."""

    name = "offline"

    def subround(
        self, state: PeelState, frontier: np.ndarray, k: int
    ) -> np.ndarray:
        graph, runtime = state.graph, state.runtime
        model = runtime.model

        # Gather the concatenated neighbor list L (Alg. 2 line 3).
        degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
        task_costs = (
            model.vertex_op + model.edge_op * degrees
        ).astype(np.float64)
        runtime.parallel_for(task_costs, barriers=1, tag="offline_gather")

        edge_total = int(degrees.sum())
        if edge_total == 0:
            return np.zeros(0, dtype=np.int64)

        # HISTOGRAM via semisort (two phases) and batched application,
        # fused into one flat kernel pass: the charge is the semisort's
        # (per element of L), the counting itself runs in
        # :func:`repro.perf.kernels.scan_peel_round` — whose sorted
        # ``touched`` / ``counts`` are exactly the semisort's groups.
        runtime.parallel_for(
            model.histogram_op, count=edge_total, barriers=2,
            tag="offline_hist",
        )
        outcome = scan_peel_round(state, frontier, k)
        survivors = (outcome.new > k) & (~state.peeled[outcome.touched])
        runtime.parallel_for(
            model.scan_op,
            count=int(outcome.touched.size),
            barriers=1,
            tag="offline_apply",
        )

        if np.any(survivors):
            state.buckets.on_decrements(
                outcome.touched[survivors], outcome.old[survivors]
            )
        return outcome.crossed[~state.peeled[outcome.crossed]]
