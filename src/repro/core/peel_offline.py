"""Offline peeling (paper Alg. 2) — the Julienne strategy.

The offline peel is batch-synchronous and race-free: it concatenates the
neighbor lists of the frontier into a list ``L``, counts the occurrences of
each vertex with a semisort-based HISTOGRAM, applies all decrements at once,
and packs the vertices that crossed the threshold into the next frontier.
Each subround therefore needs several global synchronizations (gather,
histogram phases, apply/pack), which is exactly why its burdened span is a
constant factor worse than the online peel's and why it collapses on graphs
with many tiny subrounds (the GRID adversary, paper Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import PeelState
from repro.primitives.histogram import histogram


class OfflinePeel:
    """Offline (histogram-based) peel strategy."""

    name = "offline"

    def subround(
        self, state: PeelState, frontier: np.ndarray, k: int
    ) -> np.ndarray:
        graph, runtime = state.graph, state.runtime
        model = runtime.model

        # Gather the concatenated neighbor list L (Alg. 2 line 3).
        targets = graph.gather_neighbors(frontier)
        task_costs = (
            model.vertex_op
            + model.edge_op
            * (graph.indptr[frontier + 1] - graph.indptr[frontier])
        ).astype(np.float64)
        runtime.parallel_for(task_costs, barriers=1, tag="offline_gather")

        if targets.size == 0:
            return np.zeros(0, dtype=np.int64)

        # HISTOGRAM via semisort (two phases) and batched application.
        hist = histogram(targets, runtime=runtime, phases=2, tag="offline_hist")
        old = state.dtilde[hist.keys]
        new = old - hist.counts
        state.dtilde[hist.keys] = new
        crossed = hist.keys[(old > k) & (new <= k)]
        survivors = (new > k) & (~state.peeled[hist.keys])
        runtime.parallel_for(
            model.scan_op,
            count=int(hist.keys.size),
            barriers=1,
            tag="offline_apply",
        )

        if np.any(survivors):
            state.buckets.on_decrements(
                hist.keys[survivors], old[survivors]
            )
        return crossed[~state.peeled[crossed]]
