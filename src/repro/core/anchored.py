"""Anchored k-core: preventing community unraveling.

The defensive dual of the collapsed k-core (both descend from the
engagement-dynamics line the paper's introduction cites): pick ``b``
*anchor* vertices that are kept in the community by fiat (incentives,
pinned content); anchors count toward their neighbors' degrees even if
their own degree is below ``k``, so each anchor can pull a cascade of
*followers* back into the k-core.  Choosing anchors to maximize the
anchored k-core is NP-hard (Bhawalkar et al. 2015); the standard
baseline is the greedy that repeatedly anchors the vertex with the most
followers.

``anchored_kcore`` computes the anchored core for a fixed anchor set
(a peel in which anchors are never removed); ``anchor_greedy`` runs the
greedy selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.csr import CSRGraph


def anchored_kcore(
    graph: CSRGraph, k: int, anchors: np.ndarray | list[int]
) -> np.ndarray:
    """Membership mask of the anchored k-core.

    Peels non-anchor vertices with induced degree below ``k`` until a
    fixed point; anchors always survive and keep supporting neighbors.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = graph.n
    anchor_mask = np.zeros(n, dtype=bool)
    anchor_idx = np.asarray(list(anchors), dtype=np.int64)
    if anchor_idx.size and (
        anchor_idx.min() < 0 or anchor_idx.max() >= n
    ):
        raise IndexError("anchor out of range")
    anchor_mask[anchor_idx] = True

    alive = np.ones(n, dtype=bool)
    dtilde = graph.degrees.astype(np.int64).copy()
    frontier = np.nonzero((~anchor_mask) & (dtilde < k))[0]
    while frontier.size:
        alive[frontier] = False
        targets = graph.gather_neighbors(frontier)
        if targets.size:
            touched, counts = np.unique(targets, return_counts=True)
            old = dtilde[touched]
            dtilde[touched] = old - counts
            frontier = touched[
                alive[touched]
                & (~anchor_mask[touched])
                & (old >= k)
                & (dtilde[touched] < k)
            ]
        else:
            frontier = np.zeros(0, dtype=np.int64)
    return alive


@dataclass
class AnchorResult:
    """Output of the greedy anchor selection.

    Attributes:
        anchors: Chosen anchors in pick order.
        core_sizes: Anchored-core size after each pick (index 0 = the
            plain k-core size, no anchors).
        followers: Non-anchor vertices gained per pick.
    """

    anchors: list[int] = field(default_factory=list)
    core_sizes: list[int] = field(default_factory=list)
    followers: list[int] = field(default_factory=list)

    @property
    def gained(self) -> int:
        """Total community growth achieved by the anchors."""
        if not self.core_sizes:
            return 0
        return self.core_sizes[-1] - self.core_sizes[0]


def anchor_greedy(
    graph: CSRGraph, k: int, budget: int
) -> AnchorResult:
    """Greedy anchored-k-core: pick ``budget`` anchors, best-follower first.

    Candidates are restricted to vertices currently outside the anchored
    core that have at least one neighbor inside it or one neighbor also
    outside-but-adjacent (the only vertices whose anchoring can recruit
    followers in one step); ties break to the smallest id.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    result = AnchorResult()
    anchors: list[int] = []
    current = anchored_kcore(graph, k, anchors)
    result.core_sizes.append(int(current.sum()))

    for _ in range(budget):
        outside = np.nonzero(~current)[0]
        if outside.size == 0:
            break
        # Candidate pruning: anchoring helps only where the anchor's
        # neighborhood touches the survivors or near-survivors.
        candidates = []
        for v in outside:
            nbrs = graph.neighbors(int(v))
            if nbrs.size and current[nbrs].any():
                candidates.append(int(v))
        if not candidates:
            candidates = [int(outside[0])]
        best_v = -1
        best_size = int(current.sum())
        for v in candidates:
            size = int(anchored_kcore(graph, k, anchors + [v]).sum())
            if size > best_size:
                best_size = size
                best_v = v
        if best_v == -1:
            # No candidate recruits anyone; anchor the first candidate
            # anyway (it joins alone).
            best_v = candidates[0]
            best_size = int(
                anchored_kcore(graph, k, anchors + [best_v]).sum()
            )
        anchors.append(best_v)
        previous = result.core_sizes[-1]
        result.anchors.append(best_v)
        result.core_sizes.append(best_size)
        result.followers.append(best_size - previous - 1)
        current = anchored_kcore(graph, k, anchors)
    return result
