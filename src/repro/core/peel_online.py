"""Online peeling (paper Alg. 3), with optional sampling and VGC.

The online peel removes the frontier in parallel and decrements the induced
degrees of its neighbors *directly* with atomic operations: the thread whose
decrement takes ``dtilde[u]`` from ``k + 1`` to ``k`` is the unique one to
add ``u`` to the next frontier.  It needs a single barrier per subround but
suffers contention on high-degree vertices — which sampling removes — and
still one barrier per (possibly tiny) subround — which VGC amortizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import PeelState
from repro.core.vgc import VGCConfig
from repro.perf import NATIVE, REFERENCE, kernel_mode
from repro.perf.kernels import (
    VGCTaskResult,
    scan_peel_round,
    vgc_peel_tasks,
    vgc_peel_tasks_native,
)
from repro.primitives.bitops import sorted_member_mask
from repro.runtime.atomics import batch_decrement


class OnlinePeel:
    """Online peel strategy; one instance per decomposition run."""

    name = "online"

    def __init__(self, vgc: VGCConfig | None = None) -> None:
        self.vgc = vgc

    def subround(
        self, state: PeelState, frontier: np.ndarray, k: int
    ) -> np.ndarray:
        """Peel one frontier; return the next one.

        The caller has already set ``coreness`` / ``peeled`` for the
        frontier (Alg. 1 line 7).
        """
        if self.vgc is not None:
            return self._subround_vgc(state, frontier, k)
        return self._subround_flat(state, frontier, k)

    # ------------------------------------------------------------------
    # Flat online subround (Alg. 3)
    # ------------------------------------------------------------------
    def _subround_flat(
        self, state: PeelState, frontier: np.ndarray, k: int
    ) -> np.ndarray:
        graph, runtime = state.graph, state.runtime
        model = runtime.model
        degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
        task_costs = (
            model.vertex_op + model.edge_op * degrees
        ).astype(np.float64)

        # Direct atomic decrements (batched, with contention tracking).
        # Without sampling every target is direct, so the gather, the
        # histogram and the apply fuse into one flat kernel pass
        # (:func:`repro.perf.kernels.scan_peel_round`).
        sampled = np.zeros(0, dtype=np.int64)
        if state.sampling is not None:
            targets = graph.gather_neighbors(frontier)
            direct, sampled = state.sampling.split_targets(targets)
            outcome = (
                batch_decrement(state.dtilde, direct, k)
                if direct.size
                else None
            )
        elif int(degrees.sum()):
            outcome = scan_peel_round(state, frontier, k)
        else:
            outcome = None

        crossed = np.zeros(0, dtype=np.int64)
        changed = np.zeros(0, dtype=np.int64)
        old_keys = np.zeros(0, dtype=np.int64)
        if outcome is not None:
            crossed = outcome.crossed
            survivors = (outcome.new > k) & (~state.peeled[outcome.touched])
            changed = outcome.touched[survivors]
            old_keys = outcome.old[survivors]
            runtime.parallel_update(
                task_costs,
                outcome.counts,
                barriers=model.online_barriers,
                tag="online_peel",
            )
        else:
            runtime.parallel_for(
                task_costs, barriers=model.online_barriers, tag="online_peel"
            )

        # Sampled stream: coin flips, counter increments, resampling.
        resampled_low = np.zeros(0, dtype=np.int64)
        if state.sampling is not None and sampled.size:
            hits = state.sampling.draw_hits(sampled)
            saturated = state.sampling.apply_hits(hits)
            resampled_low = _resample_and_rebucket(state, saturated, k)

        # ``crossed`` comes out of the batch-decrement contract sorted
        # and duplicate-free, so the merge can skip canonicalization
        # when there is no resampled stream to fold in.
        next_frontier = _merge_frontier(
            state, crossed, resampled_low, crossed_sorted=True
        )
        if changed.size:
            state.buckets.on_decrements(changed, old_keys)
        return next_frontier

    # ------------------------------------------------------------------
    # VGC subround: local searches over bounded FIFO queues (Sec. 4.2)
    # ------------------------------------------------------------------
    def _subround_vgc(
        self, state: PeelState, frontier: np.ndarray, k: int
    ) -> np.ndarray:
        """Run the local searches, then the shared subround epilogue.

        The task loop comes in three bit-exact implementations — the
        compiled native kernel, the flat NumPy kernel, and the original
        reference loop — selected by ``REPRO_KERNELS``; everything
        after it (contention accounting, resampling, bucket updates,
        frontier merge) is shared, so the implementations can only
        differ inside the loop.
        """
        assert self.vgc is not None
        runtime = state.runtime
        model = runtime.model
        regime = kernel_mode()
        if regime == REFERENCE:
            result = self._vgc_task_loop_reference(state, frontier, k)
        elif regime == NATIVE:
            result = vgc_peel_tasks_native(
                state,
                frontier,
                k,
                self.vgc.queue_size,
                self.vgc.edge_budget,
            )
        else:
            result = vgc_peel_tasks(
                state,
                frontier,
                k,
                self.vgc.queue_size,
                self.vgc.edge_budget,
            )
        runtime.metrics.local_search_hits += result.local_search_hits
        if runtime.tracer is not None:
            runtime.tracer.instant(
                "vgc_tasks",
                regime=regime,
                tasks=int(frontier.size),
                absorbed=int(result.local_search_hits),
                sample_draws=int(result.sample_draws),
                sample_hits=int(result.sample_hits),
                saturated=int(result.saturated.size),
            )

        # Contention accounting: concurrent updates per location across
        # the whole subround (decrements and sampler hits alike).
        runtime.parallel_update(
            result.task_costs,
            result.target_counts,
            barriers=model.online_barriers,
            tag="vgc_peel",
        )

        resampled_low = np.zeros(0, dtype=np.int64)
        if state.sampling is not None and result.saturated.size:
            resampled_low = _resample_and_rebucket(
                state, result.saturated, k
            )

        # Bucket updates for surviving touched vertices.
        if result.touched.size:
            survivors = (state.dtilde[result.touched] > k) & (
                ~state.peeled[result.touched]
            )
            if np.any(survivors):
                state.buckets.on_decrements(
                    result.touched[survivors],
                    result.touched_old[survivors],
                )
        return _merge_frontier(state, result.next_frontier, resampled_low)

    def _vgc_task_loop_reference(
        self, state: PeelState, frontier: np.ndarray, k: int
    ) -> VGCTaskResult:
        """The original per-edge Python task loop (equivalence oracle)."""
        graph, runtime = state.graph, state.runtime
        model = runtime.model
        dtilde, peeled, coreness = state.dtilde, state.peeled, state.coreness
        sampling = state.sampling
        indptr, indices = graph.indptr, graph.indices
        assert self.vgc is not None
        budget = self.vgc.queue_size
        edge_budget = self.vgc.edge_budget

        next_frontier: list[int] = []
        saturated: list[int] = []
        decrement_targets: list[int] = []
        hit_targets: list[int] = []
        first_seen_key: dict[int, int] = {}
        task_costs = np.empty(frontier.size, dtype=np.float64)

        mode = sampling.mode if sampling is not None else None
        rng = sampling.rng if sampling is not None else None
        local_search_hits = 0
        sample_draws = 0
        for task_id, seed in enumerate(frontier):
            queue: list[int] = [int(seed)]
            head = 0
            cost = 0.0
            edges_seen = 0
            while head < len(queue):
                v = queue[head]
                head += 1
                cost += model.vertex_op
                for u in indices[indptr[v] : indptr[v + 1]]:
                    u = int(u)
                    cost += model.edge_op
                    edges_seen += 1
                    if mode is not None and mode[u]:
                        cost += model.sample_flip_op
                        sample_draws += 1
                        assert rng is not None and sampling is not None
                        if rng.random() < sampling.rate[u]:
                            # Atomic cost is charged by parallel_update
                            # from the contention counts, not per task.
                            hit_targets.append(u)
                            sampling.cnt[u] += 1
                            if sampling.cnt[u] == sampling.mu:
                                saturated.append(u)
                        continue
                    old = dtilde[u]
                    dtilde[u] = old - 1
                    decrement_targets.append(u)
                    first_seen_key.setdefault(u, int(old))
                    if old == k + 1 and not peeled[u]:
                        if len(queue) < budget and edges_seen < edge_budget:
                            # Absorb u into this local search: peel it now.
                            queue.append(u)
                            coreness[u] = k
                            peeled[u] = True
                            if mode is not None:
                                mode[u] = False
                            local_search_hits += 1
                        else:
                            next_frontier.append(u)
            task_costs[task_id] = cost

        touched = np.fromiter(
            first_seen_key.keys(), dtype=np.int64, count=len(first_seen_key)
        )
        olds = np.fromiter(
            first_seen_key.values(),
            dtype=np.int64,
            count=len(first_seen_key),
        )
        targets = np.asarray(decrement_targets + hit_targets, dtype=np.int64)
        if targets.size:
            _, counts = np.unique(targets, return_counts=True)
        else:
            counts = np.zeros(0, dtype=np.int64)
        return VGCTaskResult(
            task_costs=task_costs,
            next_frontier=np.asarray(next_frontier, dtype=np.int64),
            saturated=np.asarray(saturated, dtype=np.int64),
            target_counts=counts,
            touched=touched,
            touched_old=olds,
            local_search_hits=local_search_hits,
            sample_draws=sample_draws,
            sample_hits=len(hit_targets),
        )


def _resample_and_rebucket(
    state: PeelState, saturated: np.ndarray, k: int
) -> np.ndarray:
    """Resample saturated samplers; rebucket survivors; return the lows."""
    assert state.sampling is not None
    saturated = np.unique(saturated)
    before = state.dtilde[saturated]
    low = state.sampling.resample_bulk(saturated, k, assume_unique=True)
    # One sorted-membership pass serves both the survivor selection and
    # the old-key pairing (``low`` is a sorted subset of ``saturated``).
    in_low = sorted_member_mask(saturated, low)
    survivors = saturated[~in_low]
    if survivors.size:
        state.buckets.on_decrements(survivors, before[~in_low])
    return low


def _merge_frontier(
    state: PeelState,
    crossed: np.ndarray,
    resampled_low: np.ndarray,
    crossed_sorted: bool = False,
) -> np.ndarray:
    """Combine crossing and resampled vertices into the next frontier.

    Charges the hash-bag insertions that maintain the frontier and filters
    out anything already peeled (resampling can race a crossing).
    ``crossed_sorted`` declares that ``crossed`` is already sorted and
    duplicate-free (the batch-decrement contract), so the common
    no-resample case needs no canonicalization pass at all.
    """
    if resampled_low.size:
        merged = np.unique(np.concatenate([crossed, resampled_low]))
    elif crossed.size:
        # ``crossed`` is duplicate-free in every producer — exactly one
        # decrement takes a vertex from ``k + 1`` to ``k``, and that
        # single crossing is what appends it — so an unsorted stream
        # (the VGC task loops) only needs the canonical sort.
        merged = crossed if crossed_sorted else np.sort(crossed)
    else:
        return crossed
    merged = merged[~state.peeled[merged]]
    if merged.size:
        state.runtime.parallel_for(
            state.runtime.model.bag_insert_op,
            count=int(merged.size),
            barriers=0,
            tag="frontier_bag",
        )
    return merged
