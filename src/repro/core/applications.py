"""Applications built on the k-core machinery.

The paper motivates k-core decomposition through its applications (dense
region detection, influence analysis, robustness) and lists dense-subgraph
discovery and hierarchical decompositions as closely related problems
(Sec. 7).  This module implements the standard textbook applications on
top of the library's decomposition and degeneracy-ordering primitives:

* **greedy degeneracy coloring** — coloring along the smallest-last order
  uses at most ``degeneracy + 1`` colors (Matula & Beck 1983);
* **densest-subgraph 2-approximation** — the best prefix of the peeling
  order has average-degree density at least half the optimum (Charikar
  2000);
* **onion layers** — the iteration index at which each vertex is peeled,
  a finer structural signature than coreness used in robustness analysis;
* **core-based influence ranking** — vertices ordered by (coreness,
  degree), the spreading-power heuristic of Kitsak et al. (2010).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sequential import degeneracy_order
from repro.graphs.csr import CSRGraph


def greedy_degeneracy_coloring(graph: CSRGraph) -> np.ndarray:
    """Color vertices greedily along the degeneracy order.

    Returns a proper coloring (adjacent vertices differ) using at most
    ``degeneracy(G) + 1`` colors; colors are 0-based ints.
    """
    order, coreness = degeneracy_order(graph)
    colors = np.full(graph.n, -1, dtype=np.int64)
    # Color in *reverse* peeling order: each vertex then has at most
    # `degeneracy` already-colored neighbors.
    for v in order[::-1]:
        v = int(v)
        used = {int(colors[u]) for u in graph.neighbors(v) if colors[u] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[v] = color
    return colors


@dataclass(frozen=True)
class DensestSubgraphResult:
    """Output of the peeling 2-approximation for densest subgraph.

    Attributes:
        vertices: Vertex ids of the chosen subgraph.
        density: ``|E(S)| / |S|`` of the chosen subgraph.
    """

    vertices: np.ndarray
    density: float


def densest_subgraph_peel(graph: CSRGraph) -> DensestSubgraphResult:
    """Charikar's peeling 2-approximation for the densest subgraph.

    Peels vertices in degeneracy (minimum-degree-first) order and keeps
    the suffix with the best average-degree density ``|E| / |V|``; the
    result is within a factor 2 of the optimum density.
    """
    if graph.n == 0:
        return DensestSubgraphResult(
            vertices=np.zeros(0, dtype=np.int64), density=0.0
        )
    order, _ = degeneracy_order(graph)
    alive = np.ones(graph.n, dtype=bool)
    edges_left = graph.num_edges
    best_density = edges_left / graph.n
    best_cut = 0  # peel everything before this index stays
    for i, v in enumerate(order[:-1]):
        v = int(v)
        edges_left -= int(alive[graph.neighbors(v)].sum())
        alive[v] = False
        size = graph.n - i - 1
        density = edges_left / size
        if density > best_density:
            best_density = density
            best_cut = i + 1
    vertices = order[best_cut:]
    return DensestSubgraphResult(
        vertices=np.sort(np.asarray(vertices, dtype=np.int64)),
        density=float(best_density),
    )


def onion_layers(graph: CSRGraph) -> np.ndarray:
    """Onion decomposition: the peeling wave in which each vertex falls.

    Wave ``t`` removes every vertex whose induced degree is at most the
    current minimum coreness level; vertices deeper in the onion survive
    more waves.  Refines coreness: equal-coreness vertices can sit in
    different layers.
    """
    n = graph.n
    layers = np.zeros(n, dtype=np.int64)
    dtilde = graph.degrees.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    remaining = n
    layer = 0
    k = 0
    while remaining:
        current = dtilde[alive]
        k = max(k, int(current.min()))
        wave = np.nonzero(alive & (dtilde <= k))[0]
        while wave.size:
            layer += 1
            layers[wave] = layer
            alive[wave] = False
            remaining -= int(wave.size)
            targets = graph.gather_neighbors(wave)
            if targets.size:
                drops = np.bincount(targets, minlength=n)
                dtilde -= drops
            wave = np.nonzero(alive & (dtilde <= k))[0]
    return layers


def influence_ranking(
    graph: CSRGraph, coreness: np.ndarray, top: int | None = None
) -> np.ndarray:
    """Vertices ranked by (coreness, degree) descending.

    The k-core heuristic for influential spreaders (Kitsak et al. 2010):
    coreness first, degree as the tie-breaker.
    """
    coreness = np.asarray(coreness, dtype=np.int64)
    if coreness.shape != (graph.n,):
        raise ValueError("coreness must have one entry per vertex")
    key = coreness * (graph.n + 1) + np.minimum(graph.degrees, graph.n)
    ranked = np.argsort(-key, kind="stable").astype(np.int64)
    if top is not None:
        ranked = ranked[:top]
    return ranked
