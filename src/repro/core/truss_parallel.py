"""Bucketed (framework-style) k-truss peeling.

The paper argues its bucketing structures are "of independent interest"
for other peeling problems, citing parallel clique counting/peeling and
nucleus decomposition (refs [66, 67]).  The simplest such problem is the
k-truss: peel *edges* by triangle support instead of vertices by degree.

This module runs truss peeling through the same
:class:`~repro.structures.buckets_base.BucketStructure` machinery the
k-core framework uses — edges are the elements, triangle support the
key — with frontier-synchronous batch updates.  It validates (in tests)
against the sequential heap implementation and records the same
work/subround metrics, so the bucketing strategies can be compared on a
second decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import CorenessResult
from repro.core.truss import _edge_table, triangle_support
from repro.graphs.csr import CSRGraph
from repro.runtime.atomics import batch_decrement
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime
from repro.structures.buckets_base import BucketStructure
from repro.core.framework import make_buckets


class _EdgeGraphShim:
    """Just enough of the CSRGraph interface for BucketStructure.build.

    Bucket structures only read ``n`` (element count) and the key array;
    this shim presents the edge set as the element universe.
    """

    def __init__(self, m: int, supports: np.ndarray) -> None:
        self.n = m
        self._supports = supports

    @property
    def max_degree(self) -> int:
        return int(self._supports.max()) if self.n else 0

    @property
    def average_degree(self) -> float:
        if self.n == 0:
            return 0.0
        return float(self._supports.mean())


def truss_decomposition_bucketed(
    graph: CSRGraph,
    buckets: str | BucketStructure = "hbs",
    model: CostModel = DEFAULT_COST_MODEL,
) -> tuple[np.ndarray, CorenessResult]:
    """Trussness of every edge via bucketed frontier peeling.

    Args:
        graph: Input graph.
        buckets: Bucketing strategy name ("1", "16", "hbs", "adaptive")
            or an instance — the same choices the k-core framework takes.
        model: Simulated-machine cost model.

    Returns:
        ``(edges, result)`` — the ``(m, 2)`` edge list and a
        :class:`CorenessResult` whose ``coreness`` array holds the
        trussness *minus 2* (the peeling key, i.e. triangle support at
        removal); add 2 for the conventional trussness.
    """
    runtime = SimRuntime(model)
    edges, index = _edge_table(graph)
    m = edges.shape[0]
    _, support = triangle_support(graph)
    support = support.astype(np.int64)
    peeled = np.zeros(m, dtype=bool)
    key_at_removal = np.zeros(m, dtype=np.int64)
    if m:
        runtime.parallel_for(
            model.edge_op, count=int(graph.m), barriers=1,
            tag="support_init",
        )

    adjacency = [set(graph.neighbors(v).tolist()) for v in range(graph.n)]
    structure = make_buckets(buckets)
    structure.build(_EdgeGraphShim(m, support), support, peeled, runtime)

    max_key = 0
    while True:
        step = structure.next_round()
        if step is None:
            break
        k, frontier = step
        runtime.begin_round()
        max_key = max(max_key, k)
        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            key_at_removal[frontier] = max_key
            peeled[frontier] = True
            # Remove the frontier edges one by one (a legal linearization
            # of the concurrent removal): each removal destroys its
            # remaining triangles exactly once, decrementing the two
            # surviving edges of each.
            targets: list[int] = []
            work = 0.0
            for e in frontier:
                u, v = (int(x) for x in edges[e])
                work += model.vertex_op
                adjacency[u].discard(v)
                adjacency[v].discard(u)
                for w in adjacency[u] & adjacency[v]:
                    for a, b in ((u, w), (v, w)):
                        pair = (a, b) if a < b else (b, a)
                        other = index[pair]
                        if not peeled[other]:
                            targets.append(other)
                            work += model.edge_op
            if targets:
                arr = np.asarray(targets, dtype=np.int64)
                outcome = batch_decrement(support, arr, k, floor=0)
                crossed = outcome.crossed
                survivors = (outcome.new > k) & (~peeled[outcome.touched])
                runtime.parallel_update(
                    np.array([max(work, 1.0)]), outcome.counts, barriers=1,
                    tag="truss_peel",
                )
                structure.on_decrements(
                    outcome.touched[survivors], outcome.old[survivors]
                )
            else:
                crossed = np.zeros(0, dtype=np.int64)
                runtime.parallel_for(
                    np.array([max(work, 1.0)]), barriers=1,
                    tag="truss_peel",
                )
            frontier = crossed[~peeled[crossed]]
        structure.round_finished(k)

    result = CorenessResult(
        coreness=key_at_removal,
        metrics=runtime.metrics,
        algorithm=f"truss-{getattr(structure, 'name', buckets)}",
        model=model,
    )
    return edges, result


def trussness_bucketed(
    graph: CSRGraph,
    buckets: str | BucketStructure = "hbs",
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: ``(edges, trussness)`` with conventional trussness."""
    edges, result = truss_decomposition_bucketed(graph, buckets=buckets)
    return edges, result.coreness + 2
