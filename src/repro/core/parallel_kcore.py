"""The flagship algorithm: online peel + sampling + VGC + adaptive HBS.

:class:`ParallelKCore` is the public face of the paper's contribution.  Its
constructor flags map one-to-one onto the three techniques the evaluation
ablates (Table 3 / Fig. 13):

* ``sampling`` — contention reduction on high-degree vertices (Sec. 4.1);
* ``vgc`` — local search amortizing subround scheduling (Sec. 4.2);
* ``buckets`` — "1" (plain), "16" (Julienne-style), "hbs", or "adaptive"
  (the final design of Sec. 5.3).

>>> from repro import ParallelKCore, generators
>>> graph = generators.grid_2d(64, 64)
>>> result = ParallelKCore().decompose(graph)
>>> int(result.kmax)
2
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.framework import FrameworkConfig, decompose
from repro.core.result import CorenessResult
from repro.core.sampling import SamplingConfig
from repro.core.subgraph import SubgraphResult, max_kcore_subgraph
from repro.core.vgc import DEFAULT_QUEUE_SIZE
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class ParallelKCore:
    """Configured k-core solver.  Immutable; safe to reuse across graphs.

    Attributes:
        sampling: Enable the sampling scheme (Sec. 4.1).
        vgc: Enable vertical granularity control (Sec. 4.2).
        buckets: Bucket strategy: "1", "16", "hbs" or "adaptive".
        queue_size: VGC local-queue budget.
        sampling_config: Sampling parameters (r, threshold, mu, seed).
        model: Simulated-machine cost model.
    """

    sampling: bool = True
    vgc: bool = True
    buckets: str = "adaptive"
    queue_size: int = DEFAULT_QUEUE_SIZE
    sampling_config: SamplingConfig = field(default_factory=SamplingConfig)
    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def config(self) -> FrameworkConfig:
        """The framework configuration equivalent to this solver."""
        return FrameworkConfig(
            peel="online",
            buckets=self.buckets,
            sampling=self.sampling,
            vgc=self.vgc,
            vgc_queue_size=self.queue_size,
            sampling_config=self.sampling_config,
            name=self.label(),
        )

    def label(self) -> str:
        """Variant name in the style of the paper's Table 3 columns."""
        techniques = []
        if self.vgc:
            techniques.append("VGC")
        if self.sampling:
            techniques.append("Sample")
        if self.buckets in ("hbs", "adaptive"):
            techniques.append("HBS")
        if len(techniques) == 3:
            return "All"
        if not techniques:
            return "Plain"
        return "+".join(techniques)

    # ------------------------------------------------------------------
    def decompose(
        self, graph: CSRGraph, tracer=None, registry=None
    ) -> CorenessResult:
        """Coreness of every vertex of ``graph``.

        ``tracer`` optionally attaches a :class:`repro.trace.Tracer`
        and ``registry`` a :class:`repro.obs.MetricsRegistry`; both are
        observational only (see docs/OBSERVABILITY.md).
        """
        return decompose(
            graph,
            self.config(),
            model=self.model,
            tracer=tracer,
            registry=registry,
        )

    def coreness(self, graph: CSRGraph) -> np.ndarray:
        """Convenience: just the coreness array."""
        return self.decompose(graph).coreness

    def core_subgraph(self, graph: CSRGraph, k: int) -> SubgraphResult:
        """Maximal subgraph of minimum degree ``k`` (Appendix B)."""
        return max_kcore_subgraph(
            graph,
            k,
            sampling=self.sampling,
            vgc=self.vgc,
            queue_size=self.queue_size,
            sampling_config=self.sampling_config if self.sampling else None,
            model=self.model,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def plain() -> "ParallelKCore":
        """The ablation baseline: no sampling, no VGC, single bucket."""
        return ParallelKCore(sampling=False, vgc=False, buckets="1")

    @staticmethod
    def variants(model: CostModel = DEFAULT_COST_MODEL) -> dict[str, "ParallelKCore"]:
        """The eight technique combinations of Table 3 / Fig. 13.

        Keys follow the paper's column names: Plain, VGC, Sample, HBS,
        VGC+Sample, VGC+HBS, Sample+HBS, All.
        """
        combos = {}
        for vgc in (False, True):
            for sampling in (False, True):
                for hbs in (False, True):
                    solver = ParallelKCore(
                        sampling=sampling,
                        vgc=vgc,
                        buckets="adaptive" if hbs else "1",
                        model=model,
                    )
                    combos[solver.label()] = solver
        return combos


def kcore(graph: CSRGraph) -> np.ndarray:
    """One-call API: coreness of every vertex with the default solver."""
    return ParallelKCore().coreness(graph)
