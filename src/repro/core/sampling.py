"""Sampling scheme for contention reduction (paper Sec. 4.1, Algs. 4 & 5).

High-degree vertices suffer heavy contention in the online peel: every
peeled neighbor issues an ``atomic_dec`` on the same induced-degree counter.
The sampling scheme puts such a vertex ``v`` into *sample mode*: instead of
decrementing ``dtilde[v]``, each would-be decrement flips a coin with
``v``'s *sample rate* and, on success, atomically increments a small sample
counter.  With rate ``mu / ((1 - r) * dtilde[v])`` the counter is expected
to reach ``mu`` exactly when the true induced degree has dropped to the
fraction ``r`` of its value at sampler setup, at which point ``v`` is
*resampled*: its true induced degree is recounted from scratch and a fresh
sampler (or none) installed.  Contention on the counter is only
``O(mu / (1 - r)) = O(log n)`` instead of ``O(d(v))``.

Correctness is probabilistic: a *validation* pass at the start of every
round checks, for each vertex still in sample mode, that its estimated
degree remains safely above the current ``k`` (Alg. 5's VALIDATE); failures
are resampled immediately.  Theorem 4.2 bounds the error probability by
``n^{-c}`` for ``mu = 4(c+2) ln n``.  Because the algorithm must be Las
Vegas rather than Monte Carlo (Sec. 4.1.4), every resample additionally
performs the retrospective check described there; a detected error raises
:class:`~repro.errors.SamplingRestartError`, which the driver catches to
restart with doubled ``mu`` (never observed in practice, exactly as the
paper reports — the test suite forces it via injection).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingRestartError
from repro.graphs.csr import CSRGraph
from repro.runtime.atomics import batch_increment_clamped
from repro.runtime.simulator import SimRuntime

#: Resample when the induced degree is expected to have dropped to this
#: fraction of its value at sampler setup (paper uses r = 10%).
DEFAULT_RATE_R = 0.10

#: Minimum degree for entering sample mode.  Must exceed ``mu / (1 - r)`` so
#: sample rates stay at most 1; :func:`default_mu` keeps this consistent.
DEFAULT_THRESHOLD = 128

#: The ``c`` of ``mu = 4(c+2) ln n`` (Thm. 4.2); c = 1 gives whp correctness.
DEFAULT_C = 1.0


def default_mu(n: int, c: float = DEFAULT_C) -> int:
    """The paper's sample-count target ``mu = 4(c+2) ln n``."""
    return max(8, math.ceil(4.0 * (c + 2.0) * math.log(max(n, 2))))


@dataclass
class SamplingConfig:
    """Tunable parameters of the sampling scheme."""

    r: float = DEFAULT_RATE_R
    threshold: int = DEFAULT_THRESHOLD
    c: float = DEFAULT_C
    mu: int | None = None  # derived from n when None
    seed: int = 0x5EED

    def resolve_mu(self, n: int) -> int:
        """The effective ``mu`` for a graph with ``n`` vertices."""
        if self.mu is not None:
            return self.mu
        return default_mu(n, self.c)


class SamplingState:
    """Per-run sampler state: one (mode, rate, cnt) record per vertex.

    The struct-of-arrays layout replaces the paper's per-vertex ``sampler``
    struct; all bulk operations are vectorized.
    """

    def __init__(
        self,
        graph: CSRGraph,
        dtilde: np.ndarray,
        peeled: np.ndarray,
        runtime: SimRuntime,
        config: SamplingConfig | None = None,
        mu_boost: int = 1,
    ) -> None:
        self.graph = graph
        self.dtilde = dtilde
        self.peeled = peeled
        self.runtime = runtime
        self.config = config if config is not None else SamplingConfig()
        self.mu = self.config.resolve_mu(graph.n) * mu_boost
        self.r = self.config.r
        # Keep rates <= 1: sample mode only makes sense when one coin flip
        # per decrement suffices.
        self.threshold = max(
            self.config.threshold, math.ceil(self.mu / (1.0 - self.r)) + 1
        )
        self.rng = np.random.default_rng(self.config.seed + mu_boost)

        n = graph.n
        self.mode = np.zeros(n, dtype=bool)
        self.rate = np.zeros(n, dtype=np.float64)
        self.cnt = np.zeros(n, dtype=np.int64)
        #: Read access to the coreness array for the Las-Vegas check.
        self._coreness_view: np.ndarray | None = None
        self._skip_validation = False  # failure-injection hook for tests

    # ------------------------------------------------------------------
    # SetSampler (Alg. 5 lines 12-17)
    # ------------------------------------------------------------------
    def set_sampler_bulk(self, vertices: np.ndarray, k: int) -> None:
        """Install or clear samplers for ``vertices`` given round ``k``.

        A vertex enters sample mode iff its induced degree is large enough
        that even after dropping to the fraction ``r`` it stays above both
        ``k`` and the degree threshold.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return
        degrees = self.dtilde[vertices]
        eligible = (degrees * self.r > k) & (degrees > self.threshold)
        self.mode[vertices] = eligible
        chosen = vertices[eligible]
        if chosen.size:
            self.rate[chosen] = self.mu / (
                (1.0 - self.r) * self.dtilde[chosen]
            )
            self.cnt[chosen] = 0
            self.runtime.metrics.sampled_vertices += int(chosen.size)

    def initialize(self) -> None:
        """SetSampler(v, 0) for every vertex (Alg. 4 line 2)."""
        n = self.graph.n
        if n == 0:
            return
        self.runtime.parallel_for(
            self.runtime.model.scan_op, count=n, barriers=1,
            tag="init_samplers",
        )
        self.set_sampler_bulk(np.arange(n, dtype=np.int64), 0)

    # ------------------------------------------------------------------
    # VALIDATE (Alg. 5 line 22) — vectorized over all sampled vertices
    # ------------------------------------------------------------------
    def validate_failures(self, k: int) -> np.ndarray:
        """Sampled vertices whose VALIDATE check fails at round ``k``.

        VALIDATE passes iff the degree headroom ``dtilde[v] * r > k`` holds
        *and* the collected samples stay below a quarter of the expectation
        under the hypothesis "the true degree already dropped to k"
        (Lem. 4.1 guarantees at least that many samples whp if it had).
        """
        sampled = np.nonzero(self.mode)[0]
        if sampled.size == 0:
            return sampled
        self.runtime.parallel_for(
            self.runtime.model.scan_op,
            count=int(sampled.size),
            barriers=1,
            tag="validate",
        )
        if self._skip_validation:
            return np.zeros(0, dtype=np.int64)
        degrees = self.dtilde[sampled]
        headroom_ok = degrees * self.r > k
        sample_ok = self.cnt[sampled] < (
            self.rate[sampled] * (degrees - k) / 4.0
        )
        failures = sampled[~(headroom_ok & sample_ok)]
        if self.runtime.tracer is not None:
            self.runtime.tracer.instant(
                "validate",
                sampled=int(sampled.size),
                failures=int(failures.size),
            )
        return failures

    # ------------------------------------------------------------------
    # RESAMPLE (Alg. 5 lines 18-21)
    # ------------------------------------------------------------------
    def resample_bulk(
        self, vertices: np.ndarray, k: int, assume_unique: bool = False
    ) -> np.ndarray:
        """Recount induced degrees and reinstall samplers.

        Returns the vertices whose exact induced degree turned out to be at
        most ``k``; the caller adds them to the running frontier (they are
        peeled in the current round with coreness ``k``).

        ``assume_unique`` skips the canonicalization sort when the caller
        already holds ``vertices`` sorted and duplicate-free (the result
        is a sorted subset either way).

        Raises:
            SamplingRestartError: the Las-Vegas retrospective check detected
                that a vertex's degree had dropped below ``k`` *before* the
                current round — its true coreness is smaller than ``k`` and
                the run must restart with stronger parameters (Sec. 4.1.4).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if not assume_unique:
            vertices = np.unique(vertices)
        if vertices.size == 0:
            return vertices
        vertices = vertices[self.mode[vertices]]
        if vertices.size == 0:
            return vertices
        self.mode[vertices] = False
        self.runtime.metrics.resamples += int(vertices.size)

        # Exact recount: number of unpeeled neighbors (Alg. 5 line 19).
        neighbors = self.graph.gather_neighbors(vertices)
        lengths = (
            self.graph.indptr[vertices + 1] - self.graph.indptr[vertices]
        )
        alive = (~self.peeled[neighbors]).astype(np.int64)
        if alive.size:
            bounds = np.concatenate(([0], np.cumsum(lengths)))
            # reduceat needs indices < len(alive); zero-length segments are
            # clamped and overwritten below.
            starts = np.minimum(bounds[:-1], alive.size - 1)
            exact = np.add.reduceat(alive, starts)
            exact[lengths == 0] = 0
        else:
            exact = np.zeros(vertices.size, dtype=np.int64)
        # The per-vertex recount is itself a parallel reduce over N(v)
        # (logarithmic span), so the step span is not the largest degree.
        recount_work = float(lengths.sum()) * self.runtime.model.edge_op
        max_len = float(lengths.max()) if lengths.size else 1.0
        self.runtime.metrics.record_parallel(
            work=max(recount_work, 1.0),
            span=max(np.log2(max(max_len, 2.0)) * 4.0, 1.0),
            barriers=1,
            tag="resample_recount",
        )

        low = exact <= k
        if np.any(exact < k):
            # A strictly-lower recount is only an error if the degree was
            # already below k in an earlier round; vertices peeled in the
            # current round (coreness == k) still count toward "was >= k
            # at the start of round k" (Sec. 4.1.4).
            suspects = vertices[exact < k]
            if self._had_error_before_round(suspects, k):
                raise SamplingRestartError(
                    f"sampled vertex missed its peeling round before k={k}"
                )
        self.dtilde[vertices] = exact
        self.set_sampler_bulk(vertices[~low], k)
        if self.runtime.tracer is not None:
            self.runtime.tracer.instant(
                "resample",
                count=int(vertices.size),
                low=int(np.count_nonzero(low)),
            )
        return vertices[low]

    def _had_error_before_round(
        self, vertices: np.ndarray, k: int
    ) -> bool:
        """Retrospective check of Sec. 4.1.4.

        For each suspect, count the neighbors that are either still alive
        or were peeled in the current round ``k`` (their removal happened
        inside this round, which is legitimate).  If that count is below
        ``k``, the degree had already dropped before round ``k`` started —
        a genuine sampling error.
        """
        assert self._coreness_view is not None, (
            "framework must call attach_coreness before peeling"
        )
        coreness_now = self._coreness_view
        neighbors = self.graph.gather_neighbors(vertices)
        lengths = (
            self.graph.indptr[vertices + 1] - self.graph.indptr[vertices]
        )
        ok = (
            (~self.peeled[neighbors]) | (coreness_now[neighbors] >= k)
        ).astype(np.int64)
        if ok.size:
            bounds = np.concatenate(([0], np.cumsum(lengths)))
            starts = np.minimum(bounds[:-1], ok.size - 1)
            counts = np.add.reduceat(ok, starts)
            counts[lengths == 0] = 0
        else:
            counts = np.zeros(vertices.size, dtype=np.int64)
        return bool(np.any(counts < k))

    def attach_coreness(self, coreness: np.ndarray) -> None:
        """Give the Las-Vegas check read access to the coreness array."""
        self._coreness_view = coreness

    # ------------------------------------------------------------------
    # Peel-time interface
    # ------------------------------------------------------------------
    def split_targets(
        self, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition decrement targets into (direct, sampled) streams."""
        if targets.size == 0:
            return targets, targets
        sampled_mask = self.mode[targets]
        return targets[~sampled_mask], targets[sampled_mask]

    def draw_hits(self, sampled_targets: np.ndarray) -> np.ndarray:
        """Coin-flip each sampled decrement; return the successful targets.

        Work: one RNG draw per target (``sample_flip_op``); only successes
        turn into atomic increments, which is where the contention reduction
        comes from.
        """
        if sampled_targets.size == 0:
            return sampled_targets
        self.runtime.parallel_for(
            self.runtime.model.sample_flip_op,
            count=int(sampled_targets.size),
            barriers=0,
            tag="sample_flips",
        )
        flips = self.rng.random(sampled_targets.size)
        hits = sampled_targets[flips < self.rate[sampled_targets]]
        if self.runtime.tracer is not None:
            self.runtime.tracer.instant(
                "sample_draw",
                drawn=int(sampled_targets.size),
                hits=int(hits.size),
            )
        return hits

    def apply_hits(self, hits: np.ndarray) -> np.ndarray:
        """Atomically increment sample counters; return vertices reaching mu.

        The contention the runtime records here is per-counter hit counts —
        ``O(mu / (1-r))`` in expectation, the paper's Sec. 4.1.5 bound.
        """
        if hits.size == 0:
            return hits
        counts, reached = batch_increment_clamped(self.cnt, hits, self.mu)
        self.runtime.parallel_update(
            0.0, counts, count=int(hits.size), barriers=0,
            tag="sample_increments",
        )
        if reached.size:
            if self.runtime.tracer is not None:
                self.runtime.tracer.instant(
                    "sample_saturated", count=int(reached.size)
                )
        return reached

    def exit_sample_mode(self, vertices: np.ndarray) -> None:
        """Force vertices out of sample mode (when they get peeled)."""
        if vertices.size:
            self.mode[vertices] = False
