"""Hierarchical core decomposition (core hierarchy tree).

The k-cores of a graph nest: each connected component of the (k+1)-core
lies inside one component of the k-core.  The resulting laminar family is
the *core hierarchy* (Chu et al. 2022, cited by the paper's Sec. 7): a
forest whose nodes are (k, component) pairs, widely used for hierarchical
community detection and graph visualization.

``core_hierarchy`` builds the forest bottom-up from a coreness array with
one union-find sweep per level — ``O(m alpha(n))`` overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.csr import CSRGraph


@dataclass
class CoreComponent:
    """One node of the core hierarchy.

    Attributes:
        k: The highest core level at which this vertex set forms one
            connected component of the k-core.
        vertices: Sorted member vertex ids (members of the k-core
            component, including all deeper nested vertices).
        children: Components of the (k'+)-cores nested directly inside.
        parent: The enclosing component, or None for roots.
    """

    k: int
    vertices: np.ndarray
    children: list["CoreComponent"] = field(default_factory=list)
    parent: "CoreComponent | None" = None

    @property
    def size(self) -> int:
        return int(self.vertices.size)

    def depth(self) -> int:
        """Height of the subtree rooted here."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoreComponent(k={self.k}, size={self.size})"


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = int(self.parent[root])
        while self.parent[x] != root:
            self.parent[x], x = root, int(self.parent[x])
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def core_hierarchy(
    graph: CSRGraph, coreness: np.ndarray | None = None
) -> list[CoreComponent]:
    """Build the core hierarchy forest.

    Args:
        graph: Input graph.
        coreness: Precomputed coreness (computed if omitted).

    Returns:
        The roots (components of the 0-core, i.e. one per connected
        component of the graph — isolated vertices give k=0 singletons).
    """
    if coreness is None:
        from repro.core.verify import reference_coreness

        coreness = reference_coreness(graph)
    coreness = np.asarray(coreness, dtype=np.int64)
    if coreness.shape != (graph.n,):
        raise ValueError("coreness must have one entry per vertex")
    if graph.n == 0:
        return []

    kmax = int(coreness.max())
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    dst = graph.indices
    edge_level = np.minimum(coreness[src], coreness[dst])

    uf = _UnionFind(graph.n)
    # component node currently representing each vertex (deepest first)
    current: dict[int, CoreComponent] = {}
    roots: list[CoreComponent] = []

    # Sweep levels top-down: at level k, activate vertices with coreness
    # == k and edges with min-endpoint-coreness == k, then each union-find
    # root is one component of the k-core.
    for k in range(kmax, -1, -1):
        for u, v in zip(
            src[edge_level == k], dst[edge_level == k]
        ):
            uf.union(int(u), int(v))
        active = np.nonzero(coreness >= k)[0]
        if active.size == 0:
            continue
        groups: dict[int, list[int]] = {}
        for v in active:
            groups.setdefault(uf.find(int(v)), []).append(int(v))
        next_current: dict[int, CoreComponent] = {}
        for root, members in groups.items():
            members_arr = np.asarray(sorted(members), dtype=np.int64)
            # Children: previous-level components now merged under root.
            children = []
            seen_ids = set()
            for v in members:
                child = current.get(v)
                if child is not None and id(child) not in seen_ids:
                    seen_ids.add(id(child))
                    children.append(child)
            if (
                len(children) == 1
                and children[0].size == len(members)
            ):
                # Same component as one level deeper: keep the existing
                # node (labeled with the highest k at which this vertex
                # set is a core component) instead of stacking duplicates.
                node = children[0]
            else:
                node = CoreComponent(k=k, vertices=members_arr)
                for child in children:
                    child.parent = node
                    node.children.append(child)
            for v in members:
                next_current[v] = node
        current = next_current

    seen = set()
    for node in current.values():
        if id(node) not in seen:
            seen.add(id(node))
            roots.append(node)
    return roots


def hierarchy_levels(roots: list[CoreComponent]) -> dict[int, int]:
    """Number of components per core level (flattened view for tests)."""
    counts: dict[int, int] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        counts[node.k] = counts.get(node.k, 0) + 1
        stack.extend(node.children)
    return counts
