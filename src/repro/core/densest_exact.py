"""Exact densest subgraph via Goldberg's flow method.

The peeling 2-approximation in :mod:`repro.core.applications` returns a
subgraph of density at least half the optimum; this module computes the
*exact* optimum (Goldberg 1984) so tests can certify the approximation
bound empirically:

* binary-search the guess ``g`` over densities (O(n^2) distinct values,
  so ``log`` iterations with the classic ``1/(n(n-1))`` resolution);
* for each guess build the flow network — source to every vertex with
  capacity ``deg(v)``, each undirected edge as a capacity-2 gadget
  between its endpoints, every vertex to sink with ``2g`` — and check
  whether the min cut leaves a non-empty source side (density > g).

Max-flow is a from-scratch Dinic's algorithm (BFS level graph + blocking
DFS), sufficient for the test/benchmark scale.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.transform import all_edges


class Dinic:
    """Dinic's max-flow on an adjacency-list residual network."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.to: list[int] = []
        self.cap: list[float] = []
        self.head: list[list[int]] = [[] for _ in range(n)]

    def add_edge(self, u: int, v: int, capacity: float) -> None:
        """Add a directed edge with the given capacity (plus residual)."""
        self.head[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(float(capacity))
        self.head[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0.0)

    def _bfs(self, s: int, t: int) -> np.ndarray | None:
        level = np.full(self.n, -1, dtype=np.int64)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for idx in self.head[u]:
                v = self.to[idx]
                if self.cap[idx] > 1e-12 and level[v] == -1:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[t] != -1 else None

    def _dfs(self, u, t, pushed, level, it) -> float:
        if u == t:
            return pushed
        while it[u] < len(self.head[u]):
            idx = self.head[u][it[u]]
            v = self.to[idx]
            if self.cap[idx] > 1e-12 and level[v] == level[u] + 1:
                flow = self._dfs(
                    v, t, min(pushed, self.cap[idx]), level, it
                )
                if flow > 1e-12:
                    self.cap[idx] -= flow
                    self.cap[idx ^ 1] += flow
                    return flow
            it[u] += 1
        return 0.0

    def max_flow(self, s: int, t: int) -> float:
        """Total max flow from s to t."""
        total = 0.0
        while True:
            level = self._bfs(s, t)
            if level is None:
                return total
            it = [0] * self.n
            while True:
                flow = self._dfs(s, t, float("inf"), level, it)
                if flow <= 1e-12:
                    break
                total += flow

    def min_cut_source_side(self, s: int) -> np.ndarray:
        """Vertices reachable from s in the residual graph (after flow)."""
        seen = np.zeros(self.n, dtype=bool)
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for idx in self.head[u]:
                v = self.to[idx]
                if self.cap[idx] > 1e-12 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return seen


def _denser_than(graph: CSRGraph, guess: float) -> np.ndarray | None:
    """Vertices of a subgraph with density > guess, or None."""
    n = graph.n
    edges = all_edges(graph)
    m = edges.shape[0]
    source, sink = n, n + 1
    net = Dinic(n + 2)
    degrees = graph.degrees
    for v in range(n):
        if degrees[v]:
            net.add_edge(source, v, float(degrees[v]))
        net.add_edge(v, sink, 2.0 * guess)
    for u, v in edges:
        net.add_edge(int(u), int(v), 1.0)
        net.add_edge(int(v), int(u), 1.0)
    flow = net.max_flow(source, sink)
    if flow >= 2.0 * m - 1e-7:
        return None  # cut saturates all degree arcs: nothing denser
    side = net.min_cut_source_side(source)
    members = np.nonzero(side[:n])[0]
    return members if members.size else None


def exact_densest_subgraph(
    graph: CSRGraph,
) -> tuple[np.ndarray, float]:
    """The exact maximum-density subgraph (Goldberg's method).

    Returns ``(vertices, density)`` with density ``|E(S)| / |S|``;
    the empty graph yields ``([], 0.0)``.
    """
    if graph.num_edges == 0:
        return np.zeros(0, dtype=np.int64), 0.0
    n = graph.n
    lo, hi = 0.0, float(graph.num_edges)
    best = np.arange(n, dtype=np.int64)
    # Densities are rationals with denominator <= n; a gap below
    # 1/(n(n-1)) pins the exact optimum.
    resolution = 1.0 / (n * (n - 1))
    while hi - lo >= resolution:
        guess = (lo + hi) / 2.0
        members = _denser_than(graph, guess)
        if members is None:
            hi = guess
        else:
            best = members
            lo = guess
    sub = graph.induced_subgraph(best)
    return np.sort(best), sub.num_edges / max(sub.n, 1)
