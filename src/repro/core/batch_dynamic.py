"""Batch-dynamic k-core maintenance (the serving-side update engine).

Liu, Shun and Zablotchi ("Parallel k-Core Decomposition with Batched
Updates and Asynchronous Reads", PPoPP 2024; PAPERS.md) make the case
that per-edge dynamic maintenance cannot keep up with real update
traffic: the batched formulation is the one that scales.  This module
replaces the per-edge traversal of :mod:`repro.core.dynamic` with a
**batched update engine**:

* :meth:`BatchDynamicKCore.apply_batch` accepts a whole batch of edge
  insertions *and* deletions, applies them structurally in one flat
  CSR rebuild, and repairs coreness with frontier-synchronous rounds —
  one flat kernel invocation per round — instead of one Python BFS per
  edge;
* **deletions** cascade top-down: coreness values are upper bounds
  after edge removal, so dirty vertices whose support (neighbors with
  ``kappa >= kappa(v)``) falls short drop one level per round until the
  labeling is again a fixed point (exactly the new coreness);
* **insertions** peel bottom-up: the union of affected *subcores*
  (vertices at level ``r`` reachable from a batch endpoint through
  level-``r`` vertices) is re-peeled at threshold ``r`` with the
  sanctioned batch atomics (:func:`repro.runtime.atomics.batch_decrement`);
  survivors rise one level, risers seed the next round, and the
  fixpoint is the exact coreness of the updated graph.

Both cascades maintain the invariant that the label array stays on the
correct side of the true coreness (above for deletions, below for
insertions), so the committed result after a batch is the *exact*
decomposition of the final graph — independent of the order of updates
inside the batch.  The differential update oracle
(:mod:`repro.regress.update_oracle`) enforces bit-equality against a
full recompute after every batch.

``REPRO_KERNELS`` selects the neighbor-expansion kernel exactly as in
:mod:`repro.perf.kernels`: ``reference`` runs the original per-edge
Python gather loop, every other mode (``vectorized``, ``native``,
``auto``) the flat NumPy gather.  The compiled C kernel applies to the
VGC task loop only, so ``native`` resolves to the flat NumPy path here;
all modes are bit-exact — same coreness, same simulated-runtime ledger.

Work is charged to the simulated runtime through the sanctioned APIs
(``parallel_for`` / ``parallel_update`` with contention counts from the
batch atomics), so batch maintenance has a work/span/burdened-span
story on the same ledger as the static engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.verify import reference_coreness
from repro.graphs.csr import CSRGraph
from repro.obs.registry import SIZE_BOUNDARIES
from repro.perf import REFERENCE, kernel_mode
from repro.primitives.bitops import sorted_member_mask
from repro.runtime.atomics import batch_decrement
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime

_EMPTY = np.zeros(0, dtype=np.int64)


# ----------------------------------------------------------------------
# Neighbor-stream kernels (the REPRO_KERNELS switch point)
# ----------------------------------------------------------------------
def neighbor_stream_vectorized(
    graph: CSRGraph, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor lists of ``frontier`` (flat NumPy kernel)."""
    return graph.gather_neighbors(frontier)


def neighbor_stream_reference(
    graph: CSRGraph, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor lists of ``frontier`` (per-edge Python loop).

    The equivalence oracle for :func:`neighbor_stream_vectorized`: same
    CSR traversal order, one Python iteration per edge.
    """
    indptr, indices = graph.indptr, graph.indices
    out: list[int] = []
    for v in frontier.tolist():
        for u in indices[indptr[v] : indptr[v + 1]].tolist():
            out.append(u)
    return np.asarray(out, dtype=np.int64)


def resolve_stream_kernel(regime: str | None = None):
    """The neighbor-stream kernel for a (resolved) ``REPRO_KERNELS`` mode."""
    if regime is None:
        regime = kernel_mode()
    if regime == REFERENCE:
        return neighbor_stream_reference
    return neighbor_stream_vectorized


@dataclass
class BatchResult:
    """Outcome of one committed update batch.

    Attributes:
        epoch: Epoch number committed by this batch (first batch is 1).
        raised: Vertices whose coreness increased (sorted, unique).
        lowered: Vertices whose coreness decreased (sorted, unique).
        applied_insertions: Edges actually inserted (absent before).
        applied_deletions: Edges actually deleted (present before).
        noop_insertions: Requested insertions that already existed.
        noop_deletions: Requested deletions of absent edges.
        rounds: Frontier-synchronous repair rounds this batch ran.
    """

    epoch: int
    raised: np.ndarray = field(default_factory=lambda: _EMPTY)
    lowered: np.ndarray = field(default_factory=lambda: _EMPTY)
    applied_insertions: int = 0
    applied_deletions: int = 0
    noop_insertions: int = 0
    noop_deletions: int = 0
    rounds: int = 0

    @property
    def changed(self) -> np.ndarray:
        """Vertices whose coreness changed (sorted, unique)."""
        if self.raised.size == 0:
            return self.lowered
        if self.lowered.size == 0:
            return self.raised
        return np.unique(np.concatenate([self.raised, self.lowered]))


class BatchDynamicKCore:
    """Exact coreness under batched edge insertions and deletions.

    The graph lives as a sorted flat arc-key array (``u * n + v`` for
    both directions) from which the CSR view is rebuilt once per batch
    phase — every repair round then runs on plain CSR with the flat
    kernels.  Reads (:attr:`coreness`, :meth:`core_number`,
    :meth:`snapshot`) always observe the last *committed* epoch; a batch
    commits atomically when :meth:`apply_batch` returns.

    Batch semantics (documented, tested in tests/test_batch_dynamic.py):

    * deletions are applied before insertions, so an edge both deleted
      and inserted in one batch ends up **present**;
    * duplicate updates inside a batch coalesce; inserting a present
      edge or deleting an absent one is a no-op (reported in the
      :class:`BatchResult` counters);
    * self-loops are rejected with :class:`ValueError`, out-of-range
      endpoints with :class:`IndexError`;
    * the committed coreness depends only on the *set* of updates, never
      on their order inside the batch.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: CostModel | None = None,
        runtime: SimRuntime | None = None,
        registry=None,
    ) -> None:
        self.n = graph.n
        self.runtime = (
            runtime
            if runtime is not None
            else SimRuntime(
                model if model is not None else DEFAULT_COST_MODEL,
                registry=registry,
            )
        )
        src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
        #: Sorted arc keys (both directions of every undirected edge).
        self._keys = src * np.int64(max(self.n, 1)) + graph.indices
        self._graph = graph
        self.coreness = reference_coreness(graph).copy()
        #: Committed epoch counter; one increment per apply_batch.
        self.epoch = 0
        #: Effective (non-no-op) single-edge updates applied so far.
        self.updates = 0
        #: Batches committed so far.
        self.batches = 0
        #: Candidate vertices examined by repair rounds (work telemetry).
        self.touched_vertices = 0

    # ------------------------------------------------------------------
    # Queries (always the last committed epoch)
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """The current committed graph (immutable CSR; do not mutate)."""
        return self._graph

    def core_number(self, v: int) -> int:
        """Committed coreness of ``v``."""
        return int(self.coreness[v])

    def degree(self, v: int) -> int:
        """Current degree of ``v``."""
        return self._graph.degree(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) is present."""
        if u == v or not (0 <= u < self.n and 0 <= v < self.n):
            return False
        key = np.asarray(
            [np.int64(u) * self.n + np.int64(v)], dtype=np.int64
        )
        return bool(sorted_member_mask(key, self._keys)[0])

    @property
    def metrics(self):
        """The simulated-runtime ledger of all update processing."""
        return self.runtime.metrics

    # ------------------------------------------------------------------
    # Single-edge convenience wrappers (batch of size one)
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> np.ndarray:
        """Insert one edge; returns the vertices whose coreness rose."""
        return self.apply_batch(insertions=[(u, v)]).raised

    def delete_edge(self, u: int, v: int) -> np.ndarray:
        """Delete one edge; returns the vertices whose coreness fell."""
        return self.apply_batch(deletions=[(u, v)]).lowered

    # ------------------------------------------------------------------
    # The batch entry point
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        insertions=(),
        deletions=(),
    ) -> BatchResult:
        """Apply one batch of updates; commit and return the outcome.

        ``insertions`` and ``deletions`` are iterables of vertex pairs
        (or ``(k, 2)`` arrays).  Deletions are applied first; see the
        class docstring for the full batch semantics.
        """
        ins = self._normalize(insertions)
        dels = self._normalize(deletions)
        runtime = self.runtime
        runtime.begin_round()
        rounds_before = runtime.metrics.subrounds
        stream = resolve_stream_kernel()

        lowered = _EMPTY
        raised = _EMPTY
        applied_del = noop_del = applied_ins = noop_ins = 0

        if dels.size:
            present = sorted_member_mask(dels, self._keys)
            eff = dels[present]
            applied_del = int(eff.size)
            noop_del = int(dels.size - eff.size)
            if eff.size:
                self._remove_arcs(eff)
                dirty = self._endpoints(eff)
                lowered = self._deletion_cascade(dirty, stream)

        if ins.size:
            present = sorted_member_mask(ins, self._keys)
            eff = ins[~present]
            applied_ins = int(eff.size)
            noop_ins = int(ins.size - eff.size)
            if eff.size:
                self._add_arcs(eff)
                seeds = self._endpoints(eff)
                raised = self._insertion_fixpoint(seeds, stream)

        self.epoch += 1
        self.batches += 1
        self.updates += applied_del + applied_ins
        result = BatchResult(
            epoch=self.epoch,
            raised=raised,
            lowered=lowered,
            applied_insertions=applied_ins,
            applied_deletions=applied_del,
            noop_insertions=noop_ins,
            noop_deletions=noop_del,
            rounds=int(runtime.metrics.subrounds - rounds_before),
        )
        if runtime.tracer is not None:
            runtime.tracer.instant(
                "batch_commit",
                epoch=result.epoch,
                applied_insertions=applied_ins,
                applied_deletions=applied_del,
                raised=int(raised.size),
                lowered=int(lowered.size),
                rounds=result.rounds,
            )
        registry = runtime.registry
        if registry is not None:
            registry.inc("dyn.batches")
            registry.set_gauge("dyn.epoch", float(self.epoch))
            if applied_ins:
                registry.inc("dyn.insertions.applied", applied_ins)
            if applied_del:
                registry.inc("dyn.deletions.applied", applied_del)
            if noop_ins or noop_del:
                registry.inc("dyn.updates.noop", noop_ins + noop_del)
            if raised.size:
                registry.inc("dyn.coreness.raised", int(raised.size))
            if lowered.size:
                registry.inc("dyn.coreness.lowered", int(lowered.size))
            registry.inc("dyn.repair_rounds", result.rounds)
            registry.observe(
                "dyn.batch_size",
                float(applied_ins + applied_del),
                boundaries=SIZE_BOUNDARIES,
            )
        return result

    # ------------------------------------------------------------------
    # Structural maintenance (arc keys + CSR rebuild)
    # ------------------------------------------------------------------
    def _normalize(self, pairs) -> np.ndarray:
        """Canonical sorted unique arc keys (``min * n + max``) of a batch."""
        arr = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray)
                         else pairs, dtype=np.int64)
        if arr.size == 0:
            return _EMPTY
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(
                f"update batch must have shape (k, 2), got {arr.shape}"
            )
        if arr.min() < 0 or arr.max() >= self.n:
            bad = arr[(arr.min(axis=1) < 0) | (arr.max(axis=1) >= self.n)]
            raise IndexError(
                f"edge ({int(bad[0, 0])}, {int(bad[0, 1])}) out of range "
                f"for n={self.n}"
            )
        if np.any(arr[:, 0] == arr[:, 1]):
            loop = arr[arr[:, 0] == arr[:, 1]][0]
            raise ValueError(
                f"self-loop ({loop[0]}, {loop[1]}) rejected: the graph "
                f"model is simple"
            )
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        return np.unique(lo * np.int64(self.n) + hi)

    def _endpoints(self, canonical_keys: np.ndarray) -> np.ndarray:
        """Sorted unique endpoints of canonical arc keys."""
        lo = canonical_keys // self.n
        hi = canonical_keys % self.n
        return np.unique(np.concatenate([lo, hi]))

    def _both_directions(self, canonical_keys: np.ndarray) -> np.ndarray:
        """Sorted arc keys of both directions of canonical edges."""
        lo = canonical_keys // self.n
        hi = canonical_keys % self.n
        n = np.int64(self.n)
        return np.sort(np.concatenate([lo * n + hi, hi * n + lo]))

    def _remove_arcs(self, canonical_keys: np.ndarray) -> None:
        drop = self._both_directions(canonical_keys)
        mask = sorted_member_mask(self._keys, drop)
        self._keys = self._keys[~mask]
        self._rebuild(extra=int(drop.size))

    def _add_arcs(self, canonical_keys: np.ndarray) -> None:
        add = self._both_directions(canonical_keys)
        merged = np.empty(self._keys.size + add.size, dtype=np.int64)
        merged[: self._keys.size] = self._keys
        merged[self._keys.size :] = add
        merged.sort(kind="stable")
        self._keys = merged
        self._rebuild(extra=int(add.size))

    def _rebuild(self, extra: int = 0) -> None:
        """Rebuild the CSR view from the arc keys; charge the flat pass."""
        n = self.n
        if n == 0:
            return
        src = self._keys // n
        dst = self._keys % n
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.bincount(src, minlength=n)
        np.cumsum(counts, out=indptr[1:])
        self._graph = CSRGraph(
            indptr, dst, name="batch-dynamic", validate=False
        )
        # One streaming pass over the arc array plus the update stream.
        self.runtime.parallel_for(
            self.runtime.model.scan_op,
            count=int(self._keys.size + extra),
            barriers=1,
            tag="dyn_rebuild",
        )

    # ------------------------------------------------------------------
    # Deletion cascade (labels are upper bounds; drop to the fixed point)
    # ------------------------------------------------------------------
    def _deletion_cascade(self, dirty: np.ndarray, stream) -> np.ndarray:
        """Exact repair after deletions; returns the lowered vertices.

        Invariant: ``coreness >= true coreness`` pointwise.  Each round
        recounts, for every dirty vertex, the neighbors still supporting
        its level (``kappa(x) >= kappa(v)``); vertices short of support
        drop one level and re-dirty themselves and their neighborhoods.
        At the fixed point the labeling is feasible from below as well,
        hence exact.
        """
        runtime = self.runtime
        model = runtime.model
        graph = self._graph
        lowered: list[np.ndarray] = []
        while dirty.size:
            runtime.begin_subround(int(dirty.size))
            lens = graph.indptr[dirty + 1] - graph.indptr[dirty]
            targets = stream(graph, dirty)
            seg = np.repeat(
                np.arange(dirty.size, dtype=np.int64), lens
            )
            supported = self.coreness[targets] >= self.coreness[dirty][seg]
            support = np.bincount(
                seg[supported], minlength=dirty.size
            )
            runtime.parallel_for(
                (model.vertex_op + model.edge_op * lens).astype(
                    np.float64
                ),
                barriers=model.online_barriers,
                tag="dyn_drop",
            )
            viol_idx = np.flatnonzero(
                (support < self.coreness[dirty])
                & (self.coreness[dirty] > 0)
            )
            if viol_idx.size == 0:
                break
            viol = dirty[viol_idx]
            # Per-vertex label writes: ``viol`` is a subset of the
            # unique ``dirty`` array, so each location is written once.
            self.coreness[viol] -= 1  # lint: disable=R004
            runtime.parallel_for(
                model.scan_op,
                count=int(viol.size),
                barriers=0,
                tag="dyn_relabel",
            )
            lowered.append(viol)
            # Next dirty frontier: the droppers (may drop again) plus
            # their neighborhoods (their support may have shrunk),
            # reusing this round's gathered stream.
            vmask = np.zeros(dirty.size, dtype=bool)
            vmask[viol_idx] = True
            spread = targets[vmask[seg]]
            dirty = np.unique(np.concatenate([viol, spread]))
            runtime.parallel_for(
                model.bag_insert_op,
                count=int(dirty.size),
                barriers=0,
                tag="frontier_bag",
            )
        if not lowered:
            return _EMPTY
        return np.unique(np.concatenate(lowered))

    # ------------------------------------------------------------------
    # Insertion fixpoint (labels are lower bounds; peel subcores upward)
    # ------------------------------------------------------------------
    def _insertion_fixpoint(
        self, seeds: np.ndarray, stream
    ) -> np.ndarray:
        """Exact repair after insertions; returns the raised vertices.

        Invariant: ``coreness <= true coreness`` pointwise, and the
        labeling stays *feasible* (every vertex has ``kappa(v)``
        neighbors at its level or above), so every one-level rise the
        peel grants is permanently correct.  Rounds iterate level groups
        in ascending order; risers seed the next round; the fixed point
        is the exact coreness.
        """
        raised: list[np.ndarray] = []
        while seeds.size:
            risers_round: list[np.ndarray] = []
            levels = np.unique(self.coreness[seeds])
            for r in levels.tolist():
                roots = seeds[self.coreness[seeds] == r]
                if roots.size == 0:
                    continue
                cand = self._subcore(roots, int(r), stream)
                if cand.size == 0:
                    continue
                self.touched_vertices += int(cand.size)
                risers = self._peel_level(cand, int(r), stream)
                if risers.size:
                    risers_round.append(risers)
            if not risers_round:
                break
            seeds = np.unique(np.concatenate(risers_round))
            raised.append(seeds)
        if not raised:
            return _EMPTY
        return np.unique(np.concatenate(raised))

    def _subcore(
        self, roots: np.ndarray, r: int, stream
    ) -> np.ndarray:
        """Union of level-``r`` subcores containing ``roots`` (sorted).

        Frontier-synchronous BFS through coreness-``r`` vertices — the
        insertion candidate set of the traversal algorithm, discovered
        with one flat kernel invocation per BFS round.
        """
        runtime = self.runtime
        model = runtime.model
        graph = self._graph
        visited = np.zeros(self.n, dtype=bool)
        frontier = roots[self.coreness[roots] == r]
        if frontier.size == 0:
            return _EMPTY
        visited[frontier] = True
        members = [frontier]
        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            lens = graph.indptr[frontier + 1] - graph.indptr[frontier]
            targets = stream(graph, frontier)
            runtime.parallel_for(
                (model.vertex_op + model.edge_op * lens).astype(
                    np.float64
                ),
                barriers=model.online_barriers,
                tag="dyn_subcore",
            )
            fresh = (self.coreness[targets] == r) & ~visited[targets]
            nxt = np.unique(targets[fresh])
            if nxt.size == 0:
                break
            visited[nxt] = True
            runtime.parallel_for(
                model.bag_insert_op,
                count=int(nxt.size),
                barriers=0,
                tag="frontier_bag",
            )
            members.append(nxt)
            frontier = nxt
        return np.sort(np.concatenate(members))

    def _peel_level(
        self, cand: np.ndarray, r: int, stream
    ) -> np.ndarray:
        """Peel candidate set ``cand`` at threshold ``r``; raise survivors.

        ``cd(w)`` counts the neighbors that could support ``w`` in an
        ``(r + 1)``-core: neighbors above level ``r`` plus unpeeled
        candidates.  Every round removes the whole sub-threshold
        frontier at once through :func:`batch_decrement` (which also
        yields the contention counts the runtime charges); survivors
        are exactly the vertices whose coreness rises to ``r + 1``.
        """
        runtime = self.runtime
        model = runtime.model
        graph = self._graph
        in_set = np.zeros(self.n, dtype=bool)
        in_set[cand] = True
        lens = graph.indptr[cand + 1] - graph.indptr[cand]
        targets = stream(graph, cand)
        seg = np.repeat(np.arange(cand.size, dtype=np.int64), lens)
        counted = (self.coreness[targets] > r) | in_set[targets]
        cd = np.zeros(self.n, dtype=np.int64)
        # Disjoint per-vertex init: cand is sorted-unique (BFS visited
        # mask in _subcore), one bincount slot per candidate.
        cd[cand] = np.bincount(  # lint: disable=R004
            seg[counted], minlength=cand.size
        )
        runtime.parallel_for(
            (model.vertex_op + model.edge_op * lens).astype(np.float64),
            barriers=model.online_barriers,
            tag="dyn_cd_init",
        )

        peeled = np.zeros(self.n, dtype=bool)
        frontier = cand[cd[cand] <= r]
        while frontier.size:
            runtime.begin_subround(int(frontier.size))
            peeled[frontier] = True
            flens = graph.indptr[frontier + 1] - graph.indptr[frontier]
            ftargets = stream(graph, frontier)
            live = in_set[ftargets] & ~peeled[ftargets]
            outcome = batch_decrement(cd, ftargets[live], r)
            runtime.parallel_update(
                (model.vertex_op + model.edge_op * flens).astype(
                    np.float64
                ),
                outcome.counts,
                barriers=model.online_barriers,
                tag="dyn_peel",
            )
            frontier = outcome.crossed[~peeled[outcome.crossed]]

        survivors = cand[~peeled[cand]]
        if survivors.size:
            # Disjoint per-vertex label writes (subset of unique cand).
            self.coreness[survivors] = r + 1  # lint: disable=R004
            runtime.parallel_for(
                model.scan_op,
                count=int(survivors.size),
                barriers=0,
                tag="dyn_relabel",
            )
        return survivors
