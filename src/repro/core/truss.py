"""k-truss decomposition — the edge-peeling sibling of k-core.

The paper's conclusion proposes carrying its techniques to related
peeling problems; its citations include parallel clique peeling and
nucleus decomposition (Shi, Dhulipala, Shun 2021/2023), whose simplest
instance is the **k-truss**: the maximal subgraph in which every edge is
supported by at least ``k - 2`` triangles.  The *trussness* of an edge
is the largest ``k`` whose k-truss contains it.

The implementation mirrors the k-core framework one level up: compute
per-edge triangle support, then peel edges in increasing support order,
decrementing the support of the two other edges of every triangle the
peeled edge closed.  This is the standard ``O(m^{1.5})`` algorithm with
the same bucket-queue skeleton as BZ.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.csr import CSRGraph


def _edge_table(graph: CSRGraph) -> tuple[np.ndarray, dict[tuple[int, int], int]]:
    """Undirected edge list (u < v) and a lookup from pair to edge id."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    mask = src < graph.indices
    edges = np.stack([src[mask], graph.indices[mask]], axis=1)
    index = {
        (int(u), int(v)): i for i, (u, v) in enumerate(edges)
    }
    return edges, index


def triangle_support(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge triangle counts.

    Returns ``(edges, support)`` where ``edges`` is the ``(m, 2)``
    undirected edge list (u < v) and ``support[i]`` the number of
    triangles through edge ``i``.  Uses sorted-adjacency intersection.
    """
    edges, _ = _edge_table(graph)
    support = np.zeros(edges.shape[0], dtype=np.int64)
    for i, (u, v) in enumerate(edges):
        nu = graph.neighbors(int(u))
        nv = graph.neighbors(int(v))
        support[i] = np.intersect1d(nu, nv, assume_unique=True).size
    return edges, support


def truss_decomposition(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Trussness of every edge.

    Returns ``(edges, trussness)``: edge ``i`` belongs to the k-truss
    for every ``k <= trussness[i]``.  Edges in no triangle get
    trussness 2 (every edge is trivially in the 2-truss).
    """
    edges, index = _edge_table(graph)
    m = edges.shape[0]
    trussness = np.full(m, 2, dtype=np.int64)
    if m == 0:
        return edges, trussness

    _, support = triangle_support(graph)
    alive = np.ones(m, dtype=bool)
    adjacency = [set(graph.neighbors(v).tolist()) for v in range(graph.n)]

    # Lazy-deletion heap peel: repeatedly remove a minimum-support edge.
    heap = [(int(support[e]), int(e)) for e in range(m)]
    heapq.heapify(heap)
    k = 2
    removed = 0
    while removed < m:
        s, e = heapq.heappop(heap)
        if not alive[e] or s != support[e]:
            continue  # stale heap entry
        k = max(k, s + 2)
        trussness[e] = k
        alive[e] = False
        removed += 1
        u, v = (int(x) for x in edges[e])
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        # Every common neighbor w closed a triangle (u, v, w); the other
        # two edges lose one unit of support.
        common = adjacency[u] & adjacency[v]
        for w in common:
            for a, b in ((u, w), (v, w)):
                key = (a, b) if a < b else (b, a)
                other = index[key]
                if alive[other]:
                    support[other] -= 1
                    heapq.heappush(
                        heap, (int(support[other]), int(other))
                    )
    return edges, trussness


def ktruss_subgraph(graph: CSRGraph, k: int) -> CSRGraph:
    """The maximal subgraph whose every edge has >= k - 2 triangle support.

    Standard definition: the k-truss (k >= 2); returns the subgraph on
    the surviving edges (isolated vertices retained, ids preserved).
    """
    if k < 2:
        raise ValueError(f"k-truss is defined for k >= 2, got {k}")
    edges, trussness = truss_decomposition(graph)
    kept = edges[trussness >= k]
    return CSRGraph.from_edges(graph.n, kept, name=f"{graph.name}/truss{k}")


def max_trussness(graph: CSRGraph) -> int:
    """The largest k with a non-empty k-truss."""
    if graph.num_edges == 0:
        return 0
    _, trussness = truss_decomposition(graph)
    return int(trussness.max())
