"""Flat-array hash table and counter (npstructures-style).

The remaining dict-backed internals (the monotone priority queue's key
map, Dial's tentative-distance map) pay a boxed Python object per entry
and a Python-level loop per bulk operation.  This module provides the
vectorized replacement: open-addressed tables over preallocated int64
arrays whose bulk operations (``get_many`` / ``set_many`` /
``contains_many``) resolve every probe round for *all* pending keys at
once with masked NumPy gathers — the idiom of npstructures'
``HashTable``/``Counter`` — while keeping exact dict semantics for the
scalar operations the sequential call sites still need.

Keys and values are non-negative int64 (vertex ids, integer priorities);
the sign bit is reserved for the ``EMPTY`` / ``TOMBSTONE`` slot markers.
Deletion uses tombstones, counted against the load factor so probe
chains stay short and bulk probing always terminates; growth rehashes
live entries only, discarding tombstones.
"""

from __future__ import annotations

import numpy as np

_EMPTY = -1
_TOMBSTONE = -2

#: Maximum fraction of occupied slots (live + tombstones) before growth.
LOAD_FACTOR = 0.7

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def mix64(keys: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (the hash-bag hash, batched)."""
    x = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> _S30)) * _M1
        x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


def _next_pow2(value: int) -> int:
    return 1 << max(int(value) - 1, 1).bit_length()


class FlatHashTable:
    """Open-addressed int64 -> int64 map over flat preallocated arrays.

    Supports the dict protocol for scalar use (``table[k]``, ``get``,
    ``in``, ``del``, ``len``) plus vectorized bulk operations.  Bulk
    inserts require *distinct* keys per call (duplicates within one
    batch would race on a slot, exactly like concurrent hash-table
    inserts); ``FlatCounter`` dedups before delegating.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._cap = _next_pow2(max(int(capacity / LOAD_FACTOR), 8))
        self._slots = np.full(self._cap, _EMPTY, dtype=np.int64)
        self._vals = np.zeros(self._cap, dtype=np.int64)
        self._len = 0  # live entries
        self._used = 0  # live entries + tombstones

    def __len__(self) -> int:
        return self._len

    # -- scalar operations ---------------------------------------------
    def _probe(self, key: int) -> tuple[int, int]:
        """``(slot of key or -1, first free slot on the chain)``."""
        mask = self._cap - 1
        pos = int(mix64(np.int64(key))) & mask
        first_free = -1
        while True:
            slot = int(self._slots[pos])
            if slot == key:
                return pos, first_free
            if slot == _TOMBSTONE:
                if first_free < 0:
                    first_free = pos
            elif slot == _EMPTY:
                if first_free < 0:
                    first_free = pos
                return -1, first_free
            pos = (pos + 1) & mask

    def get(self, key: int, default: int | None = None) -> int | None:
        pos, _ = self._probe(int(key))
        return default if pos < 0 else int(self._vals[pos])

    def __getitem__(self, key: int) -> int:
        pos, _ = self._probe(int(key))
        if pos < 0:
            raise KeyError(key)
        return int(self._vals[pos])

    def __contains__(self, key: int) -> bool:
        return self._probe(int(key))[0] >= 0

    def __setitem__(self, key: int, value: int) -> None:
        key = int(key)
        if key < 0:
            raise ValueError(f"flat table stores non-negative keys: {key}")
        self._maybe_grow(1)
        pos, free = self._probe(key)
        if pos >= 0:
            self._vals[pos] = value
            return
        if int(self._slots[free]) == _EMPTY:
            self._used += 1
        self._slots[free] = key
        self._vals[free] = value
        self._len += 1

    def __delitem__(self, key: int) -> None:
        pos, _ = self._probe(int(key))
        if pos < 0:
            raise KeyError(key)
        self._slots[pos] = _TOMBSTONE
        self._len -= 1

    def pop(self, key: int, default: int | None = None) -> int | None:
        pos, _ = self._probe(int(key))
        if pos < 0:
            return default
        value = int(self._vals[pos])
        self._slots[pos] = _TOMBSTONE
        self._len -= 1
        return value

    # -- bulk operations -----------------------------------------------
    def _find_positions(self, keys: np.ndarray) -> np.ndarray:
        """Slot index per key (-1 where absent), fully vectorized.

        Each probe round gathers the current slot of every unresolved
        key at once; keys stop on a hit or an empty slot and step past
        tombstones and foreign keys.
        """
        found = np.full(keys.size, -1, dtype=np.int64)
        if keys.size == 0 or self._len == 0:
            return found
        mask = self._cap - 1
        pos = (mix64(keys) & np.uint64(mask)).astype(np.int64)
        active = np.arange(keys.size)
        while active.size:
            slots = self._slots[pos[active]]
            hit = slots == keys[active]
            if np.any(hit):
                found[active[hit]] = pos[active[hit]]
            active = active[~(hit | (slots == _EMPTY))]
            if active.size:
                pos[active] = (pos[active] + 1) & mask
        return found

    def get_many(
        self, keys: np.ndarray, default: int = -1
    ) -> np.ndarray:
        """Value per key (``default`` where absent), fully vectorized."""
        keys = np.asarray(keys, dtype=np.int64)
        found = self._find_positions(keys)
        out = np.full(keys.size, default, dtype=np.int64)
        hit = found >= 0
        out[hit] = self._vals[found[hit]]
        return out

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership per key, fully vectorized."""
        keys = np.asarray(keys, dtype=np.int64)
        return self._find_positions(keys) >= 0

    def set_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert-or-update a batch of *distinct* keys, vectorized.

        Two bulk phases: a lookup pass updates the present keys in
        place; the absent ones then probe for free slots, claiming each
        with one fancy write and a read-back (the last writer of a
        contended slot wins, losers keep probing — the CAS-retry loop
        of a concurrent table, batched).  The phases are separate
        because a tombstone may precede a key on its chain: claiming it
        before the lookup resolves would duplicate the key.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.size == 0:
            return
        if int(keys.min()) < 0:
            raise ValueError("flat table stores non-negative keys")
        self._maybe_grow(int(keys.size))
        found = self._find_positions(keys)
        present = found >= 0
        self._vals[found[present]] = values[present]
        missing = np.nonzero(~present)[0]
        if missing.size == 0:
            return
        mask = self._cap - 1
        pos = (mix64(keys[missing]) & np.uint64(mask)).astype(np.int64)
        active = np.arange(missing.size)
        while active.size:
            slots = self._slots[pos[active]]
            free = (slots == _EMPTY) | (slots == _TOMBSTONE)
            cand = active[free]
            claimed = np.zeros(active.size, dtype=bool)
            if cand.size:
                cand_pos = pos[cand]
                was_empty = self._slots[cand_pos] == _EMPTY
                self._slots[cand_pos] = keys[missing[cand]]
                won = self._slots[cand_pos] == keys[missing[cand]]
                winners = cand[won]
                self._vals[pos[winners]] = values[missing[winners]]
                self._len += int(winners.size)
                self._used += int(np.count_nonzero(was_empty & won))
                claimed[free] = won
            active = active[~claimed]
            if active.size:
                pos[active] = (pos[active] + 1) & mask

    # -- whole-table views ---------------------------------------------
    def keys_array(self) -> np.ndarray:
        """All live keys (unordered copy)."""
        live = self._slots >= 0
        return self._slots[live].copy()

    def values_array(self) -> np.ndarray:
        """All live values, aligned with :meth:`keys_array`."""
        live = self._slots >= 0
        return self._vals[live].copy()

    def min_value(self) -> int:
        """Smallest live value (vectorized; table must be non-empty)."""
        if self._len == 0:
            raise ValueError("min_value of an empty flat table")
        return int(self._vals[self._slots >= 0].min())

    # -- growth ---------------------------------------------------------
    def _maybe_grow(self, incoming: int) -> None:
        if self._used + incoming <= self._cap * LOAD_FACTOR:
            return
        live = self._slots >= 0
        keys = self._slots[live]
        vals = self._vals[live]
        need = self._len + incoming
        self._cap = _next_pow2(max(int(need / (LOAD_FACTOR / 2)), 8))
        self._slots = np.full(self._cap, _EMPTY, dtype=np.int64)
        self._vals = np.zeros(self._cap, dtype=np.int64)
        self._len = 0
        self._used = 0
        if keys.size:
            self.set_many(keys, vals)


class FlatCounter:
    """Multiset counter over a :class:`FlatHashTable` (vectorized).

    ``add_many`` histograms the batch (``np.unique``) and upserts the
    per-key totals with two bulk probes — no Python-level loop.
    """

    def __init__(self, capacity: int = 8) -> None:
        self._table = FlatHashTable(capacity)

    def __len__(self) -> int:
        return len(self._table)

    def add_many(self, keys: np.ndarray) -> None:
        """Count one occurrence per entry of ``keys``."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        distinct, counts = np.unique(keys, return_counts=True)
        current = self._table.get_many(distinct, default=0)
        self._table.set_many(distinct, current + counts)

    def count(self, key: int) -> int:
        value = self._table.get(int(key))
        return 0 if value is None else value

    def counts_many(self, keys: np.ndarray) -> np.ndarray:
        return self._table.get_many(keys, default=0)

    def items_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, counts)`` in ascending key order."""
        keys = self._table.keys_array()
        counts = self._table.values_array()
        order = np.argsort(keys, kind="stable")
        return keys[order], counts[order]
