"""A do-nothing bucket structure for algorithms that re-scan V themselves.

ParK, PKC, and the single-round subgraph extraction build their frontiers
by scanning the vertex array directly, so they plug this stub into the
peel's DecreaseKey notifications.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.structures.buckets_base import BucketStructure


class NullBuckets(BucketStructure):
    """No structure at all; DecreaseKey notifications are ignored."""

    name = "none"

    def _build(self, graph: CSRGraph) -> None:
        pass

    def next_round(self):  # pragma: no cover - never used as a driver
        raise NotImplementedError("NullBuckets does not drive rounds")

    def on_decrements(
        self, vertices: np.ndarray, old_keys: np.ndarray | None = None
    ) -> None:
        pass
