"""Fixed-width bucketing (Julienne's practical strategy, paper Sec. 5.1).

Maintains ``b`` open buckets covering the keys ``[base, base + b)`` plus an
*overflow* set holding everything else.  Every ``b`` rounds the overflow is
scanned once and the next window of buckets is materialized, so a vertex is
touched by rebuilds ``O(d(v) / b)`` times; a DecreaseKey inside the window
appends the vertex to its new bucket (lazy deletion, stale copies filtered
on extraction), costing up to ``b - 1`` moves per vertex.  Total:
``O(m / b + n b)``, minimized near ``b = sqrt(d_avg)``; Julienne fixes
``b = 16``, which this class defaults to.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.structures.buckets_base import BucketStructure

#: Julienne's bucket count.
DEFAULT_NUM_BUCKETS = 16


class FixedBuckets(BucketStructure):
    """Julienne-style ``b``-bucket structure with an overflow set."""

    def __init__(self, num_buckets: int = DEFAULT_NUM_BUCKETS) -> None:
        super().__init__()
        if num_buckets < 1:
            raise ValueError(f"need at least one bucket, got {num_buckets}")
        self.b = num_buckets
        self.name = f"{num_buckets}-bucket"
        self._overflow: np.ndarray | None = None
        self._buckets: list[list[np.ndarray]] = []
        self._base = 0
        self._k = -1

    def _build(self, graph: CSRGraph) -> None:
        self._overflow = np.arange(graph.n, dtype=np.int64)
        self._buckets = [[] for _ in range(self.b)]
        self._base = 0
        self._rebuild()
        # _rebuild may have jumped the window past leading key gaps.
        self._k = self._base - 1

    def _rebuild(self) -> None:
        """Scan the overflow and materialize buckets [base, base + b)."""
        assert self._overflow is not None
        assert self.dtilde is not None and self.peeled is not None
        assert self.runtime is not None
        if self._overflow.size:
            self.runtime.parallel_for(
                self.runtime.model.scan_op,
                count=int(self._overflow.size),
                barriers=2,  # histogram-style split: flag pass + scatter
                tag="buildbuckets",
            )
        keys = self.dtilde[self._overflow]
        alive = ~self.peeled[self._overflow]
        if alive.any():
            min_key = int(keys[alive].min())
            if min_key >= self._base + self.b:
                # The whole window would be empty; jump the window to the
                # smallest remaining key (Julienne skips empty buckets).
                self._base = min_key
        stay = alive & (keys >= self._base + self.b)
        for offset in range(self.b):
            members = self._overflow[alive & (keys == self._base + offset)]
            self._buckets[offset] = [members] if members.size else []
        self._overflow = self._overflow[stay]

    def _bucket_members(self, offset: int) -> np.ndarray:
        parts = self._buckets[offset]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        if len(parts) == 1:
            return parts[0]
        merged = np.concatenate(parts)
        self._buckets[offset] = [merged]
        return merged

    def next_round(self) -> tuple[int, np.ndarray] | None:
        assert self._overflow is not None and self.runtime is not None
        while True:
            self._k += 1
            if self._k >= self._base + self.b:
                self._base += self.b
                self._rebuild()
                # _rebuild may have jumped the window past a key gap.
                self._k = self._base
            offset = self._k - self._base
            members = self._bucket_members(offset)
            self._buckets[offset] = []
            if members.size:
                self.runtime.parallel_for(
                    self.runtime.model.scan_op,
                    count=int(members.size),
                    barriers=1,
                    tag="getnextbucket",
                )
                valid = members[self._valid_mask(members, self._k)]
                if valid.size:
                    # Lazy deletion can in principle leave multiple live
                    # copies of a vertex; deduplicate so the peel never
                    # processes a vertex twice.
                    return self._k, np.unique(valid)
            elif self._exhausted():
                return None
            else:
                # Empty key inside the window: O(1) skip, but check for
                # termination so gap-heavy graphs do not spin through an
                # unbounded key range.
                continue
            if self._exhausted():
                return None

    def _exhausted(self) -> bool:
        assert self._overflow is not None
        if self._overflow.size:
            return False
        return not any(
            part.size for parts in self._buckets for part in parts
        )

    def on_decrements(
        self, vertices: np.ndarray, old_keys: np.ndarray | None = None
    ) -> None:
        """Move changed vertices into their new in-window bucket.

        Vertices whose new key is still at or beyond the window simply stay
        in the overflow (they have not been pulled out of it yet) or keep a
        stale copy that extraction filters out.
        """
        assert self.dtilde is not None and self.runtime is not None
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return
        keys = self.dtilde[vertices]
        in_window = (keys >= self._base) & (keys < self._base + self.b)
        movers = vertices[in_window]
        if movers.size == 0:
            return
        self.runtime.parallel_for(
            self.runtime.model.bucket_move_op,
            count=int(movers.size),
            barriers=1,
            tag="decreasekey",
        )
        move_keys = self.dtilde[movers]
        for offset in range(
            max(0, self._k + 1 - self._base), self.b
        ):
            selected = movers[move_keys == self._base + offset]
            if selected.size:
                self._buckets[offset].append(selected)
