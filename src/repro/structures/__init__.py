"""Concurrent data structures: hash bag, hash table, bucketing structures."""

from repro.structures.buckets_base import BucketStructure
from repro.structures.fixed_buckets import DEFAULT_NUM_BUCKETS, FixedBuckets
from repro.structures.hash_bag import DEFAULT_LAMBDA, HashBag
from repro.structures.hash_table import PhaseConcurrentHashTable
from repro.structures.integer_pq import MonotoneIntPQ, dial_sssp
from repro.structures.hbs import (
    ADAPTIVE_THETA,
    SINGLE_KEY_BUCKETS,
    AdaptiveHBS,
    HierarchicalBuckets,
    bucket_index,
    bucket_indices,
)
from repro.structures.null_buckets import NullBuckets
from repro.structures.single_bucket import SingleBucket

__all__ = [
    "ADAPTIVE_THETA",
    "AdaptiveHBS",
    "BucketStructure",
    "DEFAULT_LAMBDA",
    "DEFAULT_NUM_BUCKETS",
    "FixedBuckets",
    "HashBag",
    "MonotoneIntPQ",
    "HierarchicalBuckets",
    "NullBuckets",
    "PhaseConcurrentHashTable",
    "SINGLE_KEY_BUCKETS",
    "SingleBucket",
    "bucket_index",
    "dial_sssp",
    "bucket_indices",
]
