"""Phase-concurrent hash table (Shun & Blelloch 2014) with linear probing.

The paper's toolbox (Sec. 2) relies on hashing for parallel data access.
This table supports the phase-concurrent discipline: within one phase all
operations are of one kind (all inserts, all lookups, or all deletes), which
is what the k-core structures need and what makes a lock-free linear-probing
table deterministic.

Keys are non-negative int64; an optional int64 value can be associated.
"""

from __future__ import annotations

import numpy as np

from repro.structures.hash_bag import _mix

_EMPTY = -1


class PhaseConcurrentHashTable:
    """Open-addressing hash set / map over non-negative int64 keys."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        size = 16
        while size * 3 < capacity * 4:  # keep load factor under 0.75
            size *= 2
        self._mask = size - 1
        self._keys = np.full(size, _EMPTY, dtype=np.int64)
        self._values = np.zeros(size, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _probe(self, key: int) -> int:
        """Index of ``key``'s slot, or of the empty slot where it belongs."""
        pos = _mix(int(key)) & self._mask
        while True:
            stored = self._keys[pos]
            if stored == _EMPTY or stored == key:
                return pos
            pos = (pos + 1) & self._mask

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        size = (self._mask + 1) * 2
        self._mask = size - 1
        self._keys = np.full(size, _EMPTY, dtype=np.int64)
        self._values = np.zeros(size, dtype=np.int64)
        self._count = 0
        for key, value in zip(old_keys, old_values):
            if key != _EMPTY:
                self.insert(int(key), int(value))

    def insert(self, key: int, value: int = 0) -> bool:
        """Insert ``key`` (idempotent); returns True if newly added."""
        if key < 0:
            raise ValueError(f"keys must be non-negative: {key}")
        if (self._count + 1) * 4 > (self._mask + 1) * 3:
            self._grow()
        pos = self._probe(key)
        fresh = self._keys[pos] == _EMPTY
        self._keys[pos] = key
        self._values[pos] = value
        if fresh:
            self._count += 1
        return bool(fresh)

    def lookup(self, key: int) -> int | None:
        """Value stored for ``key``, or None if absent."""
        pos = self._probe(key)
        if self._keys[pos] == _EMPTY:
            return None
        return int(self._values[pos])

    def contains(self, key: int) -> bool:
        """Whether ``key`` is present."""
        return self._keys[self._probe(key)] != _EMPTY

    def keys(self) -> np.ndarray:
        """All stored keys (unordered)."""
        return self._keys[self._keys != _EMPTY].copy()

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored (keys, values) pairs (unordered, aligned)."""
        mask = self._keys != _EMPTY
        return self._keys[mask].copy(), self._values[mask].copy()
