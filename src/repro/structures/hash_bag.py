"""Parallel hash bag (paper Sec. 2; Dong et al. 2021, Wang et al. 2023).

A hash bag maintains a multiset of elements under concurrent insertion and
supports extracting everything into a consecutive array.  The backing array
is conceptually divided into chunks of sizes ``lambda, 2*lambda, 4*lambda,
...``; insertions target the current chunk by linear probing and move to the
next (doubled) chunk once the current one reaches its load-factor target.
``BagExtractAll`` therefore only scans the prefix of chunks actually used,
costing ``O(lambda + t)`` for ``t`` stored elements rather than ``O(n)``.

The k-core algorithms use hash bags for frontiers and for the per-bucket
vertex sets of the hierarchical bucketing structure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime.simulator import SimRuntime

#: Default smallest chunk size (2^8, the implementation constant in the paper).
DEFAULT_LAMBDA = 256

#: Chunk load factor at which insertion moves on to the next chunk.
LOAD_FACTOR = 0.75

_EMPTY = -1


def _mix(value: int) -> int:
    """64-bit multiplicative hash (splitmix64 finalizer, deterministic)."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class HashBag:
    """A chunked hash bag of non-negative int64 elements.

    Args:
        capacity: Upper bound on the number of elements simultaneously in
            the bag; the backing array is sized to hold it at the target
            load factor.
        lam: Smallest chunk size (``lambda`` in the paper).
        runtime: Optional simulated runtime charged per operation.
    """

    def __init__(
        self,
        capacity: int,
        lam: int = DEFAULT_LAMBDA,
        runtime: SimRuntime | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        if lam < 1:
            raise ValueError(f"lambda must be >= 1, got {lam}")
        self.lam = lam
        self.runtime = runtime

        # Chunk boundaries lam, 2*lam, 4*lam, ... until the cumulative
        # capacity (at the load-factor target) covers the requested one.
        bounds = [0]
        size = lam
        while (bounds[-1]) * LOAD_FACTOR < capacity or len(bounds) == 1:
            bounds.append(bounds[-1] + size)
            size *= 2
        self._bounds = bounds
        # Allocate only the first chunk eagerly; later chunks materialize
        # in ``_advance_chunk`` as the fill actually reaches them.  The
        # chunk geometry (``bounds``) is fixed up front either way, so
        # ``used_prefix`` — and hence every extraction charge — is
        # unchanged; bags that never outgrow ``lambda`` (the common case
        # for HBS buckets, which allocates one bag per interval) never
        # touch the doubled tail.
        self._slots = np.full(bounds[1], _EMPTY, dtype=np.int64)
        self._chunk = 0  # index of the chunk currently receiving inserts
        self._chunk_count = 0  # elements in the current chunk
        self._count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def used_prefix(self) -> int:
        """Length of the slot prefix that extraction must scan."""
        return self._bounds[self._chunk + 1]

    def _chunk_range(self) -> tuple[int, int]:
        return self._bounds[self._chunk], self._bounds[self._chunk + 1]

    def _advance_chunk(self) -> None:
        if self._chunk + 2 >= len(self._bounds):
            # Grow the geometry: append one more doubled chunk bound.
            extra = (self._bounds[-1] - self._bounds[-2]) * 2
            self._bounds.append(self._bounds[-1] + extra)
        self._chunk += 1
        self._chunk_count = 0
        # Materialize the backing store up to the new chunk's end (lazy
        # allocation: ``__init__`` only allocates the first chunk).
        need = self._bounds[self._chunk + 1]
        if self._slots.size < need:
            grown = np.full(need, _EMPTY, dtype=np.int64)
            grown[: self._slots.size] = self._slots
            self._slots = grown

    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """BagInsert: add ``value`` (duplicates allowed) by linear probing."""
        if value < 0:
            raise ValueError(f"hash bag stores non-negative ints: {value}")
        start, end = self._chunk_range()
        width = end - start
        if self._chunk_count >= width * LOAD_FACTOR:
            self._advance_chunk()
            start, end = self._chunk_range()
            width = end - start
        pos = start + (_mix(int(value)) % width)
        # Linear probing within the chunk (wrapping); the chunk load factor
        # bound guarantees termination.
        while self._slots[pos] != _EMPTY:
            pos += 1
            if pos == end:
                pos = start
        self._slots[pos] = value
        self._chunk_count += 1
        self._count += 1
        if self.runtime is not None:
            self.runtime.sequential(
                self.runtime.model.bag_insert_op, tag="bag_insert"
            )

    def insert_many(self, values: np.ndarray) -> None:
        """Insert a batch of values (models a concurrent insertion phase).

        The runtime is charged one parallel step: ``bag_insert_op`` work per
        element with unit span (insertions into distinct slots proceed
        concurrently; CAS retries are folded into the per-insert constant).
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        if int(values.min()) < 0:
            raise ValueError("hash bag stores non-negative ints")
        if self.runtime is not None:
            self.runtime.parallel_for(
                self.runtime.model.bag_insert_op,
                count=int(values.size),
                barriers=0,
                tag="bag_insert_many",
            )
        # Batched fill: chunk occupancy (and hence chunk advancement and
        # extraction cost) matches element-by-element insertion exactly;
        # only slot placement within a chunk differs, which no consumer
        # observes — extraction is an unordered multiset.
        offset = 0
        total = int(values.size)
        while offset < total:
            start, end = self._chunk_range()
            width = end - start
            room = math.ceil(width * LOAD_FACTOR) - self._chunk_count
            if room <= 0:
                self._advance_chunk()
                continue
            batch = values[offset : offset + room]
            window = self._slots[start:end]
            if self._chunk_count == 0:
                window[: batch.size] = batch
            else:
                free = np.flatnonzero(window == _EMPTY)
                window[free[: batch.size]] = batch
            self._chunk_count += int(batch.size)
            self._count += int(batch.size)
            offset += int(batch.size)

    def extract_all(self) -> np.ndarray:
        """BagExtractAll: remove and return all elements as an array.

        Scans only the used chunk prefix — ``O(lambda + t)`` — and resets
        the bag to its smallest chunk.
        """
        prefix = self.used_prefix
        window = self._slots[:prefix]
        result = window[window != _EMPTY].copy()
        if self.runtime is not None:
            self.runtime.parallel_for(
                self.runtime.model.bag_extract_op,
                count=max(prefix, 1),
                barriers=1,
                tag="bag_extract",
            )
        window[:] = _EMPTY
        self._chunk = 0
        self._chunk_count = 0
        self._count = 0
        return result

    def peek_all(self) -> np.ndarray:
        """Return all elements without removing them (test helper)."""
        window = self._slots[: self.used_prefix]
        return window[window != _EMPTY].copy()
