"""Hierarchical bucketing structure — HBS (paper Sec. 5.2 / 5.3).

HBS keeps buckets over *static* key intervals that refine lazily, exactly
as the paper's Fig. 4 illustrates: initially the first eight buckets are
single-key (the paper's implementation optimization) and the following
ones cover dyadic ranges ``[8,15], [16,31], [32,63], ...``.  When the
first non-empty bucket is a range bucket, it is *split*: its live members
are redistributed into a refined layout over the same range — eight
single-key buckets followed by doubling ranges — and the scan repeats.
Each bucket is a parallel hash bag.

``DecreaseKey`` inserts the vertex into the bucket of its new key and
leaves the old copy behind (hash bags do not support deletion); a copy is
only inserted when the containing interval actually changes, so a vertex
accumulates ``O(log d(v))`` copies, and extraction filters stale copies
lazily.  Because intervals are static between splits, the freshest copy of
a live vertex is always in the interval covering its current key, which
makes the first-non-empty-bucket scan return the true minimum key.

Total structure cost per vertex: ``O(log d(v))`` — versus
``O(d(v)/b + b)`` for fixed buckets and ``O(d(v))`` scans for the plain
strategy (paper Sec. 5.2).

:class:`AdaptiveHBS` is the final design of Sec. 5.3: graphs whose average
degree is at most ``theta = 16`` are processed with the plain strategy
until the ``theta``-core is reached, at which point the survivors (whose
average degree is then at least ``theta``) are loaded into an HBS.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.primitives.bitops import bit_length64
from repro.structures.buckets_base import BucketStructure
from repro.structures.hash_bag import HashBag
from repro.structures.single_bucket import SingleBucket

#: Number of leading single-key buckets in each (re)fined layout.
SINGLE_KEY_BUCKETS = 8

#: Average-degree / coreness threshold of the adaptive final design.
ADAPTIVE_THETA = 16


def interval_layout(lo: int, max_key: int) -> list[tuple[int, int]]:
    """The refined interval layout starting at ``lo``.

    Eight single-key intervals ``[lo, lo], ..., [lo+7, lo+7]`` followed by
    dyadic ranges ``[lo+8, lo+15], [lo+16, lo+31], ...`` until ``max_key``
    is covered.  This is the layout of the paper's Fig. 4 with the
    first-eight-single-keys optimization of Sec. 5.2.
    """
    intervals = [
        (lo + i, lo + i) for i in range(SINGLE_KEY_BUCKETS)
    ]
    width = SINGLE_KEY_BUCKETS
    start = lo + SINGLE_KEY_BUCKETS
    while start <= max_key:
        intervals.append((start, start + width - 1))
        start += width
        width *= 2
    return intervals


def bucket_index(key: int, base: int) -> int:
    """Index of ``key`` in :func:`interval_layout` ``(base, ...)``.

    Single-key offsets 0..7 map to buckets 0..7; offsets in ``[8, 16)``
    map to bucket 8, ``[16, 32)`` to 9, ``[32, 64)`` to 10, and so on.
    """
    offset = int(key) - base
    if offset < 0:
        raise ValueError(f"key {key} below layout base {base}")
    if offset < SINGLE_KEY_BUCKETS:
        return offset
    return SINGLE_KEY_BUCKETS + (offset >> 3).bit_length() - 1


def bucket_indices(keys: np.ndarray, base: int) -> np.ndarray:
    """Vectorized :func:`bucket_index` for an int array of keys."""
    offsets = np.asarray(keys, dtype=np.int64) - base
    if offsets.size and offsets.min() < 0:
        raise ValueError("key below layout base")
    ids = offsets.copy()
    high = offsets >= SINGLE_KEY_BUCKETS
    if np.any(high):
        # Integer bit-length arithmetic: float64 log2 loses exactness near
        # power-of-two boundaries once offsets outgrow the 53-bit mantissa.
        ids[high] = (
            SINGLE_KEY_BUCKETS + bit_length64(offsets[high] >> 3) - 1
        )
    return ids


class HierarchicalBuckets(BucketStructure):
    """The hierarchical bucketing structure over parallel hash bags."""

    name = "hbs"

    def __init__(self) -> None:
        super().__init__()
        # Drained front buckets are skipped via ``_head`` rather than
        # ``list.pop(0)``: popping shifts every remaining element, which is
        # O(B) per drop and O(B^2) over a run.  ``_intervals``/``_bags``
        # keep the full layout; indices ``>= _head`` are live, and ``_los``
        # always mirrors the live intervals (it is resliced when the head
        # advances and rebuilt on splits).
        self._intervals: list[tuple[int, int]] = []
        self._bags: list[HashBag] = []
        self._head = 0
        self._los: np.ndarray = np.zeros(0, dtype=np.int64)
        self._capacity = 1

    # ------------------------------------------------------------------
    def _build(self, graph: CSRGraph) -> None:
        self.load(np.arange(graph.n, dtype=np.int64), base=0)

    def load(self, vertices: np.ndarray, base: int) -> None:
        """Initialize the layout at ``base`` and bulk-insert ``vertices``.

        This is BuildBuckets; exposed separately so :class:`AdaptiveHBS`
        can hand over the survivors of its plain phase.
        """
        assert self.dtilde is not None and self.runtime is not None
        vertices = np.asarray(vertices, dtype=np.int64)
        self._capacity = max(int(vertices.size), 1)
        max_key = (
            int(self.dtilde[vertices].max()) if vertices.size else base
        )
        self._set_intervals(interval_layout(base, max_key))
        if vertices.size:
            self._scatter(vertices, self.dtilde[vertices])

    def _set_intervals(self, intervals: list[tuple[int, int]]) -> None:
        self._intervals = intervals
        self._bags = [
            HashBag(self._capacity, runtime=self.runtime)
            for _ in intervals
        ]
        self._head = 0
        self._los = np.asarray([lo for lo, _ in intervals], dtype=np.int64)

    def _bucket_of(self, keys: np.ndarray) -> np.ndarray:
        """Live-bucket offset of the interval covering each key.

        Offsets are relative to ``_head``; callers add it back when
        indexing ``_bags``.
        """
        idx = np.searchsorted(self._los, keys, side="right") - 1
        if idx.size and idx.min() < 0:
            raise ValueError("key below the current interval layout")
        return idx

    def _scatter(self, vertices: np.ndarray, keys: np.ndarray) -> None:
        """Insert vertices into the bags covering their keys."""
        if vertices.size == 0:
            return
        ids = self._bucket_of(keys)
        if int(ids.min()) == int(ids.max()):
            # Single destination bucket — the dominant case during a
            # round's DecreaseKey storms (all movers land just below the
            # current threshold).  Skip the argsort/run-boundary pass;
            # within-bag placement order is unobservable (extraction is
            # an unordered multiset and every consumer canonicalizes).
            self._bags[self._head + int(ids[0])].insert_many(vertices)
            return
        order = np.argsort(ids, kind="stable")
        ids_sorted = ids[order]
        verts_sorted = vertices[order]
        # Visit only the occupied buckets (ascending): run boundaries in
        # the sorted id array, instead of probing every bucket in the
        # layout per scatter.
        starts = np.flatnonzero(
            np.diff(ids_sorted, prepend=ids_sorted[0] - 1)
        )
        ends = np.append(starts[1:], ids_sorted.size)
        for lo, hi in zip(starts, ends):
            bucket = self._head + int(ids_sorted[lo])
            self._bags[bucket].insert_many(verts_sorted[lo:hi])

    def _split_front(self, live: np.ndarray, keys: np.ndarray) -> None:
        """Refine the front (range) interval and rescatter its members."""
        lo, hi = self._intervals[self._head]
        refined = interval_layout(lo, hi)
        # Keep only the refined intervals that stay within [lo, hi]; the
        # construction covers it exactly for power-of-two widths and may
        # overshoot otherwise, which is harmless (clamp the last hi).
        refined = [(a, min(b, hi)) for a, b in refined if a <= hi]
        tail_intervals = self._intervals[self._head + 1 :]
        tail_bags = self._bags[self._head + 1 :]
        new_bags = [
            HashBag(self._capacity, runtime=self.runtime)
            for _ in refined
        ]
        self._intervals = refined + tail_intervals
        self._bags = new_bags + tail_bags
        self._head = 0
        self._los = np.asarray(
            [a for a, _ in self._intervals], dtype=np.int64
        )
        if live.size:
            self._scatter(live, keys)

    # ------------------------------------------------------------------
    def next_round(self) -> tuple[int, np.ndarray] | None:
        assert self.dtilde is not None and self.peeled is not None
        while True:
            # Skip drained front buckets (their key ranges are consumed) by
            # advancing the head index — O(1) per drop.
            while (
                self._head < len(self._bags)
                and len(self._bags[self._head]) == 0
            ):
                self._head += 1
                self._los = self._los[1:]
            if self._head >= len(self._bags):
                return None
            lo, hi = self._intervals[self._head]
            members = self._bags[self._head].extract_all()
            live = np.unique(members[~self.peeled[members]])
            if live.size == 0:
                continue
            keys = self.dtilde[live]
            if lo == hi:
                # Single-key bucket: every live member's freshest copy is
                # here, and DecreaseKey fires on interval changes, so live
                # keys match lo exactly; anything else is a stale copy.
                frontier = live[keys == lo]
                if frontier.size:
                    return lo, frontier
                continue
            # Range bucket reached the front: split it (Fig. 4's arrows).
            self._split_front(live, keys)

    def on_decrements(
        self, vertices: np.ndarray, old_keys: np.ndarray | None = None
    ) -> None:
        assert self.dtilde is not None and self.runtime is not None
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0 or self._head >= len(self._bags):
            return
        keys = self.dtilde[vertices]
        new_ids = self._bucket_of(keys)
        if old_keys is not None:
            # Insert a fresh copy only when the covering interval changed —
            # this is what bounds copies per vertex by O(log d(v)).
            old_ids = self._bucket_of(
                np.asarray(old_keys, dtype=np.int64)
            )
            moved = new_ids != old_ids
            vertices = vertices[moved]
            keys = keys[moved]
        if vertices.size == 0:
            return
        # Hash bags support concurrent insertion, so DecreaseKey inserts
        # overlap the peel phase: no extra barrier, only insertion work.
        self.runtime.parallel_for(
            self.runtime.model.bucket_move_op,
            count=int(vertices.size),
            barriers=0,
            tag="hbs_decreasekey",
        )
        self._scatter(vertices, keys)


class AdaptiveHBS(BucketStructure):
    """Final design (Sec. 5.3): plain strategy below the density threshold.

    Bucketing structures only pay off when the average degree exceeds a
    constant; this wrapper runs :class:`SingleBucket` until either the
    graph is dense from the start (average degree above ``theta``) or the
    peeling reaches the ``theta``-core — whose average degree is at least
    ``theta`` by definition — and switches to
    :class:`HierarchicalBuckets` there.
    """

    name = "adaptive-hbs"

    def __init__(self, theta: int = ADAPTIVE_THETA) -> None:
        super().__init__()
        self.theta = theta
        self._plain = SingleBucket()
        self._hbs = HierarchicalBuckets()
        self._use_hbs = False
        self._graph: CSRGraph | None = None

    def _build(self, graph: CSRGraph) -> None:
        self._graph = graph
        assert self.dtilde is not None and self.peeled is not None
        assert self.runtime is not None
        self._use_hbs = graph.average_degree > self.theta
        if self._use_hbs:
            self._hbs.build(graph, self.dtilde, self.peeled, self.runtime)
        else:
            self._plain.build(graph, self.dtilde, self.peeled, self.runtime)

    def _switch_to_hbs(self, k: int) -> None:
        """Hand the plain strategy's surviving active set to an HBS."""
        assert self._graph is not None
        assert self.dtilde is not None and self.peeled is not None
        assert self.runtime is not None
        active = self._plain._active
        assert active is not None
        survivors = active[
            (~self.peeled[active]) & (self.dtilde[active] >= k)
        ]
        self._hbs.dtilde = self.dtilde
        self._hbs.peeled = self.peeled
        self._hbs.runtime = self.runtime
        self._hbs.load(survivors, base=k)
        self._use_hbs = True

    def next_round(self) -> tuple[int, np.ndarray] | None:
        if self._use_hbs:
            return self._hbs.next_round()
        return self._plain.next_round()

    def on_decrements(
        self, vertices: np.ndarray, old_keys: np.ndarray | None = None
    ) -> None:
        if self._use_hbs:
            self._hbs.on_decrements(vertices, old_keys)
        else:
            self._plain.on_decrements(vertices, old_keys)

    def round_finished(self, k: int) -> None:
        """Switch to the HBS once the remaining graph is dense enough.

        Two triggers, per Sec. 5.3: reaching the ``theta``-core (whose
        average degree is at least ``theta`` by definition), or — the
        "ideal" condition the paper describes — the surviving active set's
        average induced degree exceeding ``theta`` even at a smaller k
        (peeling the sparse fringe can expose a dense interior early).
        """
        if self._use_hbs:
            return
        if k + 1 >= self.theta or (
            self._plain.active_avg_degree > self.theta
        ):
            self._switch_to_hbs(k + 1)
