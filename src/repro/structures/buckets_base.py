"""Common interface of the bucketing structures (paper Sec. 5.1).

A bucketing structure organizes the *active* vertices of the peeling process
by their induced degree and hands the framework, round after round, the pair
``(k, initial frontier of round k)``.  The three functions of the paper's
interface map onto this API as:

* ``BuildBuckets(R, A)``   → :meth:`BucketStructure.build`
* ``GetNextBucket() -> F`` → :meth:`BucketStructure.next_round`
* ``DecreaseKey(a)``       → :meth:`BucketStructure.on_decrements` (batched,
  called once per subround with every vertex whose induced degree changed
  but did **not** cross the peeling threshold — crossing vertices join the
  running frontier directly and never return to the structure).

Implementations share the induced-degree array ``dtilde`` and the ``peeled``
flag array with the framework, which lets them filter stale copies lazily
exactly as the paper's hash-bag-based design does.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.runtime.simulator import SimRuntime


class BucketStructure(ABC):
    """Strategy object that produces per-round initial frontiers."""

    #: Short name used in benchmark tables ("1-bucket", "16-bucket", "hbs").
    name: str = "abstract"

    def __init__(self) -> None:
        self.dtilde: np.ndarray | None = None
        self.peeled: np.ndarray | None = None
        self.runtime: SimRuntime | None = None

    def build(
        self,
        graph: CSRGraph,
        dtilde: np.ndarray,
        peeled: np.ndarray,
        runtime: SimRuntime,
    ) -> None:
        """Initialize from the full vertex set (BuildBuckets).

        Args:
            graph: The input graph (used for degree-based placement).
            dtilde: Shared induced-degree array; mutated by the peel.
            peeled: Shared boolean array; True once a vertex is peeled.
            runtime: Simulated runtime to charge structure costs to.
        """
        self.dtilde = dtilde
        self.peeled = peeled
        self.runtime = runtime
        self._build(graph)

    @abstractmethod
    def _build(self, graph: CSRGraph) -> None:
        """Structure-specific initialization."""

    @abstractmethod
    def next_round(self) -> tuple[int, np.ndarray] | None:
        """Smallest remaining key and its frontier, or None when drained.

        The returned vertices are exactly the unpeeled vertices whose current
        induced degree equals the returned ``k``; the caller peels them.
        """

    @abstractmethod
    def on_decrements(
        self, vertices: np.ndarray, old_keys: np.ndarray | None = None
    ) -> None:
        """Re-bucket vertices whose induced degree decreased (DecreaseKey).

        ``vertices`` lists each changed vertex once; its new key is read from
        the shared ``dtilde`` array.  ``old_keys``, when provided, holds the
        keys before the change and lets implementations skip vertices whose
        bucket did not change.  Vertices that crossed the threshold of the
        current round are never passed here.
        """

    def round_finished(self, k: int) -> None:
        """Optional hook: the framework finished peeling round ``k``."""

    def _valid_mask(self, vertices: np.ndarray, key: int) -> np.ndarray:
        """Unpeeled vertices whose current induced degree equals ``key``."""
        assert self.dtilde is not None and self.peeled is not None
        return (~self.peeled[vertices]) & (self.dtilde[vertices] == key)
