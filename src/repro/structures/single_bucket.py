"""Single-bucket (plain) strategy: the framework of Alg. 1 verbatim.

No bucketing structure at all — equivalently one bucket.  Each round scans
the active set twice: once to extract the initial frontier (Alg. 1 line 5)
and once to refine the active set (line 9).  Theorem 3.1 shows the total is
``O(n + m)`` work, but the constant shows on graphs with many rounds and a
slowly-shrinking active set (the HCNS adversary), which is exactly the gap
the hierarchical bucketing structure closes (paper Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.structures.buckets_base import BucketStructure


class SingleBucket(BucketStructure):
    """Plain active-set scanning; the baseline ``b = 1`` configuration."""

    name = "1-bucket"

    def __init__(self) -> None:
        super().__init__()
        self._active: np.ndarray | None = None
        self._k = -1
        #: Average induced degree of the active set after the last
        #: refinement; lets AdaptiveHBS apply the paper's "ideal" switch
        #: condition (Sec. 5.3) without an extra pass.
        self.active_avg_degree = 0.0

    def _build(self, graph: CSRGraph) -> None:
        self._active = np.arange(graph.n, dtype=np.int64)
        self._k = -1

    def next_round(self) -> tuple[int, np.ndarray] | None:
        assert self._active is not None
        assert self.dtilde is not None and self.runtime is not None
        # Refine the active set with the previous round's threshold, then
        # advance k and extract the new frontier — two PACK passes, each
        # charged O(|A|) (Thm. 3.1's accounting).
        if self._k >= 0:
            keep = self.dtilde[self._active] > self._k
            self.runtime.parallel_for(
                self.runtime.model.scan_op,
                count=max(int(self._active.size), 1),
                barriers=1,
                tag="refine_active",
            )
            self._active = self._active[keep]
            if self._active.size:
                self.active_avg_degree = float(
                    self.dtilde[self._active].mean()
                )
        if self._active.size == 0:
            return None
        self._k += 1
        frontier_mask = self.dtilde[self._active] == self._k
        self.runtime.parallel_for(
            self.runtime.model.scan_op,
            count=int(self._active.size),
            barriers=1,
            tag="extract_frontier",
        )
        return self._k, self._active[frontier_mask]

    def on_decrements(
        self, vertices: np.ndarray, old_keys: np.ndarray | None = None
    ) -> None:
        """No-op: the plain strategy re-scans instead of moving vertices."""
