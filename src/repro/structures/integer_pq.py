"""Monotone integer priority queue over the HBS interval machinery.

The paper notes (Sec. 5) that its bucketing structure "provides the
interface of a special parallel priority queue with integer keys, which is
useful in many applications" — single-source shortest paths with small
integer weights (Dial / delta-stepping style), clique peeling, nucleus
decomposition.  This module packages the hierarchical interval layout as
a standalone *monotone* priority queue: extracted keys never decrease,
inserted keys must be at least the last extracted key (exactly the
discipline peeling and Dijkstra-with-integer-weights follow).

Unlike the k-core bucket structures (which share the framework's dtilde
array), the queue owns its key table, supports ``decrease_key``, and
extracts one ``(key, items)`` bucket at a time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BucketStructureError
from repro.structures.flat_table import FlatHashTable
from repro.structures.hash_bag import HashBag
from repro.structures.hbs import interval_layout


class MonotoneIntPQ:
    """Monotone bucket priority queue with non-negative integer keys.

    Args:
        capacity: Expected maximum number of simultaneously-stored items
            (items are non-negative ints, e.g. vertex ids).
        max_key: Upper bound on keys (the layout is built to cover it and
            grows automatically if exceeded).
    """

    def __init__(self, capacity: int, max_key: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        # Flat-array key table (item -> current key); replaces the boxed
        # dict so membership filtering at extraction is one bulk probe.
        self._keys = FlatHashTable(capacity)
        self._floor = 0  # extracted keys never go below this
        self._intervals = interval_layout(0, max(max_key, 8))
        self._bags = [HashBag(capacity) for _ in self._intervals]
        self._los = np.asarray(
            [lo for lo, _ in self._intervals], dtype=np.int64
        )
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def _bucket_of(self, key: int) -> int:
        idx = int(np.searchsorted(self._los, key, side="right")) - 1
        if idx < 0:
            raise BucketStructureError(
                f"key {key} below the monotone floor {self._los[0]}"
            )
        while idx >= len(self._bags) or key > self._intervals[-1][1]:
            lo = self._intervals[-1][1] + 1
            width = self._intervals[-1][1] - self._intervals[-1][0] + 1
            self._intervals.append((lo, lo + 2 * width - 1))
            self._bags.append(HashBag(self._capacity))
            self._los = np.asarray(
                [a for a, _ in self._intervals], dtype=np.int64
            )
            idx = int(np.searchsorted(self._los, key, side="right")) - 1
        return idx

    def insert(self, item: int, key: int) -> None:
        """Insert ``item`` with ``key`` (or update it to a smaller key)."""
        if key < self._floor:
            raise BucketStructureError(
                f"monotone violation: key {key} below floor {self._floor}"
            )
        if item in self._keys:
            self.decrease_key(item, key)
            return
        self._keys[item] = key
        self._bags[self._bucket_of(key)].insert(item)
        self._count += 1

    def decrease_key(self, item: int, key: int) -> None:
        """Lower ``item``'s key (no-op if the new key is not smaller)."""
        current = self._keys.get(item)
        if current is None:
            self.insert(item, key)
            return
        if key >= current:
            return
        if key < self._floor:
            raise BucketStructureError(
                f"monotone violation: key {key} below floor {self._floor}"
            )
        self._keys[item] = key
        # Lazy deletion: the old copy stays and is filtered at extraction.
        self._bags[self._bucket_of(key)].insert(item)

    def find_min_key(self) -> int | None:
        """Smallest key currently stored (None when empty)."""
        if self._count == 0:
            return None
        return self._keys.min_value()

    def extract_min_bucket(self) -> tuple[int, list[int]]:
        """Remove and return ``(key, items)`` for the smallest key.

        All items sharing the minimum key are returned together (the
        "frontier" shape peeling and parallel SSSP want).
        """
        while self._bags:
            if len(self._bags[0]) == 0:
                if len(self._bags) == 1:
                    break
                self._bags.pop(0)
                self._intervals.pop(0)
                self._los = self._los[1:]
                continue
            lo, hi = self._intervals[0]
            members = np.unique(self._bags[0].extract_all())
            # One bulk probe filters stale copies: a member is live iff
            # it still has a key (-1 marks absence; keys are >= 0) and
            # that key falls inside this interval.  ``members`` is
            # ascending, so ``live`` is too — extraction order matches
            # the dict-backed scan exactly.
            vals = self._keys.get_many(members)
            in_range = (vals >= 0) & (lo <= vals) & (vals <= hi)
            live = members[in_range]
            live_keys = vals[in_range]
            if live.size == 0:
                continue
            if lo == hi:
                at_lo = live_keys == lo
                result = live[at_lo]
                # A fresher copy exists in a lower... impossible for
                # single-key intervals; reinsert defensively.
                for v, key in zip(live[~at_lo], live_keys[~at_lo]):
                    self._bags[self._bucket_of(int(key))].insert(int(v))
                for v in result:
                    del self._keys[int(v)]
                self._count -= int(result.size)
                self._floor = lo
                if result.size:
                    return lo, [int(v) for v in result]
                continue
            # Range interval at the front: split and redistribute.
            refined = interval_layout(lo, hi)
            refined = [(a, min(b, hi)) for a, b in refined if a <= hi]
            new_bags = [HashBag(self._capacity) for _ in refined]
            self._intervals = refined + self._intervals[1:]
            self._bags = new_bags + self._bags[1:]
            self._los = np.asarray(
                [a for a, _ in self._intervals], dtype=np.int64
            )
            for v, key in zip(live, live_keys):
                self._bags[self._bucket_of(int(key))].insert(int(v))
        raise BucketStructureError("extract from an empty priority queue")

    def is_empty(self) -> bool:
        """Whether no items remain."""
        return self._count == 0


def dial_sssp(
    graph, weights: np.ndarray, source: int
) -> np.ndarray:
    """Single-source shortest paths with small integer weights.

    Dial's algorithm driven by :class:`MonotoneIntPQ` — the "independent
    interest" application the paper suggests for its bucketing structure.

    Args:
        graph: A :class:`~repro.graphs.csr.CSRGraph`.
        weights: Positive int weight per *arc*, aligned with
            ``graph.indices``.
        source: Start vertex.

    Returns:
        Distance per vertex (-1 for unreachable).
    """
    weights = np.asarray(weights, dtype=np.int64)
    if weights.shape != (graph.m,):
        raise ValueError("need one weight per arc")
    if weights.size and weights.min() < 1:
        raise ValueError("weights must be positive integers")
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range")
    pq = MonotoneIntPQ(capacity=max(n, 1))
    pq.insert(source, 0)
    tentative = FlatHashTable(max(n, 1))
    tentative[source] = 0
    while not pq.is_empty():
        key, items = pq.extract_min_bucket()
        for v in items:
            if dist[v] != -1:
                continue
            dist[v] = key
            start, end = graph.indptr[v], graph.indptr[v + 1]
            for idx in range(start, end):
                u = int(graph.indices[idx])
                if dist[u] != -1:
                    continue
                candidate = key + int(weights[idx])
                current = tentative.get(u)
                if current is None or candidate < current:
                    tentative[u] = candidate
                    pq.decrease_key(u, candidate)
    return dist
