"""The persistent shard worker pool over a shared mmap graph.

Each worker is a long-lived process connected to the coordinator by one
duplex pipe.  Workers do **not** receive the graph — they receive its
path and open the uncompressed ``.npz`` with a *strict* memory-mapped
load (:func:`repro.graphs.io.load_npz` with ``strict=True``), so all
workers share the file's page cache instead of holding pickled copies,
and a corrupt or unaligned cache file fails loudly inside the worker
and surfaces as a :class:`ShardWorkerError` in the coordinator — never
a hang, never a silently-copying fallback.

Protocol (one request/reply pair per round, per worker):

* coordinator -> worker: ``("round", ext_ids, ext_vals)`` — the packed
  ``(vertex, new_estimate)`` pairs from the *previous* round that
  changed in **other** shards, pre-filtered to the boundary slice this
  shard actually reads (its read mask, computed once at startup);
* worker -> coordinator: ``("ok", ids, vals, active, wall_s)`` — the
  packed pairs that changed in this shard this round, the active set it
  just processed, and the measured per-round worker wall.

Replies are collected in fixed worker order (the canonical merge —
lint rule R009's subject): because shards own ascending contiguous
ranges, concatenating per-worker arrays in worker order yields globally
ascending vertex order, identical to the single-process schedule.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import traceback

import numpy as np

from repro.bench.wallclock import measure
from repro.graphs.io import load_npz
from repro.shard.partition import ShardPlan
from repro.shard.rounds import RoundKernels

_EMPTY = np.zeros(0, dtype=np.int64)

#: Seconds to wait for a worker to acknowledge ``stop`` before killing it.
_JOIN_TIMEOUT_S = 10.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed; raised in the coordinator, never hung."""


def graph_digest(path) -> str:
    """SHA-256 over the strictly-mapped CSR bytes (debug/test utility)."""
    graph = load_npz(path, mmap=True, strict=True)
    digest = hashlib.sha256()
    digest.update(np.asarray(graph.indptr).tobytes())
    digest.update(np.asarray(graph.indices).tobytes())
    return digest.hexdigest()


def _digest_main(conn, path) -> None:
    """Child entry point for the mmap-sharing tests."""
    try:
        conn.send(("ok", graph_digest(path)))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _read_mask(
    indptr: np.ndarray, indices: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Out-of-range vertices whose estimates rounds over ``[lo, hi)`` read."""
    mask = np.zeros(int(indptr.size) - 1, dtype=bool)
    row = indices[indptr[lo] : indptr[hi]]
    mask[np.asarray(row)] = True
    mask[lo:hi] = False
    return mask


def _worker_main(conn, graph_path: str, lo: int, hi: int, mode: str) -> None:
    """One shard worker: strict-mmap the graph, then serve rounds forever.

    Every failure — open, map, or compute — is reported over the pipe as
    ``("error", traceback)`` before exiting, so the coordinator always
    gets a reply (or an EOF) instead of a hang.
    """
    try:
        graph = load_npz(graph_path, mmap=True, strict=True)
        indptr, indices = graph.indptr, graph.indices
        est = np.ascontiguousarray(np.diff(indptr), dtype=np.int64)
        kernels = RoundKernels(
            indptr, indices,
            hist_size=int(est.max(initial=0)) + 2, mode=mode,
        )
        mask = _read_mask(indptr, indices, lo, hi)
        active = np.arange(lo, hi, dtype=np.int64)
        conn.send(("ready", np.packbits(mask)))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    prev_ids: np.ndarray | None = None  # None = first round, full range
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "reset":
            # Start a fresh decomposition on the same mapped graph.
            est[:] = np.diff(indptr)
            prev_ids = None
            active = np.arange(lo, hi, dtype=np.int64)
            continue
        if message[0] != "round":
            conn.close()
            return
        try:
            _, ext_ids, ext_vals = message
            with measure() as wall:
                if ext_ids.size:
                    est[ext_ids] = ext_vals
                if prev_ids is not None:
                    # The previous round's global deltas (own + received
                    # boundary slice) determine this round's active set.
                    active = kernels.next_active(
                        np.concatenate((prev_ids, ext_ids)), lo, hi
                    )
                out = kernels.hindex_round(est, active)
                changed = out != est[active]
                ids = active[changed]
                vals = out[changed]
                est[ids] = vals
                prev_ids = ids
            conn.send(("ok", ids, vals, active, wall.wall_s))
        except BaseException:
            conn.send(("error", traceback.format_exc()))
            conn.close()
            return


class ShardPool:
    """A persistent pool of shard workers sharing one mmap graph.

    Spawning, the ready handshake and the read-mask exchange happen in
    ``__init__`` — outside any timed region, like the bench runner's
    pool.  The pool is reusable across runs on the same graph: each
    :meth:`run` drives one full decomposition to its fixed point.
    """

    def __init__(
        self,
        graph_path: str,
        plan: ShardPlan,
        mode: str,
        context: str | None = None,
    ):
        self.plan = plan
        self.graph_path = graph_path
        ctx = mp.get_context(context)
        self._procs: list = []
        self._conns: list = []
        try:
            for shard in range(plan.shards):
                lo, hi = plan.range_of(shard)
                parent_end, child_end = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_end, graph_path, lo, hi, mode),
                    name=f"shard-worker-{shard}",
                )
                proc.start()
                child_end.close()
                self._procs.append(proc)
                self._conns.append(parent_end)
            self.read_masks = []
            n = plan.bounds[-1]
            for shard in range(plan.shards):
                reply = self._recv(shard)
                packed = reply[1]
                self.read_masks.append(
                    np.unpackbits(packed, count=n).astype(bool)
                )
        except BaseException:
            self.close()
            raise

    @property
    def shards(self) -> int:
        return self.plan.shards

    def _recv(self, shard: int):
        try:
            reply = self._conns[shard].recv()
        except (EOFError, OSError):
            self.close()
            raise ShardWorkerError(
                f"shard worker {shard} died without a reply"
            ) from None
        if reply[0] == "error":
            detail = reply[1]
            self.close()
            raise ShardWorkerError(
                f"shard worker {shard} failed:\n{detail}"
            )
        return reply

    def reset(self) -> None:
        """Rewind every worker to the degree estimates (a fresh run).

        Fire-and-forget: the pipe preserves ordering, so the reset is
        applied before the next ``round`` request is read.
        """
        for conn in self._conns:
            conn.send(("reset",))

    def round(
        self, changed_ids: np.ndarray, changed_vals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list, int]:
        """Broadcast the previous round's deltas; run one round everywhere.

        Returns ``(ids, vals, active, walls, bytes_shipped)``: the
        merged changed pairs and active set of this round (worker order
        == ascending vertex order), per-worker round walls, and the
        payload bytes crossing the pipes this round.
        """
        shipped = 0
        for shard, conn in enumerate(self._conns):
            if changed_ids.size:
                keep = self.read_masks[shard][changed_ids]
                ext_ids = np.ascontiguousarray(changed_ids[keep])
                ext_vals = np.ascontiguousarray(changed_vals[keep])
            else:
                ext_ids, ext_vals = _EMPTY, _EMPTY
            shipped += ext_ids.nbytes + ext_vals.nbytes
            try:
                conn.send(("round", ext_ids, ext_vals))
            except (BrokenPipeError, OSError):
                self.close()
                raise ShardWorkerError(
                    f"shard worker {shard} died before the round request"
                ) from None
        ids_parts, vals_parts, active_parts, walls = [], [], [], []
        # Fixed worker order: the canonical merge (ranges are ascending
        # and contiguous, so this is globally ascending vertex order).
        for shard in range(len(self._conns)):
            _, ids, vals, active, wall_s = self._recv(shard)
            shipped += ids.nbytes + vals.nbytes + active.nbytes
            ids_parts.append(ids)
            vals_parts.append(vals)
            active_parts.append(active)
            walls.append(float(wall_s))
        return (
            np.concatenate(ids_parts),
            np.concatenate(vals_parts),
            np.concatenate(active_parts),
            walls,
            shipped,
        )

    def close(self) -> None:
        """Stop every worker; safe to call twice and mid-failure."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._procs = []
        self._conns = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
