"""Entry point for ``python -m repro.shard``."""

from __future__ import annotations

import sys

from repro.shard.cli import main

if __name__ == "__main__":
    sys.exit(main())
