"""Sharded multi-process k-core decomposition over shared mmap graphs.

The package partitions the CSR into degree-balanced contiguous vertex
ranges (:mod:`repro.shard.partition`), runs frontier-synchronous Jacobi
H-index rounds per shard in a persistent pool of worker processes that
memory-map the same cached ``.npz`` (:mod:`repro.shard.pool`), and
merges the per-round ``(vertex, new_estimate)`` deltas canonically in
the coordinator (:mod:`repro.shard.engine`).  The result — coreness,
simulated ledger, round trajectory — is bit-identical for every worker
count and kernel mode; ``python -m repro.regress oracle-shard`` sweeps
exactly that, and ``python -m repro.shard`` emits a worker-count
invariant report for CI's byte-identity check.

See docs/SHARDING.md for the protocol and the exactness argument.
"""

from __future__ import annotations

from repro.shard.engine import (
    default_workers,
    resolve_graph_path,
    shard_coreness,
)
from repro.shard.partition import ShardPlan, partition_ranges
from repro.shard.pool import ShardPool, ShardWorkerError, graph_digest
from repro.shard.rounds import RoundKernels

__all__ = [
    "RoundKernels",
    "ShardPlan",
    "ShardPool",
    "ShardWorkerError",
    "default_workers",
    "graph_digest",
    "partition_ranges",
    "resolve_graph_path",
    "shard_coreness",
]
