"""Degree-balanced contiguous vertex-range partitioning.

Shards own contiguous vertex ranges ``[bounds[i], bounds[i+1])`` so a
worker's CSR working set is two contiguous file extents (its ``indptr``
slice and the ``indices`` rows it spans) — the access pattern that makes
the shared-mmap story work, and what keeps the canonical merge trivial:
concatenating per-shard results in shard order *is* ascending vertex
order.

Balance targets the per-round cost model of the H-index kernel, which
is ``O(1 + deg(v))`` per active vertex: cut points are chosen on the
cumulative ``deg + 1`` weight (``indptr[v] + v``), so every shard gets
an approximately equal share of ``m + n`` rather than of ``n`` alone.
The cuts are a pure function of ``indptr`` and the shard count —
deterministic across processes, platforms and kernel modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous vertex ranges, one per shard: ``[bounds[i], bounds[i+1])``."""

    bounds: tuple[int, ...]

    @property
    def shards(self) -> int:
        return len(self.bounds) - 1

    def range_of(self, shard: int) -> tuple[int, int]:
        """The half-open vertex range owned by ``shard``."""
        return self.bounds[shard], self.bounds[shard + 1]

    def to_dict(self) -> dict[str, object]:
        return {"shards": self.shards, "bounds": list(self.bounds)}


def partition_ranges(indptr: np.ndarray, shards: int) -> ShardPlan:
    """Cut ``[0, n)`` into ``shards`` degree-balanced contiguous ranges.

    Each shard's total ``deg(v) + 1`` weight is within one vertex of the
    ideal ``(m + n) / shards`` share.  Empty ranges are legal (more
    shards than vertices); every vertex lands in exactly one range.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    n = int(indptr.size) - 1
    # Cumulative deg+1 weight: indptr[v] edges plus v unit vertex costs
    # precede vertex v.
    weight = np.asarray(indptr, dtype=np.int64) + np.arange(
        n + 1, dtype=np.int64
    )
    total = int(weight[-1])
    targets = np.array(
        [(k * total) // shards for k in range(1, shards)], dtype=np.int64
    )
    cuts = np.searchsorted(weight, targets, side="left")
    bounds = (0, *(int(min(c, n)) for c in cuts), n)
    return ShardPlan(bounds=bounds)
