"""The shard engine: coordinator loop, simulated ledger, observability.

``shard_coreness`` runs frontier-synchronous Jacobi H-index rounds to
the global fixed point, either inline (``workers=0``, the single-process
oracle) or over a :class:`repro.shard.pool.ShardPool` of worker
processes sharing the graph's ``.npz`` file via mmap.  Exactness across
the two paths — and across every worker count — rests on three
invariants:

* **Snapshot rounds.**  Every round reads the previous round's
  estimates only (:mod:`repro.shard.rounds`), so the new estimates are
  a pure function of the global active set, not of the partition.
* **Canonical merge.**  Shards own ascending contiguous ranges and the
  pool collects replies in worker order, so merged active sets and
  delta lists are in ascending vertex order — bit-identical to the
  inline schedule (lint rule R009 guards this).
* **Coordinator-side ledger.**  All simulated charges are computed by
  the coordinator from the merged per-round aggregates through the
  sanctioned ``parallel_for`` APIs (tags ``shard_init`` /
  ``shard_hindex`` / ``shard_exchange``), so ``RunMetrics`` — including
  the float work sums, accumulated over canonical arrays — are
  deterministic regardless of worker count or kernel mode.

Worker walls, delta counts and shipped bytes land in the optional
``MetricsRegistry`` (``shard.*``) and as per-worker Perfetto wall
tracks; neither affects the ledger or the payload.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np

from repro.bench.wallclock import available_cpus
from repro.core.result import CorenessResult
from repro.graphs.csr import CSRGraph
from repro.graphs.io import save_npz
from repro.obs.registry import WALL
from repro.perf import kernel_mode
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime
from repro.shard.partition import partition_ranges
from repro.shard.pool import ShardPool
from repro.shard.rounds import RoundKernels

_EMPTY = np.zeros(0, dtype=np.int64)


def default_workers() -> int:
    """Default pool size: the CPUs actually available to this process."""
    return available_cpus()


def resolve_graph_path(graph: CSRGraph) -> str | None:
    """The ``.npz`` file backing ``graph``'s arrays, if it is mmap-backed.

    Graphs loaded through the cache (:func:`repro.graphs.io.load_npz`
    with ``mmap=True``) carry their backing file on the memmap arrays;
    reusing it means the workers map the very same pages the
    coordinator already has warm.
    """
    ptr_file = _backing_file(graph.indptr)
    idx_file = _backing_file(graph.indices)
    if ptr_file is not None and ptr_file == idx_file:
        return os.fspath(ptr_file)
    return None


def _backing_file(array: np.ndarray) -> str | None:
    """The memmap file behind ``array``, walking view bases (or None)."""
    node = array
    while node is not None:
        filename = getattr(node, "filename", None)
        if filename is not None:
            return os.fspath(filename)
        node = getattr(node, "base", None)
    return None


def shard_coreness(
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    *,
    workers: int | None = None,
    pool: ShardPool | None = None,
    graph_path: str | None = None,
    context: str | None = None,
    max_rounds: int | None = None,
) -> CorenessResult:
    """Exact coreness via sharded frontier-synchronous H-index rounds.

    ``workers=None`` sizes the pool from :func:`default_workers`;
    ``workers=0`` runs the identical schedule inline in this process
    (the single-process oracle ``oracle-shard`` sweeps against).  A
    caller-provided ``pool`` is reused and left open (the bench runner
    spawns it outside the timed region); otherwise the pool — and, for
    graphs that are not already mmap-backed, a temporary uncompressed
    ``.npz`` for the workers to map — is created and torn down here.

    The coreness array, the simulated ledger and the round trajectory
    are bit-identical for every ``workers`` value and kernel mode.
    """
    runtime = SimRuntime(model)
    n = graph.n
    est = np.ascontiguousarray(graph.degrees, dtype=np.int64).copy()
    if n == 0:
        return CorenessResult(
            coreness=est, metrics=runtime.metrics,
            algorithm="shard", model=model,
        )
    degrees = est.copy()

    own_pool = pool is None
    tmp_dir: str | None = None
    kernels: RoundKernels | None = None
    if pool is None:
        if workers is None:
            workers = default_workers()
        if workers > 0:
            if graph_path is None:
                graph_path = resolve_graph_path(graph)
            if graph_path is None:
                tmp_dir = tempfile.mkdtemp(prefix="repro-shard-")
                graph_path = os.path.join(tmp_dir, "graph.npz")
                save_npz(graph, graph_path, compress=False)
            pool = ShardPool(
                graph_path,
                partition_ranges(graph.indptr, workers),
                mode=kernel_mode(),
                context=context,
            )
    if pool is None:
        kernels = RoundKernels(
            graph.indptr, graph.indices,
            hist_size=int(degrees.max(initial=0)) + 2,
        )

    registry = runtime.registry
    tracer = runtime.tracer
    if registry is not None:
        registry.set_gauge(
            "shard.workers", float(pool.shards if pool is not None else 0)
        )

    runtime.parallel_for(model.scan_op, count=n, barriers=1, tag="shard_init")

    if pool is not None and not own_pool:
        # A caller-provided (reused) pool may hold a previous run's
        # converged estimates; rewind it to the degree bound.
        pool.reset()

    limit = max_rounds if max_rounds is not None else 2 * n + 2
    round_walls: list[list[float]] = []
    active = np.arange(n, dtype=np.int64)
    ids, vals = _EMPTY, _EMPTY
    first_round = True
    try:
        for _ in range(limit):
            if pool is not None:
                ids, vals, active, walls, shipped = pool.round(ids, vals)
                est[ids] = vals
            else:
                if not first_round:
                    active = kernels.next_active(ids, 0, n)
                out = kernels.hindex_round(est, active)
                changed = out != est[active]
                ids = active[changed]
                vals = out[changed]
                est[ids] = vals
                walls, shipped = [], 0
            first_round = False
            runtime.begin_round()
            task_costs = model.vertex_op + model.edge_op * degrees[active]
            runtime.parallel_for(task_costs, barriers=1, tag="shard_hindex")
            if ids.size:
                runtime.parallel_for(
                    model.scan_op, count=int(ids.size), barriers=1,
                    tag="shard_exchange",
                )
            if registry is not None:
                registry.inc("shard.rounds")
                registry.inc("shard.deltas", float(ids.size))
                registry.inc("shard.bytes_shipped", float(shipped))
                if walls:
                    registry.observe(
                        "shard.round_imbalance_s",
                        max(walls) - min(walls),
                        family=WALL,
                    )
            if walls:
                round_walls.append(walls)
            if ids.size == 0:
                break
        else:
            raise RuntimeError(
                "shard H-index iteration did not converge within the "
                "round limit"
            )
        if tracer is not None:
            for shard in range(pool.shards if pool is not None else 0):
                offset = 0.0
                for index, walls in enumerate(round_walls, start=1):
                    tracer.host_span(
                        f"shard round {index}",
                        walls[shard],
                        track=f"worker {shard}",
                        start_s=offset,
                        round=index,
                    )
                    offset += walls[shard]
    finally:
        if own_pool and pool is not None:
            pool.close()
        if tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)

    return CorenessResult(
        coreness=est,
        metrics=runtime.metrics,
        algorithm="shard",
        model=model,
    )
