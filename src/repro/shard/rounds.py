"""Kernel-mode dispatch for the shard engine's Jacobi H-index rounds.

One round recomputes each active vertex's estimate as ``min(est[v],
H({est[u] : u in N(v)}))`` from a snapshot of the estimates — the
Montresor locality update (see :mod:`repro.core.locality`).  The
snapshot read is what makes the round *partition-independent*: the same
global active set produces the same new estimates whether one process
computes it or seven workers each compute a contiguous slice, which is
the invariant ``oracle-shard`` enforces bit-for-bit.

Three implementations, selected by the ``REPRO_KERNELS`` switch and
bit-exact with each other:

* ``native`` — the compiled ``hindex_round`` / ``mark_dirty`` kernels
  (:mod:`repro.perf.native`), a clipped-histogram H-index whose reset
  and suffix scans are bounded by ``O(deg(v))`` because estimates start
  at the degree bound and only decrease;
* ``vectorized`` — flat NumPy over the concatenated active
  neighborhoods (sort-rank H-index: ``H = #{j : sorted_desc[j] > j}``);
* ``reference`` — the straight-line Python loop over
  :func:`repro.core.locality.h_index`, kept as the equivalence oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.locality import h_index
from repro.perf import NATIVE, REFERENCE, kernel_mode

_EMPTY = np.zeros(0, dtype=np.int64)


def _flat_neighborhoods(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated neighbor lists of ``vertices`` plus segment shape.

    Returns ``(neighbors, seg_starts, counts)`` where ``neighbors`` is
    the concatenation of each vertex's adjacency row and segment ``i``
    occupies ``[seg_starts[i], seg_starts[i] + counts[i])``.
    """
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, np.zeros(vertices.size, dtype=np.int64), counts
    seg_ends = np.cumsum(counts)
    seg_starts = seg_ends - counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(
        starts - seg_starts, counts
    )
    return np.asarray(indices[flat], dtype=np.int64), seg_starts, counts


class RoundKernels:
    """Per-process round state: resolved kernel mode plus scratch buffers.

    Both the coordinator's inline path and every pool worker hold one of
    these over their (possibly mmap-backed) CSR arrays.  ``hist_size``
    must cover the largest initial estimate (``max degree + 2``); the
    dirty mask covers all ``n`` vertices because the compiled
    ``mark_dirty`` marks out-of-range neighbors too (harmlessly — the
    caller scans only its own range).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        hist_size: int,
        mode: str | None = None,
    ):
        self.indptr = indptr
        self.indices = indices
        self.mode = kernel_mode() if mode is None else mode
        self.dirty = np.zeros(int(indptr.size) - 1, dtype=np.uint8)
        self._hist = (
            np.zeros(max(int(hist_size), 1), dtype=np.int64)
            if self.mode == NATIVE
            else None
        )

    def hindex_round(
        self, est: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """New estimates of ``active``, from a snapshot of ``est``."""
        if active.size == 0:
            return _EMPTY
        if self.mode == NATIVE:
            from repro.perf.native import run_hindex_round

            out = np.empty(active.size, dtype=np.int64)
            return run_hindex_round(
                self.indptr, self.indices, est, active, out, self._hist
            )
        if self.mode == REFERENCE:
            return self._round_reference(est, active)
        return self._round_vectorized(est, active)

    def _round_reference(
        self, est: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        out = np.empty(active.size, dtype=np.int64)
        for i, v in enumerate(active):
            v = int(v)
            nbrs = np.asarray(
                self.indices[self.indptr[v] : self.indptr[v + 1]]
            )
            out[i] = min(int(est[v]), h_index(est[nbrs]))
        return out

    def _round_vectorized(
        self, est: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        neighbors, seg_starts, counts = _flat_neighborhoods(
            self.indptr, self.indices, active
        )
        if neighbors.size == 0:
            return np.minimum(np.asarray(est[active], dtype=np.int64), 0)
        vals = est[neighbors]
        clipped = np.minimum(vals, np.repeat(est[active], counts))
        seg_ids = np.repeat(
            np.arange(active.size, dtype=np.int64), counts
        )
        # Sort each segment descending; H = #{j : sorted_desc[j] > j}.
        order = np.lexsort((-clipped, seg_ids))
        ranks = np.arange(neighbors.size, dtype=np.int64) - np.repeat(
            seg_starts, counts
        )
        hits = clipped[order] > ranks
        return np.bincount(
            seg_ids[hits], minlength=active.size
        ).astype(np.int64)

    def next_active(
        self, changed: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """In-range neighbors of ``changed``, ascending (push-on-change)."""
        self.dirty[:] = 0
        if changed.size:
            if self.mode == NATIVE:
                from repro.perf.native import run_mark_dirty

                run_mark_dirty(
                    self.indptr, self.indices, changed, self.dirty
                )
            elif self.mode == REFERENCE:
                for v in changed:
                    v = int(v)
                    row = self.indices[self.indptr[v] : self.indptr[v + 1]]
                    self.dirty[np.asarray(row)] = 1
            else:
                neighbors, _, _ = _flat_neighborhoods(
                    self.indptr, self.indices, changed
                )
                self.dirty[neighbors] = 1
        return lo + np.nonzero(self.dirty[lo:hi])[0].astype(np.int64)
