"""``python -m repro.shard`` — one sharded decomposition, one report.

Typical invocations::

    python -m repro.shard GRID --tiny --workers 2
    python -m repro.shard LJ-S --size large --workers 4 --output lj.json
    python -m repro.shard HCNS --tiny --workers 0     # inline oracle path

The report is deliberately **worker-count invariant**: it pins the
graph, the coreness fingerprint, the round count and the full simulated
ledger — everything the exactness contract covers — and nothing that
legitimately varies with the pool size (walls, shipped bytes, the
partition).  CI's ``shard-smoke`` job runs this twice with different
worker counts and ``cmp``'s the files byte-for-byte.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

import numpy as np

from repro.bench.wallclock import measure
from repro.generators import suite
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.shard.engine import default_workers, shard_coreness

#: Schema version of the report emitted by this CLI.
SHARD_REPORT_VERSION = 1


def coreness_fingerprint(coreness: np.ndarray) -> str:
    """SHA-256 over the little-endian int64 coreness array."""
    data = np.ascontiguousarray(coreness, dtype="<i8").tobytes()
    return hashlib.sha256(data).hexdigest()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description=(
            "Run one sharded decomposition and write the worker-count "
            "invariant report (coreness fingerprint + simulated ledger)."
        ),
    )
    parser.add_argument(
        "graph",
        help="suite graph name (see repro.generators.suite.SUITE)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="shorthand for --size tiny",
    )
    parser.add_argument(
        "--size",
        default=None,
        choices=suite.SIZES,
        help="suite tier to run (default: the suite's default tier)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes; 0 runs the identical schedule inline "
        "(default: the CPUs available to this process)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="report path ('-' or omitted: stdout)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    size = "tiny" if args.tiny else args.size
    graph = suite.load(args.graph, size=size)
    workers = args.workers if args.workers is not None else default_workers()
    with measure() as wall:
        result = shard_coreness(
            graph, DEFAULT_COST_MODEL, workers=workers
        )
    report = {
        "shard_report_version": SHARD_REPORT_VERSION,
        "graph": {
            "name": args.graph,
            "size": size or "default",
            "n": int(graph.n),
            "m": int(graph.m),
        },
        "coreness_sha256": coreness_fingerprint(result.coreness),
        "kmax": int(result.coreness.max(initial=0)),
        "rounds": int(result.metrics.rounds),
        "metrics": result.metrics.to_stable_dict(DEFAULT_COST_MODEL),
    }
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    print(
        f"shard: {args.graph} n={graph.n} m={graph.m} "
        f"workers={workers} rounds={report['rounds']} "
        f"kmax={report['kmax']} wall={wall.wall_s:.3f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
