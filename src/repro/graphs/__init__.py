"""Graph substrate: CSR representation, I/O, and structural statistics."""

from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DirectedCSRGraph, random_digraph
from repro.graphs.io import (
    load_adjacency,
    load_edge_list,
    load_npz,
    save_adjacency,
    save_edge_list,
    save_npz,
)
from repro.graphs.transform import (
    add_edges,
    all_edges,
    disjoint_union,
    largest_connected_component,
    relabel_random,
    remove_edges,
    remove_vertices,
)
from repro.graphs.properties import (
    DENSITY_THETA,
    GraphStats,
    connected_components,
    degree_histogram,
    graph_stats,
    is_dense,
)

__all__ = [
    "CSRGraph",
    "DirectedCSRGraph",
    "DENSITY_THETA",
    "GraphStats",
    "connected_components",
    "degree_histogram",
    "graph_stats",
    "is_dense",
    "add_edges",
    "all_edges",
    "disjoint_union",
    "largest_connected_component",
    "load_adjacency",
    "load_edge_list",
    "load_npz",
    "save_adjacency",
    "save_edge_list",
    "random_digraph",
    "relabel_random",
    "remove_edges",
    "remove_vertices",
    "save_npz",
]
