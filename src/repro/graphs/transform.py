"""Graph transformations used by experiments and preprocessing.

Real k-core pipelines rarely run on raw dumps: they extract the largest
connected component, merge edge batches, and relabel vertices.  These
helpers keep everything in CSR land and are shared by the dynamic-update
benchmarks and the examples.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.properties import connected_components


def all_edges(graph: CSRGraph) -> np.ndarray:
    """Undirected edge list (each edge once, ``u < v``), shape ``(m, 2)``."""
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    mask = src < graph.indices
    return np.stack([src[mask], graph.indices[mask]], axis=1)


def largest_connected_component(graph: CSRGraph) -> CSRGraph:
    """Induced subgraph of the largest connected component (relabeled)."""
    if graph.n == 0:
        return graph
    labels = connected_components(graph)
    counts = np.bincount(labels)
    keep = np.nonzero(labels == int(counts.argmax()))[0]
    out = graph.induced_subgraph(keep)
    out.name = f"{graph.name}/lcc" if graph.name else "lcc"
    return out


def add_edges(
    graph: CSRGraph, edges: np.ndarray | list[tuple[int, int]]
) -> CSRGraph:
    """New graph with additional undirected edges (duplicates ignored)."""
    extra = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    merged = np.concatenate([all_edges(graph), extra])
    return CSRGraph.from_edges(graph.n, merged, name=graph.name)


def remove_edges(
    graph: CSRGraph, edges: np.ndarray | list[tuple[int, int]]
) -> CSRGraph:
    """New graph with the given undirected edges removed (if present)."""
    drop = {
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    }
    kept = [
        (int(u), int(v))
        for u, v in all_edges(graph)
        if (int(u), int(v)) not in drop
    ]
    return CSRGraph.from_edges(graph.n, kept, name=graph.name)


def remove_vertices(
    graph: CSRGraph, vertices: np.ndarray | list[int]
) -> CSRGraph:
    """New graph without the given vertices (survivors relabeled)."""
    drop = np.zeros(graph.n, dtype=bool)
    drop[np.asarray(vertices, dtype=np.int64)] = True
    keep = np.nonzero(~drop)[0]
    out = graph.induced_subgraph(keep)
    out.name = graph.name
    return out


def disjoint_union(a: CSRGraph, b: CSRGraph) -> CSRGraph:
    """The disjoint union of two graphs (b's ids shifted by a.n)."""
    edges_a = all_edges(a)
    edges_b = all_edges(b) + a.n
    merged = (
        np.concatenate([edges_a, edges_b])
        if edges_a.size or edges_b.size
        else np.zeros((0, 2), dtype=np.int64)
    )
    return CSRGraph.from_edges(
        a.n + b.n, merged, name=f"{a.name}+{b.name}"
    )


def relabel_random(graph: CSRGraph, seed: int = 0) -> CSRGraph:
    """Randomly permute vertex ids (isomorphic graph).

    Decomposition results must be invariant under relabeling; the test
    suite uses this to catch id-order-dependent bugs.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.n).astype(np.int64)
    edges = all_edges(graph)
    if edges.size:
        edges = np.stack([perm[edges[:, 0]], perm[edges[:, 1]]], axis=1)
    out = CSRGraph.from_edges(graph.n, edges, name=graph.name)
    return out


def permutation_of_relabel(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """The permutation :func:`relabel_random` applies (old id -> new id)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.n).astype(np.int64)
