"""Structural graph statistics used by the adaptive strategies and tables.

The paper classifies inputs into *dense* graphs (social / web networks,
HCNS, HPL — large average degree, high coreness) and *sparse* graphs (road,
k-NN, mesh, grid — small constant degrees), and its final HBS design switches
behaviour at average degree ``theta = 16`` (Sec. 5.3).  This module computes
those statistics and the classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

#: Average-degree threshold separating dense from sparse graphs; the same
#: constant the final HBS design switches at (paper Sec. 5.3).
DENSITY_THETA = 16.0


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one graph (the left block of Table 2)."""

    name: str
    n: int
    m: int
    max_degree: int
    average_degree: float
    degree_p99: float
    is_dense: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        kind = "dense" if self.is_dense else "sparse"
        return (
            f"{self.name or 'graph'}: n={self.n:,} m={self.m:,} "
            f"d_max={self.max_degree} d_avg={self.average_degree:.2f} "
            f"({kind})"
        )


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for a graph."""
    degrees = graph.degrees
    p99 = float(np.percentile(degrees, 99)) if graph.n else 0.0
    return GraphStats(
        name=graph.name,
        n=graph.n,
        m=graph.m,
        max_degree=graph.max_degree,
        average_degree=graph.average_degree,
        degree_p99=p99,
        is_dense=graph.average_degree > DENSITY_THETA,
    )


def is_dense(graph: CSRGraph, theta: float = DENSITY_THETA) -> bool:
    """Whether the average degree exceeds the density threshold ``theta``."""
    return graph.average_degree > theta


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Counts of vertices per degree (index d = number of degree-d vertices)."""
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(graph.degrees)


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (BFS; labels are 0..c-1 by discovery).

    Not on the peeling hot path — used by generators' self-checks and tests.
    """
    labels = np.full(graph.n, -1, dtype=np.int64)
    current = 0
    for root in range(graph.n):
        if labels[root] != -1:
            continue
        labels[root] = current
        frontier = np.array([root], dtype=np.int64)
        while frontier.size:
            neighbors = graph.gather_neighbors(frontier)
            fresh = neighbors[labels[neighbors] == -1]
            fresh = np.unique(fresh)
            labels[fresh] = current
            frontier = fresh
        current += 1
    return labels
