"""Graph serialization: edge-list text, adjacency text, and binary npz.

The formats are deliberately minimal but round-trip exactly:

* **edge list** — one ``u v`` pair per line; ``#``-prefixed comment lines
  and a optional ``# n <count>`` header are honoured (isolated trailing
  vertices are otherwise unrepresentable in an edge list);
* **adjacency text** — line ``i`` lists the neighbors of vertex ``i``
  (the METIS-like format many k-core datasets ship in);
* **npz** — numpy's compressed container holding ``indptr`` / ``indices``;
  the fastest option and the one the benchmark suite caches graphs in.
"""

from __future__ import annotations

import gzip
import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph


def _open_text(path: str | os.PathLike, mode: str):
    """Open a text file, transparently gzip'd when the name ends in .gz."""
    if os.fspath(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as an undirected edge list (each edge once, u < v)."""
    src = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr)
    )
    mask = src < graph.indices
    with _open_text(path, "w") as handle:
        handle.write(f"# n {graph.n}\n")
        for u, v in zip(src[mask], graph.indices[mask]):
            handle.write(f"{u} {v}\n")


def load_edge_list(
    path: str | os.PathLike, n: int | None = None, name: str = ""
) -> CSRGraph:
    """Read an edge-list file.

    Args:
        path: File with one ``u v`` pair per line.
        n: Vertex count; inferred as ``max id + 1`` when omitted, unless a
            ``# n <count>`` header is present.
        name: Label for the resulting graph (defaults to the file stem).
    """
    edges: list[tuple[int, int]] = []
    header_n: int | None = None
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "n":
                    header_n = int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    if n is None:
        n = header_n
    if n is None:
        n = 1 + max((max(u, v) for u, v in edges), default=-1)
    if not name:
        stem = os.path.basename(os.fspath(path))
        if stem.endswith(".gz"):
            stem = stem[:-3]
        name = os.path.splitext(stem)[0]
    return CSRGraph.from_edges(n, edges, name=name)


def save_adjacency(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as adjacency text (line i = neighbors of vertex i)."""
    with _open_text(path, "w") as handle:
        handle.write(f"{graph.n}\n")
        for v in range(graph.n):
            handle.write(" ".join(map(str, graph.neighbors(v))) + "\n")


def load_adjacency(path: str | os.PathLike, name: str = "") -> CSRGraph:
    """Read adjacency text written by :func:`save_adjacency`."""
    with _open_text(path, "r") as handle:
        first = handle.readline().strip()
        if not first:
            raise GraphFormatError(f"{path}: missing vertex-count header")
        n = int(first)
        edges: list[tuple[int, int]] = []
        for v in range(n):
            line = handle.readline()
            if line == "":
                raise GraphFormatError(
                    f"{path}: expected {n} adjacency rows, got {v}"
                )
            for token in line.split():
                edges.append((v, int(token)))
    if not name:
        stem = os.path.basename(os.fspath(path))
        if stem.endswith(".gz"):
            stem = stem[:-3]
        name = os.path.splitext(stem)[0]
    return CSRGraph.from_edges(n, edges, name=name)


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph to a compressed ``.npz`` container."""
    np.savez_compressed(
        path, indptr=graph.indptr, indices=graph.indices,
        name=np.array(graph.name),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Read a graph written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        try:
            indptr = data["indptr"]
            indices = data["indices"]
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: missing array {exc.args[0]!r}"
            ) from exc
        name = str(data["name"]) if "name" in data else ""
    return CSRGraph(indptr, indices, name=name)
