"""Graph serialization: edge-list text, adjacency text, and binary npz.

The formats are deliberately minimal but round-trip exactly:

* **edge list** — one ``u v`` pair per line; ``#``-prefixed comment lines
  and a optional ``# n <count>`` header are honoured (isolated trailing
  vertices are otherwise unrepresentable in an edge list);
* **adjacency text** — line ``i`` lists the neighbors of vertex ``i``
  (the METIS-like format many k-core datasets ship in);
* **npz** — numpy's compressed container holding ``indptr`` / ``indices``;
  the fastest option and the one the benchmark suite caches graphs in.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import tempfile
import zipfile
from typing import Mapping

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph


def _open_text(path: str | os.PathLike, mode: str):
    """Open a text file, transparently gzip'd when the name ends in .gz."""
    if os.fspath(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as an undirected edge list (each edge once, u < v)."""
    src = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr)
    )
    mask = src < graph.indices
    with _open_text(path, "w") as handle:
        handle.write(f"# n {graph.n}\n")
        for u, v in zip(src[mask], graph.indices[mask]):
            handle.write(f"{u} {v}\n")


def load_edge_list(
    path: str | os.PathLike, n: int | None = None, name: str = ""
) -> CSRGraph:
    """Read an edge-list file.

    Args:
        path: File with one ``u v`` pair per line.
        n: Vertex count; inferred as ``max id + 1`` when omitted, unless a
            ``# n <count>`` header is present.
        name: Label for the resulting graph (defaults to the file stem).
    """
    edges: list[tuple[int, int]] = []
    header_n: int | None = None
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "n":
                    header_n = int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    if n is None:
        n = header_n
    if n is None:
        n = 1 + max((max(u, v) for u, v in edges), default=-1)
    if not name:
        stem = os.path.basename(os.fspath(path))
        if stem.endswith(".gz"):
            stem = stem[:-3]
        name = os.path.splitext(stem)[0]
    return CSRGraph.from_edges(n, edges, name=name)


def save_adjacency(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as adjacency text (line i = neighbors of vertex i)."""
    with _open_text(path, "w") as handle:
        handle.write(f"{graph.n}\n")
        for v in range(graph.n):
            handle.write(" ".join(map(str, graph.neighbors(v))) + "\n")


def load_adjacency(path: str | os.PathLike, name: str = "") -> CSRGraph:
    """Read adjacency text written by :func:`save_adjacency`."""
    with _open_text(path, "r") as handle:
        first = handle.readline().strip()
        if not first:
            raise GraphFormatError(f"{path}: missing vertex-count header")
        n = int(first)
        edges: list[tuple[int, int]] = []
        for v in range(n):
            line = handle.readline()
            if line == "":
                raise GraphFormatError(
                    f"{path}: expected {n} adjacency rows, got {v}"
                )
            for token in line.split():
                edges.append((v, int(token)))
    if not name:
        stem = os.path.basename(os.fspath(path))
        if stem.endswith(".gz"):
            stem = stem[:-3]
        name = os.path.splitext(stem)[0]
    return CSRGraph.from_edges(n, edges, name=name)


#: Byte alignment of uncompressed npz member data (matches numpy's npy
#: header padding, ``ARRAY_ALIGN``), so mapped arrays are element-aligned.
NPZ_ALIGN = 64


def _save_npz_aligned(
    target, arrays: Mapping[str, np.ndarray]
) -> None:
    """Write a stored (uncompressed) npz with 64-byte-aligned members.

    ``np.savez`` makes no alignment promise: a member's data lands
    wherever the zip local header ends, so a memory-mapped int64 array
    can start at any byte offset.  Unaligned arrays are slower and —
    decisively — export a non-native PEP 3118 format (``=q``) that the
    scalar kernel memoryviews cannot index.  This writer pads each local
    header's extra field so the member payload (whose own npy header is
    64-padded by numpy) begins on a :data:`NPZ_ALIGN` boundary.
    """
    with zipfile.ZipFile(target, "w", zipfile.ZIP_STORED) as archive:
        for member_name, arr in arrays.items():
            buf = io.BytesIO()
            np.lib.format.write_array(
                buf, np.asarray(arr), allow_pickle=False
            )
            zinfo = zipfile.ZipInfo(
                member_name, date_time=(1980, 1, 1, 0, 0, 0)
            )
            zinfo.compress_type = zipfile.ZIP_STORED
            header_end = (
                archive.fp.tell()
                + 30
                + len(zinfo.filename.encode("ascii"))
            )
            pad = -header_end % NPZ_ALIGN
            if 0 < pad < 4:
                # A zip extra-field block is at least 4 bytes (id + len).
                pad += NPZ_ALIGN
            if pad:
                zinfo.extra = (
                    b"\x00\x00"
                    + int(pad - 4).to_bytes(2, "little")
                    + bytes(pad - 4)
                )
            archive.writestr(zinfo, buf.getvalue())


def save_npz(
    graph: CSRGraph, path: str | os.PathLike, compress: bool = True
) -> None:
    """Write a graph to an ``.npz`` container.

    ``compress=False`` stores the members raw with aligned data offsets
    (:func:`_save_npz_aligned`), which is what makes :func:`load_npz`'s
    memory-mapped path possible — mapped loads need the array bytes
    verbatim in the file, on an element-aligned boundary.
    """
    arrays = {
        "indptr.npy": graph.indptr,
        "indices.npy": graph.indices,
        "name.npy": np.array(graph.name),
    }
    if compress:
        np.savez_compressed(
            path, **{k[: -len(".npy")]: v for k, v in arrays.items()}
        )
    else:
        _save_npz_aligned(path, arrays)


def load_npz(
    path: str | os.PathLike, mmap: bool = False, strict: bool = False
) -> CSRGraph:
    """Read a graph written by :func:`save_npz`.

    With ``mmap=True``, uncompressed members are memory-mapped read-only
    instead of copied into fresh arrays — the graph cache's large-tier
    loads touch only the pages a run actually reads.  Compressed files
    (or any container the mapper cannot handle) silently fall back to a
    normal load, so the flag is always safe to pass.  ``strict=True``
    disables that fallback and propagates the mapper's error instead:
    the shard workers require a true mapping (a silently-copying load
    would defeat page-cache sharing) and must fail loudly on corrupt or
    unaligned cache files rather than diverge from their siblings.
    """
    if mmap:
        try:
            return _load_npz_mmap(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            if strict:
                raise

    with np.load(path, allow_pickle=False) as data:
        try:
            indptr = data["indptr"]
            indices = data["indices"]
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: missing array {exc.args[0]!r}"
            ) from exc
        name = str(data["name"]) if "name" in data else ""
    return CSRGraph(indptr, indices, name=name)


def _load_npz_mmap(path: str | os.PathLike) -> CSRGraph:
    """Map ``indptr`` / ``indices`` straight out of an uncompressed npz.

    ``np.load`` silently ignores ``mmap_mode`` for npz containers, but
    ``np.savez`` stores members with no compression at a discoverable
    offset, so each ``.npy`` member can be mapped in place: seek to the
    member's local header, skip it, parse the npy header, and hand the
    remaining extent to ``np.memmap``.  Raises on compressed members or
    unexpected layout; the caller falls back to a copying load.
    """
    with zipfile.ZipFile(path) as archive:
        with archive.open("name.npy") as member:
            name = str(np.lib.format.read_array(member, allow_pickle=False))
        arrays = {}
        with open(path, "rb") as handle:
            for member_name in ("indptr.npy", "indices.npy"):
                info = archive.getinfo(member_name)
                if info.compress_type != zipfile.ZIP_STORED:
                    raise ValueError(f"{member_name} is compressed")
                # Local file header: 30 fixed bytes, then the name and the
                # extra field (whose length can differ from the central
                # directory's copy, so it must be read from the file).
                handle.seek(info.header_offset)
                local = handle.read(30)
                if local[:4] != b"PK\x03\x04":
                    raise ValueError(f"{member_name}: bad local header")
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    header = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    header = np.lib.format.read_array_header_2_0(handle)
                else:
                    raise ValueError(f"npy version {version} unsupported")
                shape, fortran, dtype = header
                if fortran or dtype.hasobject:
                    raise ValueError(f"{member_name}: unmappable layout")
                offset = handle.tell()
                if offset % max(dtype.itemsize, 1):
                    # A misaligned map would be slow and would export a
                    # non-native buffer format the kernels reject; fall
                    # back to the copying load (files written by
                    # save_npz(compress=False) are always aligned).
                    raise ValueError(f"{member_name}: unaligned data")
                arrays[member_name] = np.memmap(
                    path, mode="r", dtype=dtype, shape=shape,
                    offset=offset,
                )
    return CSRGraph(
        arrays["indptr.npy"], arrays["indices.npy"], name=name
    )


# ----------------------------------------------------------------------
# Content-keyed graph cache
# ----------------------------------------------------------------------

#: Bump to invalidate every cached graph (e.g. a CSR layout change).
GRAPH_CACHE_VERSION = 2


def graph_cache_key(generator: str, params: Mapping[str, object]) -> str:
    """Content key for a generated graph: hash of recipe, not of output.

    The key covers the generator name, every parameter (seeds included)
    and the cache format version, so any recipe change — a new seed, a
    retuned size, a cache-format bump — lands in a fresh file instead of
    silently reusing a stale one.  Deliberately *not* covered: anything
    environmental (paths, env vars, time), which would make the key
    non-reproducible across machines; the lint rule R003 enforces this.
    """
    payload = {
        "cache_version": GRAPH_CACHE_VERSION,
        "generator": generator,
        "params": dict(sorted(params.items())),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:32]


def cached_graph_path(
    cache_dir: str | os.PathLike, name: str, size: str, key: str
) -> str:
    """File path of a cached suite graph (key in the name => self-invalidating)."""
    return os.path.join(os.fspath(cache_dir), f"{name}.{size}.{key}.npz")


def load_cached_graph(path: str | os.PathLike) -> CSRGraph | None:
    """Load a cache entry, or ``None`` when absent or unreadable.

    A corrupt entry (interrupted writer predating the atomic rename,
    disk trouble) is treated as a miss — the caller rebuilds and
    overwrites it.
    """
    if not os.path.exists(path):
        return None
    try:
        return load_npz(path, mmap=True)
    except (OSError, ValueError, zipfile.BadZipFile, GraphFormatError):
        return None


def store_cached_graph(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a cache entry atomically (tmp file + rename).

    Uncompressed so loads can memory-map; atomic so concurrent benchmark
    workers never observe a half-written file — the last writer wins with
    a bit-identical payload (the key pins the recipe).
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            save_npz(graph, handle, compress=False)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
