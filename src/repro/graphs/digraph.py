"""Directed graph representation (dual-CSR) for the D-core extension.

The paper's related work (Sec. 7) covers D-core decomposition on directed
graphs (Giatsidis et al. 2013; Liao et al. 2022; Luo et al. 2024).  A
:class:`DirectedCSRGraph` stores both the out-adjacency and in-adjacency
in CSR form so peeling can decrement in- and out-degrees symmetrically.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph


class DirectedCSRGraph:
    """A simple directed graph with both adjacency directions in CSR."""

    def __init__(self, n: int, edges: np.ndarray | list[tuple[int, int]],
                 name: str = "") -> None:
        if n < 0:
            raise GraphFormatError(f"negative vertex count: {n}")
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(
                f"edge list must have shape (m, 2), got {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise GraphFormatError("edge endpoint out of range")
        keep = arr[:, 0] != arr[:, 1]
        arr = arr[keep]
        # Deduplicate arcs.
        key = np.unique(arr[:, 0] * np.int64(max(n, 1)) + arr[:, 1])
        src = key // max(n, 1)
        dst = key % max(n, 1)

        self.n = n
        self.name = name
        self.out = CSRGraph.from_edges(
            n, np.stack([src, dst], axis=1), symmetrize=False,
            name=f"{name}/out",
        )
        self.inn = CSRGraph.from_edges(
            n, np.stack([dst, src], axis=1), symmetrize=False,
            name=f"{name}/in",
        )

    @property
    def m(self) -> int:
        """Number of arcs."""
        return self.out.m

    @cached_property
    def out_degrees(self) -> np.ndarray:
        return self.out.degrees

    @cached_property
    def in_degrees(self) -> np.ndarray:
        return self.inn.degrees

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.out.neighbors(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        return self.inn.neighbors(v)

    def as_undirected(self) -> CSRGraph:
        """Forget directions (symmetrize)."""
        src = np.repeat(
            np.arange(self.n, dtype=np.int64), self.out.degrees
        )
        return CSRGraph.from_edges(
            self.n,
            np.stack([src, self.out.indices], axis=1),
            name=self.name,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"DirectedCSRGraph({label} n={self.n}, m={self.m})"


def random_digraph(
    n: int, avg_out_degree: float, seed: int = 0, name: str = ""
) -> DirectedCSRGraph:
    """Uniform random digraph with the given expected out-degree."""
    rng = np.random.default_rng(seed)
    m = int(n * avg_out_degree)
    edges = rng.integers(0, max(n, 1), size=(m, 2), dtype=np.int64)
    return DirectedCSRGraph(n, edges, name=name or f"digraph-{n}")
