"""Compressed sparse row (CSR) graph representation.

All algorithms in this library operate on undirected simple graphs stored in
CSR form: an ``indptr`` array of length ``n + 1`` and an ``indices`` array of
length ``2 * |E|`` holding each vertex's sorted neighbor list.  This matches
the representation used by the paper's C++ implementation (and by GBBS /
Ligra), and keeps the peeling loops vectorizable with numpy.

Directed inputs are symmetrized on construction, mirroring the paper's
data preparation ("directed graphs are symmetrized by converting edges to
bidirectional", Sec. 6.1.1).  Self-loops and duplicate edges are removed.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import GraphFormatError, InvalidGraphError


class CSRGraph:
    """An undirected simple graph in compressed sparse row form.

    Attributes:
        indptr: int64 array of length ``n + 1``; vertex ``v``'s neighbors are
            ``indices[indptr[v]:indptr[v + 1]]``.
        indices: int64 array of length ``2 * |E|``, sorted within each row.
        name: Optional human-readable label (used in benchmark tables).
    """

    __slots__ = ("indptr", "indices", "name", "__dict__")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        name: str = "",
        validate: bool = True,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.name = name
        if validate:
            self._validate()

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise InvalidGraphError("indptr and indices must be 1-D arrays")
        if self.indptr.size == 0:
            raise InvalidGraphError("indptr must have length n + 1 >= 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise InvalidGraphError(
                "indptr must start at 0 and end at len(indices)"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise InvalidGraphError("indptr must be non-decreasing")
        n = self.indptr.size - 1
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise InvalidGraphError("neighbor index out of range")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: np.ndarray | list[tuple[int, int]],
        name: str = "",
        symmetrize: bool = True,
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Args:
            n: Number of vertices (ids ``0 .. n-1``).
            edges: Array of shape ``(m, 2)`` or list of pairs.  Treated as
                directed arcs; with ``symmetrize=True`` (the default, and the
                paper's convention) each arc also contributes its reverse.
            name: Label for reporting.
            symmetrize: Add reverse arcs before deduplication.

        Self-loops and duplicate (multi-)edges are dropped.
        """
        if n < 0:
            raise GraphFormatError(f"negative vertex count: {n}")
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(
                f"edge list must have shape (m, 2), got {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise GraphFormatError("edge endpoint out of range")

        src, dst = arr[:, 0], arr[:, 1]
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if symmetrize:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
        # Deduplicate arcs via a fused key sort.
        key = src * np.int64(n) + dst
        key = np.unique(key)
        src = key // n
        dst = key % n

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        # Arcs are already sorted by (src, dst) thanks to the key sort.
        return cls(indptr, dst, name=name, validate=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.indptr.size - 1

    @property
    def m(self) -> int:
        """Number of directed arcs (``2 *`` undirected edge count)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.size // 2

    @cached_property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex (int64 array of length ``n``)."""
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        """Largest degree, 0 for the empty graph."""
        if self.n == 0:
            return 0
        return int(self.degrees.max())

    @property
    def average_degree(self) -> float:
        """Average degree ``m / n`` (counting arcs), 0 for the empty graph."""
        if self.n == 0:
            return 0.0
        return self.m / self.n

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor list of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    # ------------------------------------------------------------------
    # Bulk operations used by the peeling algorithms
    # ------------------------------------------------------------------
    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of all frontier vertices.

        This is the list ``L`` of the offline peel (Alg. 2 line 3) and the
        flattened iteration space of the online peel's nested parallel-for.
        Fully vectorized: no per-vertex Python loop.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return np.zeros(0, dtype=np.int64)
        starts = self.indptr[frontier]
        lengths = self.indptr[frontier + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        # Offsets trick: positions [0, total) mapped into self.indices.
        ends = np.cumsum(lengths)
        first = np.repeat(starts - (ends - lengths), lengths)
        flat = first + np.arange(total, dtype=np.int64)
        return self.indices[flat]

    def frontier_edge_count(self, frontier: np.ndarray) -> int:
        """Total neighborhood size of a frontier (peel work of a subround)."""
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return 0
        return int(
            (self.indptr[frontier + 1] - self.indptr[frontier]).sum()
        )

    def induced_subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Subgraph induced by ``vertices``, with vertices relabeled 0..k-1.

        Used to materialize a specific ``G_k`` from a decomposition and by
        the max k'-core extraction of Appendix B.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        keep = np.zeros(self.n, dtype=bool)
        keep[vertices] = True
        relabel = np.full(self.n, -1, dtype=np.int64)
        relabel[vertices] = np.arange(vertices.size, dtype=np.int64)

        src = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
        )
        mask = keep[src] & keep[self.indices]
        edges = np.stack(
            [relabel[src[mask]], relabel[self.indices[mask]]], axis=1
        )
        return CSRGraph.from_edges(
            vertices.size, edges, name=f"{self.name}/induced",
            symmetrize=False,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"CSRGraph({label} n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)
