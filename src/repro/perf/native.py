"""Native VGC peel kernel: a tiny C routine compiled on first use.

The VGC task loop is inherently sequential at the absorption level (a
crossing vertex joins the *current* queue and consumes budget that later
crossings observe), which caps what pure NumPy batching can do for the
small-expansion regime that dominates real frontiers.  This module
compiles the reference task loop — minus the RNG — to a shared library
with whatever C compiler the host provides, and loads it with
``ctypes``.  No third-party packages, no build system: one ``cc -O2
-shared`` invocation, cached by source hash under ``_build/``.

Exactness: the C routine is a line-for-line transcription of
``OnlinePeel._vgc_task_loop_reference`` with two provably invisible
changes (see docs/PERFORMANCE.md):

* **Deferred RNG draws.**  Sampled-edge coin flips never influence the
  task loop itself (sample mode is fixed within a subround, sampled
  edges never decrement, and the flip cost is charged per encounter
  regardless of the outcome), so the kernel only records the encounter
  stream and Python draws ``rng.random(total)`` afterwards — the same
  values the reference drew one at a time, in the same order.
* **Batched counter updates.**  Sampler hit counters are incremented
  once per distinct vertex at subround end; nothing reads them inside
  the loop, and the saturation event ``cnt == mu`` is recovered exactly
  from the old/new counter values (unit increments cannot skip ``mu``).

When no compiler is available (or compilation fails for any reason) the
kernel reports unavailable and ``REPRO_KERNELS=auto`` falls back to the
NumPy kernels — behavior, payloads and goldens are identical either way.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.obs.registry import active_registry

_SOURCE = r"""
#include <stdint.h>

/* The VGC task loop of the online peel (paper Alg. 3 + Sec. 4.2 local
 * searches), transcribed from the Python reference implementation.
 * Sampled edges are recorded, not drawn: the caller replays the RNG
 * stream afterwards (deferral is exact; see the module docstring). */
void vgc_peel_tasks(
    const int64_t *indptr,
    const int64_t *indices,
    int64_t *dtilde,
    uint8_t *peeled,
    int64_t *coreness,
    const uint8_t *mode,      /* NULL when sampling is inactive */
    const int64_t *frontier,
    int64_t n_tasks,
    int64_t k,
    int64_t budget,
    int64_t edge_budget,
    int64_t *queue,           /* scratch, capacity >= budget */
    int64_t *dec_out,         /* decrement targets, stream order */
    int64_t *enc_out,         /* sampled-edge encounters, stream order */
    int64_t *nf_out,          /* crossings denied absorption */
    int64_t *scratch,         /* all-zero per-vertex decrement counters */
    int64_t *touched_out,     /* first-touch list, capacity >= n */
    int64_t *nv_out,          /* per task: queue items processed */
    int64_t *ne_out,          /* per task: edges seen */
    int64_t *ns_out,          /* per task: sampled edges seen */
    int64_t *counters)        /* [dec, enc, nf, local_search_hits, touched] */
{
    int64_t dp = 0, ep = 0, fp = 0, ls = 0, tp = 0;
    int64_t k1 = k + 1;
    for (int64_t t = 0; t < n_tasks; t++) {
        int64_t head = 0, qlen = 1;
        int64_t nv = 0, ne = 0, ns = 0;
        queue[0] = frontier[t];
        while (head < qlen) {
            int64_t v = queue[head++];
            nv++;
            int64_t end = indptr[v + 1];
            for (int64_t i = indptr[v]; i < end; i++) {
                int64_t u = indices[i];
                ne++;
                if (mode && mode[u]) {
                    ns++;
                    enc_out[ep++] = u;
                    continue;
                }
                int64_t old = dtilde[u];
                dtilde[u] = old - 1;
                dec_out[dp++] = u;
                if (scratch[u]++ == 0)
                    touched_out[tp++] = u;
                if (old == k1 && !peeled[u]) {
                    if (qlen < budget && ne < edge_budget) {
                        queue[qlen++] = u;
                        coreness[u] = k;
                        peeled[u] = 1;
                        ls++;
                    } else {
                        nf_out[fp++] = u;
                    }
                }
            }
        }
        nv_out[t] = nv;
        ne_out[t] = ne;
        ns_out[t] = ns;
    }
    counters[0] = dp;
    counters[1] = ep;
    counters[2] = fp;
    counters[3] = ls;
    counters[4] = tp;
}

/* The PKC round drain (Kabir & Madduri 2017), transcribed from the
 * Python reference loop in core/baselines/pkc.py: the frontier is
 * statically partitioned over p thread-local FIFO buffers and each
 * thread drains its buffer sequentially, claiming every vertex its own
 * decrements drop from k+1 to k.  Contention bookkeeping is batched:
 * instead of appending every decrement target to a stream, per-vertex
 * counts accumulate in the caller's all-zero scratch array with a
 * first-touch list (the count multiset is identical, and the caller
 * only consumes its max and sum). */
void pkc_chain_drain(
    const int64_t *indptr,
    const int64_t *indices,
    int64_t *dtilde,
    uint8_t *peeled,
    int64_t *coreness,
    const int64_t *frontier,
    int64_t n_front,
    int64_t k,
    int64_t p,
    int64_t *queue,           /* scratch, capacity >= n */
    int64_t *scratch,         /* all-zero per-vertex counters */
    int64_t *touched_out,     /* first-touch list, capacity >= n */
    int64_t *nv_out,          /* per thread: queue items processed */
    int64_t *ne_out,          /* per thread: edges seen */
    int64_t *counters)        /* [touched, claimed] */
{
    int64_t tp = 0, claimed = 0;
    int64_t k1 = k + 1;
    for (int64_t tid = 0; tid < p; tid++) {
        int64_t head = 0, qlen = 0;
        for (int64_t i = tid; i < n_front; i += p)
            queue[qlen++] = frontier[i];
        int64_t nv = 0, ne = 0;
        while (head < qlen) {
            int64_t v = queue[head++];
            nv++;
            int64_t end = indptr[v + 1];
            for (int64_t e = indptr[v]; e < end; e++) {
                int64_t u = indices[e];
                ne++;
                int64_t old = dtilde[u];
                dtilde[u] = old - 1;
                if (scratch[u]++ == 0)
                    touched_out[tp++] = u;
                if (old == k1 && !peeled[u]) {
                    /* The atomic claim: the chain stays on this thread. */
                    peeled[u] = 1;
                    coreness[u] = k;
                    claimed++;
                    queue[qlen++] = u;
                }
            }
        }
        nv_out[tid] = nv;
        ne_out[tid] = ne;
    }
    counters[0] = tp;
    counters[1] = claimed;
}

/* Fused gather + histogram + apply over a frontier's neighborhoods:
 * one pass counts occurrences per target (first-touch list into the
 * caller's all-zero scratch), a second applies the batched decrements.
 * Equivalent to batch_decrement(dtilde, gather_neighbors(frontier), k)
 * without materializing or sorting the target stream. */
void scan_peel(
    const int64_t *indptr,
    const int64_t *indices,
    int64_t *dtilde,
    const int64_t *frontier,
    int64_t n_front,
    int64_t *scratch,         /* all-zero per-vertex counters */
    int64_t *touched_out,     /* first-touch list, capacity >= n */
    int64_t *counters)        /* [touched] */
{
    int64_t tp = 0;
    for (int64_t i = 0; i < n_front; i++) {
        int64_t v = frontier[i];
        int64_t end = indptr[v + 1];
        for (int64_t e = indptr[v]; e < end; e++) {
            int64_t u = indices[e];
            if (scratch[u]++ == 0)
                touched_out[tp++] = u;
        }
    }
    for (int64_t i = 0; i < tp; i++) {
        int64_t u = touched_out[i];
        dtilde[u] -= scratch[u];
    }
    counters[0] = tp;
}

/* One Jacobi H-index round over the active set (paper Sec. 2 locality:
 * kappa(v) = H({kappa(u) : u in N(v)})), shared by the shard workers
 * and the inline coordinator.  Estimates start at the degree bound and
 * only decrease, so clipping neighbor values at the vertex's own
 * estimate e bounds both the suffix scan and the histogram reset by
 * O(deg(v)) -- the histogram stays all-zero between vertices.  Reads
 * est as a snapshot (out is disjoint), which is what makes the round
 * partition-independent. */
void hindex_round(
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *est,
    const int64_t *active,
    int64_t n_active,
    int64_t *out,             /* capacity >= n_active */
    int64_t *hist)            /* all-zero, capacity >= max(est) + 2 */
{
    for (int64_t i = 0; i < n_active; i++) {
        int64_t v = active[i];
        int64_t e = est[v];
        if (e <= 0) {
            out[i] = 0;
            continue;
        }
        int64_t end = indptr[v + 1];
        for (int64_t p = indptr[v]; p < end; p++) {
            int64_t c = est[indices[p]];
            if (c > e)
                c = e;
            hist[c]++;
        }
        int64_t total = 0, h = e;
        for (; h > 0; h--) {
            total += hist[h];
            if (total >= h)
                break;
        }
        out[i] = h;
        for (int64_t c = 0; c <= e; c++)
            hist[c] = 0;
    }
}

/* Mark every neighbor of a changed vertex dirty: the push half of the
 * push-on-change schedule.  Out-of-range marks are harmless (callers
 * scan only their own vertex range for the next active set). */
void mark_dirty(
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *changed,
    int64_t n_changed,
    uint8_t *dirty)           /* capacity >= n */
{
    for (int64_t i = 0; i < n_changed; i++) {
        int64_t v = changed[i];
        int64_t end = indptr[v + 1];
        for (int64_t p = indptr[v]; p < end; p++)
            dirty[indices[p]] = 1;
    }
}

/* The full-array frontier scan of the scan-based baselines: pack every
 * unpeeled vertex with dtilde <= k, ascending (np.nonzero order). */
void scan_frontier(
    const int64_t *dtilde,
    const uint8_t *peeled,
    int64_t n,
    int64_t k,
    int64_t *out,             /* capacity >= n */
    int64_t *counters)        /* [matches] */
{
    int64_t fp = 0;
    for (int64_t v = 0; v < n; v++) {
        if (!peeled[v] && dtilde[v] <= k)
            out[fp++] = v;
    }
    counters[0] = fp;
}
"""

#: Per-task counter outputs of the C kernel (``<name>_out`` parameters)
#: mapped to the :class:`repro.runtime.cost_model.CostModel` field each
#: is priced with in the dyadic closed form of
#: :func:`repro.perf.kernels.vgc_peel_tasks_native`.  The R007 lint rule
#: cross-checks this table against the embedded C source, the ctypes
#: signature, and the cost model — editing any side without the others
#: is exactly the drift it exists to catch.
COST_COUNTERS = {
    "nv": "vertex_op",
    "ne": "edge_op",
    "ns": "sample_flip_op",
}

#: Same cross-check for the PKC chain-drain kernel: its per-thread
#: counter outputs mapped to the cost-model fields each is priced with
#: in :func:`repro.perf.kernels.pkc_thread_works` (the reference drain
#: charges every edge with *both* ``edge_op`` and ``atomic_op``).
PKC_COST_COUNTERS = {
    "nv": "vertex_op",
    "ne": ["edge_op", "atomic_op"],
}


def kernel_source() -> str:
    """The embedded C source of the compiled kernel (for tooling)."""
    return _SOURCE


_BUILD_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")

_lib: ctypes.CDLL | None = None
_available: bool | None = None


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _so_path() -> str:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    return os.path.join(_BUILD_DIR, f"_vgc_kernel-{digest}.so")


def _build() -> str | None:
    """Compile the kernel (once per source version); return the .so path."""
    registry = active_registry()
    path = _so_path()
    if os.path.exists(path):
        if registry is not None:
            registry.inc("cache.native_so.hit")
        return path
    cc = _compiler()
    if cc is None:
        return None
    os.makedirs(_BUILD_DIR, exist_ok=True)
    try:
        with tempfile.TemporaryDirectory(dir=_BUILD_DIR) as work:
            src = os.path.join(work, "_vgc_kernel.c")
            out = os.path.join(work, "_vgc_kernel.so")
            with open(src, "w", encoding="ascii") as handle:
                handle.write(_SOURCE)
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", out, src],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(out, path)  # atomic: concurrent builders agree
    except (OSError, subprocess.SubprocessError):
        if registry is not None:
            registry.inc("cache.native_so.build_failed")
        return None
    if registry is not None:
        registry.inc("cache.native_so.build")
    return path


def _load() -> ctypes.CDLL | None:
    global _lib, _available
    if _available is not None:
        return _lib
    path = _build()
    if path is None:
        _available = False
        return None
    try:
        lib = ctypes.CDLL(path)
        fn = lib.vgc_peel_tasks
        pkc = lib.pkc_chain_drain
        peel = lib.scan_peel
        scan = lib.scan_frontier
        hind = lib.hindex_round
        dirty = lib.mark_dirty
    except (OSError, AttributeError):
        _available = False
        return None
    fn.restype = None
    fn.argtypes = [ctypes.c_void_p] * 7 + [ctypes.c_int64] * 4 + [
        ctypes.c_void_p
    ] * 10
    pkc.restype = None
    pkc.argtypes = [ctypes.c_void_p] * 6 + [ctypes.c_int64] * 3 + [
        ctypes.c_void_p
    ] * 6
    peel.restype = None
    peel.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_int64] * 1 + [
        ctypes.c_void_p
    ] * 3
    scan.restype = None
    scan.argtypes = [ctypes.c_void_p] * 2 + [ctypes.c_int64] * 2 + [
        ctypes.c_void_p
    ] * 2
    hind.restype = None
    hind.argtypes = [ctypes.c_void_p] * 4 + [ctypes.c_int64] * 1 + [
        ctypes.c_void_p
    ] * 2
    dirty.restype = None
    dirty.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_int64] * 1 + [
        ctypes.c_void_p
    ] * 1
    _lib = lib
    _available = True
    return _lib


def available() -> bool:
    """Whether the native kernel is usable on this host (builds lazily)."""
    return _load() is not None


def _ptr(array: np.ndarray | None) -> ctypes.c_void_p | None:
    if array is None:
        return None
    return ctypes.c_void_p(array.ctypes.data)


_NO_ENC = np.zeros(0, dtype=np.int64)


def run_task_loop(
    graph,
    dtilde: np.ndarray,
    peeled: np.ndarray,
    coreness: np.ndarray,
    mode: np.ndarray | None,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
    scratch=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray, int, np.ndarray]:
    """Run every local search of a subround in the compiled kernel.

    Mutates ``dtilde`` / ``peeled`` / ``coreness`` exactly like the
    reference loop and returns ``(dec, enc, next_frontier, nv, ne, ns,
    local_search_hits, marks)`` where ``dec`` / ``enc`` are the
    decrement and sampled-encounter streams in task-major order, ``nv``
    / ``ne`` / ``ns`` are the per-task item / edge / sampled-edge
    counts, and ``marks`` is the first-touch list of distinct decrement
    targets whose multiplicities the kernel accumulated into the
    scratch count buffer (the caller reads and re-zeros them).  When a
    :class:`repro.perf.kernels.KernelScratch` arena is provided the flat
    buffers come from it (returned streams are views valid until the
    next kernel call on the same arena).
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    indptr, indices = graph.indptr, graph.indices
    frontier = np.ascontiguousarray(frontier, dtype=np.int64)
    n_tasks = int(frontier.size)
    # Stream capacities: every queue item is expanded at most once and the
    # item sets of distinct tasks are disjoint, so the total edge stream is
    # bounded by the degree sum of all vertices — indices.size.  Denied
    # crossings are bounded by one crossing per vertex per subround.
    counters = np.zeros(5, dtype=np.int64)
    if scratch is not None:
        # Buffer *and* pointer reuse: the run-stable arrays go through
        # the scratch pointer cache, so the per-subround call pays two
        # ctypes conversions (frontier, counters) instead of seventeen.
        sp = scratch.ptr
        dec = scratch.dec_buf()
        enc = scratch.enc_buf() if mode is not None else _NO_ENC
        nf = scratch.nf_buf()
        queue = scratch.queue_buf(budget)
        count = scratch.count_buf()
        touched = scratch.touched_buf()
        nv_all, ne_all, ns_all = scratch.task_bufs()
        nv = nv_all[:n_tasks]
        ne = ne_all[:n_tasks]
        ns = ns_all[:n_tasks]
        lib.vgc_peel_tasks(
            sp(indptr),
            sp(indices),
            sp(dtilde),
            sp(scratch.u8(peeled)),
            sp(coreness),
            sp(scratch.u8(mode)) if mode is not None else None,
            _ptr(frontier),
            n_tasks,
            int(k),
            int(budget),
            int(edge_budget),
            sp(queue),
            sp(dec),
            sp(enc),
            sp(nf),
            sp(count),
            sp(touched),
            sp(nv_all),
            sp(ne_all),
            sp(ns_all),
            _ptr(counters),
        )
    else:
        cap = int(indices.size)
        dec = np.empty(cap, dtype=np.int64)
        enc = np.empty(cap if mode is not None else 0, dtype=np.int64)
        nf = np.empty(graph.n, dtype=np.int64)
        queue = np.empty(max(int(budget), 1), dtype=np.int64)
        count = np.zeros(graph.n, dtype=np.int64)
        touched = np.empty(graph.n, dtype=np.int64)
        nv = np.empty(n_tasks, dtype=np.int64)
        ne = np.empty(n_tasks, dtype=np.int64)
        ns = np.empty(n_tasks, dtype=np.int64)
        mode_u8 = mode.view(np.uint8) if mode is not None else None
        lib.vgc_peel_tasks(
            _ptr(indptr),
            _ptr(indices),
            _ptr(dtilde),
            _ptr(peeled.view(np.uint8)),
            _ptr(coreness),
            _ptr(mode_u8),
            _ptr(frontier),
            n_tasks,
            int(k),
            int(budget),
            int(edge_budget),
            _ptr(queue),
            _ptr(dec),
            _ptr(enc),
            _ptr(nf),
            _ptr(count),
            _ptr(touched),
            _ptr(nv),
            _ptr(ne),
            _ptr(ns),
            _ptr(counters),
        )
    dp, ep, fp, ls, tp = (int(x) for x in counters)
    return (
        dec[:dp],
        enc[:ep] if mode is not None else enc,
        nf[:fp].copy(),
        nv,
        ne,
        ns,
        ls,
        touched[:tp],
    )


def run_pkc_round(
    graph,
    dtilde: np.ndarray,
    peeled: np.ndarray,
    coreness: np.ndarray,
    frontier: np.ndarray,
    k: int,
    p: int,
    queue: np.ndarray,
    counts: np.ndarray,
    touched: np.ndarray,
    scratch=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run one PKC round's chain drains in the compiled kernel.

    Mutates ``dtilde`` / ``peeled`` / ``coreness`` exactly like the
    reference drain, accumulates per-target decrement counts into the
    caller's all-zero ``counts`` scratch (caller re-zeros its marks) and
    returns ``(nv, ne, marks, claimed)`` with per-thread item / edge
    counters and the first-touch list as a view into ``touched``.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    frontier = np.ascontiguousarray(frontier, dtype=np.int64)
    nv = np.empty(p, dtype=np.int64)
    ne = np.empty(p, dtype=np.int64)
    counters = np.zeros(2, dtype=np.int64)
    if scratch is not None:
        sp = scratch.ptr
        peeled_p = sp(scratch.u8(peeled))
    else:
        sp = _ptr
        peeled_p = _ptr(peeled.view(np.uint8))
    lib.pkc_chain_drain(
        sp(graph.indptr),
        sp(graph.indices),
        sp(dtilde),
        peeled_p,
        sp(coreness),
        _ptr(frontier),
        int(frontier.size),
        int(k),
        int(p),
        sp(queue),
        sp(counts),
        sp(touched),
        _ptr(nv),
        _ptr(ne),
        _ptr(counters),
    )
    tp, claimed = (int(x) for x in counters)
    return nv, ne, touched[:tp], claimed


def run_scan_peel(
    graph,
    dtilde: np.ndarray,
    frontier: np.ndarray,
    counts: np.ndarray,
    touched: np.ndarray,
    scratch=None,
) -> np.ndarray:
    """Fused gather + count + decrement-apply in the compiled kernel.

    Accumulates per-target occurrence counts into the caller's all-zero
    ``counts`` scratch (caller re-zeros its marks), applies the batched
    decrements to ``dtilde`` and returns the first-touch list as a view
    into ``touched`` (unsorted).
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    frontier = np.ascontiguousarray(frontier, dtype=np.int64)
    counters = np.zeros(1, dtype=np.int64)
    sp = scratch.ptr if scratch is not None else _ptr
    lib.scan_peel(
        sp(graph.indptr),
        sp(graph.indices),
        sp(dtilde),
        _ptr(frontier),
        int(frontier.size),
        sp(counts),
        sp(touched),
        _ptr(counters),
    )
    return touched[: int(counters[0])]


def run_scan_frontier(
    dtilde: np.ndarray,
    peeled: np.ndarray,
    k: int,
    out: np.ndarray,
    scratch=None,
) -> np.ndarray:
    """Pack the unpeeled vertices with ``dtilde <= k`` (ascending)."""
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    counters = np.zeros(1, dtype=np.int64)
    if scratch is not None:
        dtilde_p = scratch.ptr(dtilde)
        peeled_p = scratch.ptr(scratch.u8(peeled))
        out_p = scratch.ptr(out)
    else:
        dtilde_p = _ptr(dtilde)
        peeled_p = _ptr(peeled.view(np.uint8))
        out_p = _ptr(out)
    lib.scan_frontier(
        dtilde_p,
        peeled_p,
        int(dtilde.size),
        int(k),
        out_p,
        _ptr(counters),
    )
    return out[: int(counters[0])].copy()


def run_hindex_round(
    indptr: np.ndarray,
    indices: np.ndarray,
    est: np.ndarray,
    active: np.ndarray,
    out: np.ndarray,
    hist: np.ndarray,
) -> np.ndarray:
    """One Jacobi H-index round over ``active`` in the compiled kernel.

    Reads ``est`` as a snapshot and writes the new estimate of
    ``active[i]`` to ``out[i]``; ``hist`` is an all-zero scratch of
    capacity ``max(est) + 2`` that the kernel leaves all-zero.  All
    arrays are contiguous int64 (mmap-backed views included).
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    active = np.ascontiguousarray(active, dtype=np.int64)
    lib.hindex_round(
        _ptr(indptr),
        _ptr(indices),
        _ptr(est),
        _ptr(active),
        int(active.size),
        _ptr(out),
        _ptr(hist),
    )
    return out[: active.size]


def run_mark_dirty(
    indptr: np.ndarray,
    indices: np.ndarray,
    changed: np.ndarray,
    dirty: np.ndarray,
) -> None:
    """Mark every neighbor of ``changed`` in the uint8 ``dirty`` mask."""
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    changed = np.ascontiguousarray(changed, dtype=np.int64)
    lib.mark_dirty(
        _ptr(indptr),
        _ptr(indices),
        _ptr(changed),
        int(changed.size),
        _ptr(dirty),
    )
