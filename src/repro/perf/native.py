"""Native VGC peel kernel: a tiny C routine compiled on first use.

The VGC task loop is inherently sequential at the absorption level (a
crossing vertex joins the *current* queue and consumes budget that later
crossings observe), which caps what pure NumPy batching can do for the
small-expansion regime that dominates real frontiers.  This module
compiles the reference task loop — minus the RNG — to a shared library
with whatever C compiler the host provides, and loads it with
``ctypes``.  No third-party packages, no build system: one ``cc -O2
-shared`` invocation, cached by source hash under ``_build/``.

Exactness: the C routine is a line-for-line transcription of
``OnlinePeel._vgc_task_loop_reference`` with two provably invisible
changes (see docs/PERFORMANCE.md):

* **Deferred RNG draws.**  Sampled-edge coin flips never influence the
  task loop itself (sample mode is fixed within a subround, sampled
  edges never decrement, and the flip cost is charged per encounter
  regardless of the outcome), so the kernel only records the encounter
  stream and Python draws ``rng.random(total)`` afterwards — the same
  values the reference drew one at a time, in the same order.
* **Batched counter updates.**  Sampler hit counters are incremented
  once per distinct vertex at subround end; nothing reads them inside
  the loop, and the saturation event ``cnt == mu`` is recovered exactly
  from the old/new counter values (unit increments cannot skip ``mu``).

When no compiler is available (or compilation fails for any reason) the
kernel reports unavailable and ``REPRO_KERNELS=auto`` falls back to the
NumPy kernels — behavior, payloads and goldens are identical either way.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

_SOURCE = r"""
#include <stdint.h>

/* The VGC task loop of the online peel (paper Alg. 3 + Sec. 4.2 local
 * searches), transcribed from the Python reference implementation.
 * Sampled edges are recorded, not drawn: the caller replays the RNG
 * stream afterwards (deferral is exact; see the module docstring). */
void vgc_peel_tasks(
    const int64_t *indptr,
    const int64_t *indices,
    int64_t *dtilde,
    uint8_t *peeled,
    int64_t *coreness,
    const uint8_t *mode,      /* NULL when sampling is inactive */
    const int64_t *frontier,
    int64_t n_tasks,
    int64_t k,
    int64_t budget,
    int64_t edge_budget,
    int64_t *queue,           /* scratch, capacity >= budget */
    int64_t *dec_out,         /* decrement targets, stream order */
    int64_t *enc_out,         /* sampled-edge encounters, stream order */
    int64_t *nf_out,          /* crossings denied absorption */
    int64_t *nv_out,          /* per task: queue items processed */
    int64_t *ne_out,          /* per task: edges seen */
    int64_t *ns_out,          /* per task: sampled edges seen */
    int64_t *counters)        /* [dec, enc, nf, local_search_hits] */
{
    int64_t dp = 0, ep = 0, fp = 0, ls = 0;
    int64_t k1 = k + 1;
    for (int64_t t = 0; t < n_tasks; t++) {
        int64_t head = 0, qlen = 1;
        int64_t nv = 0, ne = 0, ns = 0;
        queue[0] = frontier[t];
        while (head < qlen) {
            int64_t v = queue[head++];
            nv++;
            int64_t end = indptr[v + 1];
            for (int64_t i = indptr[v]; i < end; i++) {
                int64_t u = indices[i];
                ne++;
                if (mode && mode[u]) {
                    ns++;
                    enc_out[ep++] = u;
                    continue;
                }
                int64_t old = dtilde[u];
                dtilde[u] = old - 1;
                dec_out[dp++] = u;
                if (old == k1 && !peeled[u]) {
                    if (qlen < budget && ne < edge_budget) {
                        queue[qlen++] = u;
                        coreness[u] = k;
                        peeled[u] = 1;
                        ls++;
                    } else {
                        nf_out[fp++] = u;
                    }
                }
            }
        }
        nv_out[t] = nv;
        ne_out[t] = ne;
        ns_out[t] = ns;
    }
    counters[0] = dp;
    counters[1] = ep;
    counters[2] = fp;
    counters[3] = ls;
}
"""

#: Per-task counter outputs of the C kernel (``<name>_out`` parameters)
#: mapped to the :class:`repro.runtime.cost_model.CostModel` field each
#: is priced with in the dyadic closed form of
#: :func:`repro.perf.kernels.vgc_peel_tasks_native`.  The R007 lint rule
#: cross-checks this table against the embedded C source, the ctypes
#: signature, and the cost model — editing any side without the others
#: is exactly the drift it exists to catch.
COST_COUNTERS = {
    "nv": "vertex_op",
    "ne": "edge_op",
    "ns": "sample_flip_op",
}


def kernel_source() -> str:
    """The embedded C source of the compiled kernel (for tooling)."""
    return _SOURCE


_BUILD_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build")

_lib: ctypes.CDLL | None = None
_available: bool | None = None


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _so_path() -> str:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    return os.path.join(_BUILD_DIR, f"_vgc_kernel-{digest}.so")


def _build() -> str | None:
    """Compile the kernel (once per source version); return the .so path."""
    path = _so_path()
    if os.path.exists(path):
        return path
    cc = _compiler()
    if cc is None:
        return None
    os.makedirs(_BUILD_DIR, exist_ok=True)
    try:
        with tempfile.TemporaryDirectory(dir=_BUILD_DIR) as work:
            src = os.path.join(work, "_vgc_kernel.c")
            out = os.path.join(work, "_vgc_kernel.so")
            with open(src, "w", encoding="ascii") as handle:
                handle.write(_SOURCE)
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", out, src],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(out, path)  # atomic: concurrent builders agree
    except (OSError, subprocess.SubprocessError):
        return None
    return path


def _load() -> ctypes.CDLL | None:
    global _lib, _available
    if _available is not None:
        return _lib
    path = _build()
    if path is None:
        _available = False
        return None
    try:
        lib = ctypes.CDLL(path)
        fn = lib.vgc_peel_tasks
    except (OSError, AttributeError):
        _available = False
        return None
    fn.restype = None
    fn.argtypes = [ctypes.c_void_p] * 7 + [ctypes.c_int64] * 4 + [
        ctypes.c_void_p
    ] * 8
    _lib = lib
    _available = True
    return _lib


def available() -> bool:
    """Whether the native kernel is usable on this host (builds lazily)."""
    return _load() is not None


def _ptr(array: np.ndarray | None) -> ctypes.c_void_p | None:
    if array is None:
        return None
    return ctypes.c_void_p(array.ctypes.data)


def run_task_loop(
    graph,
    dtilde: np.ndarray,
    peeled: np.ndarray,
    coreness: np.ndarray,
    mode: np.ndarray | None,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray, int]:
    """Run every local search of a subround in the compiled kernel.

    Mutates ``dtilde`` / ``peeled`` / ``coreness`` exactly like the
    reference loop and returns ``(dec, enc, next_frontier, nv, ne, ns,
    local_search_hits)`` where ``dec`` / ``enc`` are the decrement and
    sampled-encounter streams in task-major order and ``nv`` / ``ne`` /
    ``ns`` are the per-task item / edge / sampled-edge counts.
    """
    lib = _load()
    if lib is None:  # pragma: no cover - callers check available() first
        raise RuntimeError("native kernel unavailable")
    indptr, indices = graph.indptr, graph.indices
    frontier = np.ascontiguousarray(frontier, dtype=np.int64)
    n_tasks = int(frontier.size)
    # Stream capacities: every queue item is expanded at most once and the
    # item sets of distinct tasks are disjoint, so the total edge stream is
    # bounded by the degree sum of all vertices — indices.size.  Denied
    # crossings are bounded by one crossing per vertex per subround.
    cap = int(indices.size)
    dec = np.empty(cap, dtype=np.int64)
    enc = np.empty(cap if mode is not None else 0, dtype=np.int64)
    nf = np.empty(graph.n, dtype=np.int64)
    queue = np.empty(max(int(budget), 1), dtype=np.int64)
    nv = np.empty(n_tasks, dtype=np.int64)
    ne = np.empty(n_tasks, dtype=np.int64)
    ns = np.empty(n_tasks, dtype=np.int64)
    counters = np.zeros(4, dtype=np.int64)
    mode_u8 = mode.view(np.uint8) if mode is not None else None
    lib.vgc_peel_tasks(
        _ptr(indptr),
        _ptr(indices),
        _ptr(dtilde),
        _ptr(peeled.view(np.uint8)),
        _ptr(coreness),
        _ptr(mode_u8),
        _ptr(frontier),
        n_tasks,
        int(k),
        int(budget),
        int(edge_budget),
        _ptr(queue),
        _ptr(dec),
        _ptr(enc),
        _ptr(nf),
        _ptr(nv),
        _ptr(ne),
        _ptr(ns),
        _ptr(counters),
    )
    dp, ep, fp, ls = (int(x) for x in counters)
    return (
        dec[:dp],
        enc[:ep] if mode is not None else enc,
        nf[:fp].copy(),
        nv,
        ne,
        ns,
        ls,
    )
