"""Wall-clock performance layer (kernel-mode switch + peel kernels).

The simulated runtime's *accounting* is independent of how fast the host
Python actually executes a peel; ``repro.perf`` is about the latter.  It
provides batched kernels for the hot peel paths that reproduce the
reference implementations' metrics ledger bit-for-bit (enforced by the
regression goldens), plus the ``REPRO_KERNELS`` switch that selects
between them:

* ``auto`` (default) — the native kernel when a C compiler is available
  on this host, otherwise the vectorized NumPy kernel;
* ``native`` — a small C kernel compiled on first use (see
  :mod:`repro.perf.native`); an error if no compiler is available;
* ``vectorized`` — the flat-buffer NumPy kernels in
  :mod:`repro.perf.kernels`;
* ``reference`` — the original straight-line Python loops, kept as the
  equivalence oracle for property tests and A/B wall-clock comparisons.

All modes are bit-exact with each other: same coreness, same metrics
ledger, same RNG stream.  The mode is purely a wall-clock knob.

``REPRO_KERNEL_THRESHOLD`` tunes the scalar-vs-vectorized regime switch
inside the NumPy kernel (expansions below the threshold run a tuned
scalar loop; NumPy dispatch only pays off on larger neighbor lists).
The default was chosen by the committed micro-benchmark in
``benchmarks/micro/kernel_threshold.json``.
"""

from __future__ import annotations

import os

from repro.obs.registry import active_registry

#: Environment variable selecting the kernel implementation.
KERNELS_ENV = "REPRO_KERNELS"

#: Environment variable tuning the scalar/vectorized expansion threshold.
THRESHOLD_ENV = "REPRO_KERNEL_THRESHOLD"

AUTO = "auto"
NATIVE = "native"
VECTORIZED = "vectorized"
REFERENCE = "reference"

_VALID_MODES = (AUTO, NATIVE, VECTORIZED, REFERENCE)

#: Default scalar-vs-vectorized expansion threshold (edges per expansion).
#: Chosen by ``benchmarks/micro/bench_kernel_threshold.py`` — see the
#: committed ``benchmarks/micro/kernel_threshold.json`` and
#: docs/PERFORMANCE.md.  128 won both the full-tier sweep there and a
#: large-tier spot check (hub degrees in the thousands).
DEFAULT_KERNEL_THRESHOLD = 128


def native_available() -> bool:
    """Whether the compiled native kernel can be (or has been) loaded."""
    from repro.perf.native import available

    return available()


def kernel_mode() -> str:
    """The active kernel implementation, resolved to a concrete mode.

    Returns one of ``native``, ``vectorized`` or ``reference``.  The
    default ``auto`` resolves to ``native`` when a C compiler is
    available on this host and to ``vectorized`` otherwise, so the
    payloads (which are bit-identical across modes) never depend on the
    host toolchain — only the wall-clock does.
    """
    mode = os.environ.get(KERNELS_ENV, AUTO).strip().lower()
    if mode not in _VALID_MODES:
        raise ValueError(
            f"{KERNELS_ENV} must be one of {_VALID_MODES}, got {mode!r}"
        )
    registry = active_registry()
    if mode == AUTO:
        resolved = NATIVE if native_available() else VECTORIZED
        if registry is not None:
            registry.inc(f"kernel.mode.{resolved}")
            if resolved != NATIVE:
                registry.inc("kernel.fallback.native_unavailable")
        return resolved
    if mode == NATIVE and not native_available():
        raise RuntimeError(
            f"{KERNELS_ENV}={NATIVE} but no C compiler is available; "
            f"use {AUTO} to fall back to the vectorized NumPy kernels"
        )
    if registry is not None:
        registry.inc(f"kernel.mode.{mode}")
    return mode


def kernel_threshold() -> int:
    """The scalar-vs-vectorized expansion threshold (``>= 0``).

    Expansions with fewer edges than this run the tuned scalar loop of
    the NumPy kernel; larger ones use full NumPy batching.  Both regimes
    are bit-exact, so this is purely a speed knob.
    """
    raw = os.environ.get(THRESHOLD_ENV, "").strip()
    if not raw:
        return DEFAULT_KERNEL_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{THRESHOLD_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{THRESHOLD_ENV} must be >= 0, got {value}")
    return value


__all__ = [
    "AUTO",
    "DEFAULT_KERNEL_THRESHOLD",
    "KERNELS_ENV",
    "NATIVE",
    "REFERENCE",
    "THRESHOLD_ENV",
    "VECTORIZED",
    "kernel_mode",
    "kernel_threshold",
    "native_available",
]
