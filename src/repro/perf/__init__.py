"""Wall-clock performance layer (kernel-mode switch + vectorized kernels).

The simulated runtime's *accounting* is independent of how fast the host
Python actually executes a peel; ``repro.perf`` is about the latter.  It
provides vectorized NumPy kernels for the hot peel paths that reproduce
the reference implementations' metrics ledger bit-for-bit (enforced by
the regression goldens), plus the ``REPRO_KERNELS`` switch that selects
between them:

* ``vectorized`` (default) — the batched kernels in
  :mod:`repro.perf.kernels`;
* ``reference`` — the original straight-line Python loops, kept as the
  equivalence oracle for property tests and A/B wall-clock comparisons.
"""

from __future__ import annotations

import os

#: Environment variable selecting the kernel implementation.
KERNELS_ENV = "REPRO_KERNELS"

VECTORIZED = "vectorized"
REFERENCE = "reference"

_VALID_MODES = (VECTORIZED, REFERENCE)


def kernel_mode() -> str:
    """The active kernel implementation (``vectorized`` or ``reference``)."""
    mode = os.environ.get(KERNELS_ENV, VECTORIZED).strip().lower()
    if mode not in _VALID_MODES:
        raise ValueError(
            f"{KERNELS_ENV} must be one of {_VALID_MODES}, got {mode!r}"
        )
    return mode


__all__ = [
    "KERNELS_ENV",
    "REFERENCE",
    "VECTORIZED",
    "kernel_mode",
]
