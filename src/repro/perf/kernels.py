"""Flat peel kernels, bit-exact with the reference loops.

The VGC subround is the wall-clock hot path of the ``ours`` engine: a
per-edge Python loop over every local-search queue.  This module batches
it while reproducing the reference execution *exactly* — same coreness
output, same ``RunMetrics`` ledger, same RNG stream — which the
regression goldens and the kernel-equivalence property tests enforce.
The same treatment extends to the baseline engines: the PKC chain drain
(:func:`pkc_chain_drain`), the fused scan/peel subround that ParK,
Julienne and the plain online peel share (:func:`scan_peel_round`), and
the full-array frontier scans (:func:`threshold_frontier`).  Each comes
in a vectorized flavor here and a compiled flavor in
:mod:`repro.perf.native`, all behind the ``REPRO_KERNELS`` switch.

Two implementations share one epilogue (:func:`_finalize`):

* :func:`vgc_peel_tasks` — the flat NumPy kernel.  One set of
  preallocated flat output buffers (decrement stream, sampled-encounter
  stream, denied crossings) spans the whole frontier; tasks write
  through advancing offsets instead of per-task Python lists, and
  neighbor expansions switch between a tuned scalar loop and NumPy
  batching at :func:`repro.perf.kernel_threshold` edges.
* :func:`vgc_peel_tasks_native` — the same task loop compiled to C
  (:mod:`repro.perf.native`), filling the same flat buffers.

The exactness argument, per mechanism:

* **Deferred RNG draws.**  Sample-mode membership cannot change
  mid-subround (absorption only touches vertices whose mode bit is
  already clear; resampling runs at subround end), and the coin-flip
  *outcome* influences nothing inside the task loop: sampled edges
  never decrement, the flip cost is charged per encounter regardless,
  and hit counters are not read until the subround epilogue.  So the
  kernels only record the encounter stream in task-major order and draw
  ``rng.random(total)`` once at the end — ``numpy.random.Generator``
  produces the identical sequence whether values are drawn one at a
  time or as arrays, in any block structure.
* **Decrement stream.**  Within one expansion the targets are distinct
  (simple graph), so a gathered ``old = dtilde[t]; dtilde[t] = old - 1``
  matches the sequential per-edge decrements, and the frontier-crossing
  observation ``old == k + 1`` is exact.
* **Absorption.**  Both exhaustion conditions — queue length at the
  ``queue_size`` budget, edges seen at the ``edge_budget`` — are
  monotone within a task, so once either holds the rest of the queue is
  absorption-free and is processed as one batched tail (the batch
  crossing test ``old > k and new <= k`` fires exactly when some unit
  decrement observed ``k + 1``).  Before that point, absorption
  decisions are replayed per crossing edge in encounter order with the
  exact ``edges_seen`` value of the reference loop.
* **Saturation.**  Hit counters advance by unit increments, so they
  cannot skip ``mu``; batching the increments per distinct vertex and
  testing ``old < mu <= new`` recovers exactly the reference's
  ``cnt == mu`` events.
* **First-seen keys.**  The reference records ``dtilde[u]`` at a
  vertex's first decrement of the subround; since nothing else mutates
  ``dtilde`` inside the task loop, that value *is* the subround-start
  snapshot, so one ``dtilde.copy()`` per subround replaces all per-edge
  bookkeeping.
* **Cost accumulation.**  Per-task costs are accumulated as
  ``count * constant`` instead of repeated addition; this is exact
  because every pinned cost model uses dyadic-rational constants (see
  docs/PERFORMANCE.md).  Aggregation orderings the kernels change
  (contention multisets, touched sets, bucket updates, frontier merges)
  are all canonicalized downstream (``np.unique``) or order-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf import NATIVE, kernel_mode, kernel_threshold
from repro.runtime.atomics import (
    DecrementOutcome,
    batch_decrement,
    batch_increment_clamped,
)


class KernelScratch:
    """Per-run reusable kernel buffers, allocated lazily on first use.

    The flat kernels used to allocate their output streams per subround
    (``np.empty(indices.size)`` is tens of megabytes on the large tier);
    one arena per run amortizes that to a single allocation.  Buffer
    contents are scratch between calls — except :meth:`count_buf`, which
    is kept all-zero: every user must re-zero exactly the entries it
    dirtied before returning.
    """

    def __init__(self, graph) -> None:
        self._n = int(graph.n)
        self._cap = int(graph.indices.size)
        self._dec: np.ndarray | None = None
        self._enc: np.ndarray | None = None
        self._nf: np.ndarray | None = None
        self._queue: np.ndarray | None = None
        self._count: np.ndarray | None = None
        self._touched: np.ndarray | None = None
        self._tasks: tuple[np.ndarray, ...] | None = None
        self._ptrs: dict[int, tuple[np.ndarray, int]] = {}
        self._views: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def dec_buf(self) -> np.ndarray:
        """Decrement-stream buffer (capacity: the total degree sum)."""
        if self._dec is None:
            self._dec = np.empty(self._cap, dtype=np.int64)
        return self._dec

    def enc_buf(self) -> np.ndarray:
        """Sampled-encounter-stream buffer (same capacity bound)."""
        if self._enc is None:
            self._enc = np.empty(self._cap, dtype=np.int64)
        return self._enc

    def nf_buf(self) -> np.ndarray:
        """Denied-crossings buffer (at most one crossing per vertex)."""
        if self._nf is None:
            self._nf = np.empty(self._n, dtype=np.int64)
        return self._nf

    def queue_buf(self, size: int) -> np.ndarray:
        """Task-queue scratch of at least ``size`` slots."""
        size = max(int(size), 1)
        if self._queue is None or self._queue.size < size:
            self._queue = np.empty(size, dtype=np.int64)
        return self._queue

    def count_buf(self) -> np.ndarray:
        """All-zero per-vertex counter array (users re-zero their marks)."""
        if self._count is None:
            self._count = np.zeros(self._n, dtype=np.int64)
        return self._count

    def touched_buf(self) -> np.ndarray:
        """First-touch output buffer paired with :meth:`count_buf`."""
        if self._touched is None:
            self._touched = np.empty(self._n, dtype=np.int64)
        return self._touched

    def task_bufs(self) -> tuple[np.ndarray, ...]:
        """Per-task ``(nv, ne, ns)`` counter buffers (frontier <= n)."""
        if self._tasks is None:
            self._tasks = tuple(
                np.empty(self._n, dtype=np.int64) for _ in range(3)
            )
        return self._tasks

    def ptr(self, array: np.ndarray) -> int:
        """Raw data address of a run-stable array, cached by identity.

        ``array.ctypes.data`` costs microseconds per access (a ctypes
        helper object is built each time), which the per-subround native
        calls pay a dozen times over; the cache keeps a reference to
        every array it has seen, so an entry can never dangle (the id
        key stays pinned to the same object).  Use only for arrays that
        persist across calls — per-round temporaries would accumulate.
        """
        entry = self._ptrs.get(id(array))
        if entry is None:
            entry = (array, array.ctypes.data)
            self._ptrs[id(array)] = entry
        return entry[1]

    def u8(self, array: np.ndarray) -> np.ndarray:
        """Cached ``uint8`` reinterpretation of a run-stable bool array."""
        entry = self._views.get(id(array))
        if entry is None:
            entry = (array, array.view(np.uint8))
            self._views[id(array)] = entry
        return entry[1]


def get_scratch(state) -> KernelScratch:
    """The run's :class:`KernelScratch`, created on first use."""
    scratch = getattr(state, "scratch", None)
    if scratch is None:
        scratch = KernelScratch(state.graph)
        state.scratch = scratch
    return scratch


class FlatPeelState:
    """Minimal peel state for engines without a framework ``PeelState``.

    :func:`scan_peel_round` and :func:`threshold_frontier` only need the
    graph, the live ``dtilde`` array, and somewhere to hang the run's
    :class:`KernelScratch`; the sequential BZ level peel and the
    approximate geometric peel use this shim to ride the same flat
    kernels as the parallel engines.
    """

    __slots__ = ("graph", "dtilde", "scratch")

    def __init__(self, graph, dtilde: np.ndarray) -> None:
        self.graph = graph
        self.dtilde = dtilde
        self.scratch = None


@dataclass
class VGCTaskResult:
    """Everything a VGC task loop produces for the shared epilogue.

    Attributes:
        task_costs: Per-task simulated cost (vertex/edge/flip ops).
        next_frontier: Crossing vertices denied absorption (each crossing
            fires exactly once per vertex per subround).
        saturated: Sample counters that reached ``mu`` this subround.
        target_counts: Atomic-update multiplicities per distinct target
            (decrements and sampler hits), in no specified order — the
            subround's contention histogram.
        touched: Distinct decremented vertices; ordering is not
            specified (consumers are order-insensitive).
        touched_old: ``dtilde`` value of each touched vertex before its
            first decrement of the subround.
        local_search_hits: Number of absorptions performed.
        sample_draws: Sampled edges seen (RNG draws) across all tasks.
        sample_hits: Draws that hit (incremented a sample counter).
    """

    task_costs: np.ndarray
    next_frontier: np.ndarray
    saturated: np.ndarray
    target_counts: np.ndarray
    touched: np.ndarray
    touched_old: np.ndarray
    local_search_hits: int
    sample_draws: int = 0
    sample_hits: int = 0


_EMPTY = np.zeros(0, dtype=np.int64)


def _sampling_arrays(state):
    """The subround's sampling arrays, or all-``None`` when inactive.

    When nothing is in sample mode the whole sampling branch is dead (no
    RNG draws would occur), so the non-sampled fast path is exact.
    """
    sampling = state.sampling
    if sampling is not None and bool(sampling.mode.any()):
        return (
            sampling.mode,
            sampling.rate,
            sampling.cnt,
            sampling.rng,
            sampling.mu,
        )
    return None, None, None, None, 0


def _finalize(
    dec: np.ndarray,
    enc: np.ndarray,
    next_frontier: np.ndarray,
    task_costs: np.ndarray,
    ls_hits: int,
    dtilde: np.ndarray,
    rng,
    rate: np.ndarray | None,
    cnt: np.ndarray | None,
    mu: int,
    touched: np.ndarray | None = None,
    counts: np.ndarray | None = None,
) -> VGCTaskResult:
    """Shared subround epilogue: deferred draws, counters, contention.

    ``dec`` and ``enc`` are the decrement and sampled-encounter streams
    in task-major order (``enc`` order is what aligns the deferred RNG
    draws with the reference's per-edge draws).  ``dtilde`` is the
    *post-kernel* array: each touched vertex's subround-start value is
    recovered exactly as ``dtilde[v] + count(v)`` (integer decrements,
    no clamping), which spares the former per-subround full-array copy.
    ``touched`` / ``counts`` may be supplied pre-computed (ascending,
    aligned) by a kernel that counted decrements in-flight; otherwise
    they are derived from the ``dec`` stream here.
    """
    if enc.size:
        draws = rng.random(enc.size)
        hits_all = enc[draws < rate[enc]]
    else:
        hits_all = _EMPTY
    hit_counts = _EMPTY
    if hits_all.size:
        hit_counts, saturated = batch_increment_clamped(cnt, hits_all, mu)
    else:
        saturated = _EMPTY
    if touched is None:
        touched, counts = np.unique(dec, return_counts=True)
    touched_old = dtilde[touched] + counts
    # Decrement targets (mode clear) and hit targets (mode set) are
    # disjoint — mode never changes inside a subround — so the combined
    # contention histogram is the per-stream histograms side by side
    # (the hit histogram is the one the clamped increment built).
    target_counts = counts
    if hits_all.size:
        target_counts = np.concatenate([counts, hit_counts])
    return VGCTaskResult(
        task_costs=task_costs,
        next_frontier=next_frontier,
        saturated=saturated,
        target_counts=target_counts,
        touched=touched,
        touched_old=touched_old,
        local_search_hits=ls_hits,
        sample_draws=int(enc.size),
        sample_hits=int(hits_all.size),
    )


def vgc_peel_tasks(
    state,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
) -> VGCTaskResult:
    """Run every local search of a VGC subround (flat NumPy kernel)."""
    graph = state.graph
    dtilde, peeled, coreness = state.dtilde, state.peeled, state.coreness
    indptr, indices = graph.indptr, graph.indices
    model = state.runtime.model
    vertex_op = model.vertex_op
    edge_op = model.edge_op
    flip_op = model.sample_flip_op
    mode, rate, cnt, rng, mu = _sampling_arrays(state)

    threshold = kernel_threshold()

    # Flat output buffers for the whole frontier, written through
    # advancing offsets.  Capacities: queue items of distinct tasks are
    # disjoint vertex sets and each is expanded at most once, so the
    # edge stream (decrements + encounters) is bounded by the total
    # degree sum ``indices.size``; a vertex crosses at most once per
    # subround, so denied crossings are bounded by ``n``.  The buffers
    # live in the run's arena, so they are allocated once per run.
    scratch = get_scratch(state)
    dec_buf = scratch.dec_buf()
    enc_buf = scratch.enc_buf() if mode is not None else _EMPTY
    nf_buf = scratch.nf_buf()
    queue_buf = scratch.queue_buf(budget)
    dp = ep = fp = 0

    # Memoryviews give the tuned scalar loop native-Python-int element
    # access (no NumPy scalar boxing), sharing the arrays' buffers with
    # the vectorized regimes and the flat output buffers.
    dt_mv = memoryview(dtilde)
    pe_mv = memoryview(peeled)
    co_mv = memoryview(coreness)
    ip_mv = memoryview(indptr)
    ix_mv = memoryview(indices)
    dec_mv = memoryview(dec_buf)
    nf_mv = memoryview(nf_buf)
    q_mv = memoryview(queue_buf)
    mode_mv = memoryview(mode) if mode is not None else None
    enc_mv = memoryview(enc_buf) if mode is not None else None
    k1 = k + 1

    task_costs = np.empty(frontier.size, dtype=np.float64)
    ls_hits = 0

    for task_id, seed in enumerate(frontier.tolist()):
        q_mv[0] = seed
        head = 0
        qlen = 1
        nv = 0  # queue items processed (vertex_op each)
        ne = 0  # edges seen (edge_op each)
        ns = 0  # sampled edges seen (sample_flip_op each)
        while head < qlen:
            if qlen >= budget or ne >= edge_budget:
                # Absorption-free tail: both conditions are monotone, so
                # no remaining edge can absorb — batch the rest at once.
                tail = queue_buf[head:qlen]
                head = qlen
                nv += int(tail.size)
                tgt = graph.gather_neighbors(tail)
                ne += int(tgt.size)
                if tgt.size == 0:
                    break
                if mode is not None:
                    smask = mode[tgt]
                    if smask.any():
                        sampled = tgt[smask]
                        sn = int(sampled.size)
                        enc_buf[ep : ep + sn] = sampled
                        ep += sn
                        ns += sn
                        direct = tgt[~smask]
                    else:
                        direct = tgt
                else:
                    direct = tgt
                if direct.size:
                    outcome = batch_decrement(dtilde, direct, k)
                    dn = int(direct.size)
                    dec_buf[dp : dp + dn] = direct
                    dp += dn
                    crossed = outcome.crossed
                    crossed = crossed[~peeled[crossed]]
                    if crossed.size:
                        cn = int(crossed.size)
                        nf_buf[fp : fp + cn] = crossed
                        fp += cn
                break
            v = q_mv[head]
            head += 1
            nv += 1
            s = ip_mv[v]
            e = ip_mv[v + 1]
            deg = e - s
            if deg == 0:
                continue
            ne_base = ne
            ne += deg
            if deg < threshold:
                # Tuned scalar loop (memoryviews, native Python ints).
                if mode is None:
                    # Every edge is a direct decrement: collect the
                    # whole row with one slice copy, scan for crossings.
                    dec_buf[dp : dp + deg] = indices[s:e]
                    dp += deg
                    pos = 0
                    for u in ix_mv[s:e]:
                        pos += 1
                        old = dt_mv[u]
                        dt_mv[u] = old - 1
                        if old == k1 and not pe_mv[u]:
                            if (
                                qlen < budget
                                and ne_base + pos < edge_budget
                            ):
                                q_mv[qlen] = u
                                qlen += 1
                                co_mv[u] = k
                                pe_mv[u] = True
                                ls_hits += 1
                            else:
                                nf_mv[fp] = u
                                fp += 1
                    continue
                pos = 0
                for u in ix_mv[s:e]:
                    pos += 1
                    if mode_mv[u]:
                        ns += 1
                        enc_mv[ep] = u
                        ep += 1
                        continue
                    old = dt_mv[u]
                    dt_mv[u] = old - 1
                    dec_mv[dp] = u
                    dp += 1
                    if old == k1 and not pe_mv[u]:
                        if qlen < budget and ne_base + pos < edge_budget:
                            q_mv[qlen] = u
                            qlen += 1
                            co_mv[u] = k
                            pe_mv[u] = True
                            ls_hits += 1
                        else:
                            nf_mv[fp] = u
                            fp += 1
                continue
            # Vectorized expansion: targets are distinct within one row.
            nbrs = indices[s:e]
            pos_map = None
            if mode is not None:
                smask = mode[nbrs]
                if smask.any():
                    sampled = nbrs[smask]
                    sn = int(sampled.size)
                    enc_buf[ep : ep + sn] = sampled
                    ep += sn
                    ns += sn
                    pos_map = np.flatnonzero(~smask)
                    direct = nbrs[pos_map]
                else:
                    direct = nbrs
            else:
                direct = nbrs
            if direct.size == 0:
                continue
            old = dtilde[direct]
            dtilde[direct] = old - 1
            dn = int(direct.size)
            dec_buf[dp : dp + dn] = direct
            dp += dn
            cidx = np.flatnonzero((old == k1) & ~peeled[direct])
            if cidx.size:
                cpos = cidx if pos_map is None else pos_map[cidx]
                # Replay absorption decisions in encounter order with the
                # reference loop's exact edges_seen at each check.
                for u, seen in zip(
                    direct[cidx].tolist(),
                    (ne_base + cpos + 1).tolist(),
                ):
                    if qlen < budget and seen < edge_budget:
                        q_mv[qlen] = u
                        qlen += 1
                        co_mv[u] = k
                        pe_mv[u] = True
                        ls_hits += 1
                    else:
                        nf_mv[fp] = u
                        fp += 1
        task_costs[task_id] = vertex_op * nv + edge_op * ne + flip_op * ns

    return _finalize(
        dec_buf[:dp],
        enc_buf[:ep],
        nf_buf[:fp].copy(),
        task_costs,
        ls_hits,
        dtilde,
        rng,
        rate,
        cnt,
        mu,
    )


def vgc_peel_tasks_native(
    state,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
) -> VGCTaskResult:
    """Run every local search of a VGC subround (compiled C kernel)."""
    from repro.perf import native

    graph = state.graph
    model = state.runtime.model
    mode, rate, cnt, rng, mu = _sampling_arrays(state)
    scratch = get_scratch(state)
    dec, enc, next_frontier, nv, ne, ns, ls_hits, marks = (
        native.run_task_loop(
            graph,
            state.dtilde,
            state.peeled,
            state.coreness,
            mode,
            frontier,
            k,
            budget,
            edge_budget,
            scratch=scratch,
        )
    )
    # Exact despite the reordering: counts stay well below 2**53 and the
    # pinned cost constants are dyadic rationals (docs/PERFORMANCE.md).
    task_costs = (
        model.vertex_op * nv + model.edge_op * ne + model.sample_flip_op * ns
    )
    # The kernel counted decrements first-touch style into the scratch
    # counters; sorting the distinct marks reproduces ``np.unique`` of
    # the full dec stream without rescanning it.
    count_arr = scratch.count_buf()
    touched = np.sort(marks)
    counts = count_arr[touched].copy()
    count_arr[marks] = 0  # restore the all-zero invariant
    return _finalize(
        dec,
        enc,
        next_frontier,
        task_costs,
        ls_hits,
        state.dtilde,
        rng,
        rate,
        cnt,
        mu,
        touched=touched,
        counts=counts,
    )


# ---------------------------------------------------------------------------
# Baseline kernels: PKC chain drain, fused scan/peel, frontier scan
# ---------------------------------------------------------------------------


def pkc_thread_works(model, nv: np.ndarray, ne: np.ndarray) -> np.ndarray:
    """Per-thread PKC work recomputed in closed form from the counters.

    The reference drain accumulates ``vertex_op`` per queue item and
    ``edge_op + atomic_op`` per edge by repeated addition; with the
    pinned dyadic cost constants and counts far below ``2**53`` every
    partial sum is exact, so the closed form is bit-equal (R007
    cross-checks this expression against ``PKC_COST_COUNTERS`` and the
    embedded C source).
    """
    task_costs = (
        model.vertex_op * nv + model.edge_op * ne + model.atomic_op * ne
    )
    return task_costs


def pkc_chain_drain(
    graph,
    dtilde: np.ndarray,
    peeled: np.ndarray,
    coreness: np.ndarray,
    frontier: np.ndarray,
    k: int,
    p: int,
    scratch: KernelScratch,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One PKC round's thread-local chain drains (flat NumPy kernel).

    Reproduces the reference drain exactly by replaying the threads in
    order and decomposing each thread's FIFO into *waves*: wave 0 is the
    thread's static share ``frontier[tid::p]``, wave ``i + 1`` is the
    set of vertices wave ``i``'s batched decrements dropped from
    ``k + 1`` to ``k`` (the atomic claims).  Batching a wave is exact
    because claims only append *behind* the current wave in the FIFO —
    every wave item is expanded before any vertex it claims — and a
    vertex crosses ``k + 1 -> k`` at most once per round, so the batch
    crossing test ``old > k and new <= k`` recovers exactly the unit
    decrements that observed ``k + 1``.  Earlier threads' claims are
    visible to later threads through ``peeled``, matching the reference
    thread order.  Returns ``(nv, ne, counts, claimed)``: per-thread
    item / edge counters, the round's contention counts per distinct
    target (order unspecified; consumers take max / sum), and the number
    of chain claims.
    """
    indptr, indices = graph.indptr, graph.indices
    threshold = kernel_threshold()
    count_arr = scratch.count_buf()
    touched = scratch.touched_buf()
    nv = np.zeros(p, dtype=np.int64)
    ne = np.zeros(p, dtype=np.int64)
    tp = 0
    claimed = 0
    k1 = k + 1
    dt_mv = memoryview(dtilde)
    pe_mv = memoryview(peeled)
    co_mv = memoryview(coreness)
    ip_mv = memoryview(indptr)
    ix_mv = memoryview(indices)
    ct_mv = memoryview(count_arr)
    to_mv = memoryview(touched)

    for tid in range(min(p, int(frontier.size))):
        wave = frontier[tid::p]
        nv_t = 0
        ne_t = 0
        while wave.size:
            degs = indptr[wave + 1] - indptr[wave]
            edge_total = int(degs.sum())
            nv_t += int(wave.size)
            ne_t += edge_total
            if edge_total == 0:
                break
            if edge_total < threshold:
                # Tuned scalar wave: immediate claims, exactly the
                # reference's per-edge loop over this FIFO segment.
                nxt: list[int] = []
                for v in wave.tolist():
                    for u in ix_mv[ip_mv[v] : ip_mv[v + 1]]:
                        old = dt_mv[u]
                        dt_mv[u] = old - 1
                        c = ct_mv[u]
                        if c == 0:
                            to_mv[tp] = u
                            tp += 1
                        ct_mv[u] = c + 1
                        if old == k1 and not pe_mv[u]:
                            pe_mv[u] = True
                            co_mv[u] = k
                            claimed += 1
                            nxt.append(u)
                wave = np.asarray(nxt, dtype=np.int64)
                continue
            # Batched wave: targets deduped once, decrements applied as
            # ``count * unit`` per distinct target.
            targets = graph.gather_neighbors(wave)
            tw, cw = np.unique(targets, return_counts=True)
            old = dtilde[tw]
            new = old - cw
            dtilde[tw] = new
            prev = count_arr[tw]
            fresh = tw[prev == 0]
            fn = int(fresh.size)
            touched[tp : tp + fn] = fresh
            tp += fn
            count_arr[tw] = prev + cw
            cross = tw[(old > k) & (new <= k)]
            cross = cross[~peeled[cross]]
            if cross.size:
                peeled[cross] = True
                coreness[cross] = k
                claimed += int(cross.size)
            wave = cross
        nv[tid] = nv_t
        ne[tid] = ne_t

    marks = touched[:tp]
    counts = count_arr[marks].copy()
    count_arr[marks] = 0  # restore the all-zero invariant
    return nv, ne, counts, claimed


def pkc_chain_drain_native(
    graph,
    dtilde: np.ndarray,
    peeled: np.ndarray,
    coreness: np.ndarray,
    frontier: np.ndarray,
    k: int,
    p: int,
    scratch: KernelScratch,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One PKC round's thread-local chain drains (compiled C kernel).

    The C routine is a line-for-line transcription of the reference
    drain (same FIFO, same immediate claims); only the contention
    bookkeeping is batched — first-touch counting into the scratch
    arena instead of an append-and-``np.unique`` pass, which preserves
    the count multiset exactly.
    """
    from repro.perf import native

    count_arr = scratch.count_buf()
    touched = scratch.touched_buf()
    nv, ne, marks, claimed = native.run_pkc_round(
        graph,
        dtilde,
        peeled,
        coreness,
        frontier,
        k,
        p,
        scratch.queue_buf(graph.n),
        count_arr,
        touched,
        scratch=scratch,
    )
    counts = count_arr[marks].copy()
    count_arr[marks] = 0  # restore the all-zero invariant
    return nv, ne, counts, claimed


def scan_peel_round(state, frontier: np.ndarray, k: int) -> DecrementOutcome:
    """Fused gather + batch-decrement of a frontier's neighborhoods.

    The flat helper behind the non-sampled online subround (ParK, the
    plain online peel) and the offline histogram peel (Julienne).
    Semantically identical to ``batch_decrement(dtilde,
    gather_neighbors(frontier), k)`` — same mutation, same sorted
    ``touched`` / ``counts`` / ``old`` / ``new`` / ``crossed`` — but the
    native flavor counts occurrences in one pass over the adjacency
    lists (no materialized target stream, no full-stream sort; only the
    distinct touched vertices are sorted).
    """
    graph = state.graph
    if kernel_mode() == NATIVE:
        from repro.perf import native

        scratch = get_scratch(state)
        count_arr = scratch.count_buf()
        marks = native.run_scan_peel(
            graph,
            state.dtilde,
            frontier,
            count_arr,
            scratch.touched_buf(),
            scratch=scratch,
        )
        touched = np.sort(marks)
        counts = count_arr[touched].copy()
        count_arr[marks] = 0  # restore the all-zero invariant
        new = state.dtilde[touched]
        old = new + counts
        crossed = touched[(old > k) & (new <= k)]
        return DecrementOutcome(
            counts=counts, crossed=crossed, touched=touched, old=old, new=new
        )
    targets = graph.gather_neighbors(frontier)
    return batch_decrement(state.dtilde, targets, k)


def threshold_frontier(
    dtilde: np.ndarray,
    peeled: np.ndarray,
    k: int,
    scratch: KernelScratch | None = None,
) -> np.ndarray:
    """All unpeeled vertices with ``dtilde <= k``, in ascending order.

    The full-array frontier scan of the scan-based baselines (ParK,
    PKC).  The native flavor packs matches in one C pass; the fallback
    is the reference expression itself, so every mode returns the exact
    ``np.nonzero`` output.
    """
    if scratch is not None and kernel_mode() == NATIVE:
        from repro.perf import native

        return native.run_scan_frontier(
            dtilde, peeled, k, scratch.touched_buf(), scratch=scratch
        )
    return np.nonzero((~peeled) & (dtilde <= k))[0]
