"""Vectorized VGC peel kernel, bit-exact with the reference loop.

The VGC subround is the wall-clock hot path of the ``ours`` engine: a
per-edge Python loop over every local-search queue.  This kernel batches
it with NumPy while reproducing the reference execution *exactly* — same
coreness output, same ``RunMetrics`` ledger, same RNG stream — which the
regression goldens and the kernel-equivalence property tests enforce.

The exactness argument, per mechanism:

* **RNG stream.**  ``numpy.random.Generator`` produces the identical
  sequence whether values are drawn one at a time (``rng.random()``) or
  as arrays (``rng.random(m)``), in any interleaving.  Sample-mode
  membership cannot change mid-subround (absorption only touches
  vertices whose mode bit is already clear; resampling runs at subround
  end), so the sampled targets of an expansion are known up front and
  one array draw in CSR order reproduces the per-edge draws.
* **Decrement stream.**  Within one expansion the targets are distinct
  (simple graph), so a gathered ``old = dtilde[t]; dtilde[t] = old - 1``
  matches the sequential per-edge decrements, and the frontier-crossing
  observation ``old == k + 1`` is exact.
* **Absorption.**  Both exhaustion conditions — queue length at the
  ``queue_size`` budget, edges seen at the ``edge_budget`` — are
  monotone within a task, so once either holds the rest of the queue is
  absorption-free and is processed as one batched tail (the batch
  crossing test ``old > k and new <= k`` fires exactly when some unit
  decrement observed ``k + 1``).  Before that point, absorption
  decisions are replayed per crossing edge in encounter order with the
  exact ``edges_seen`` value of the reference loop.
* **First-seen keys.**  The reference records ``dtilde[u]`` at a
  vertex's first decrement of the subround; since nothing else mutates
  ``dtilde`` inside the task loop, that value *is* the subround-start
  snapshot, so one ``dtilde.copy()`` per subround replaces all per-edge
  bookkeeping.
* **Cost accumulation.**  Per-task costs are accumulated as
  ``count * constant`` instead of repeated addition; this is exact
  because every pinned cost model uses dyadic-rational constants (see
  docs/PERFORMANCE.md).  Aggregation orderings the kernel changes
  (contention multisets, touched sets, bucket updates, frontier merges)
  are all canonicalized downstream (``np.unique``) or order-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.atomics import batch_decrement, batch_increment_clamped

#: Expansions below this degree run a tuned scalar loop: per-expansion
#: NumPy dispatch overhead only pays off on larger neighbor lists.  Both
#: regimes are bit-exact, so the threshold is purely a speed knob.
SMALL_EXPANSION = 32


@dataclass
class VGCTaskResult:
    """Everything a VGC task loop produces for the shared epilogue.

    Attributes:
        task_costs: Per-task simulated cost (vertex/edge/flip ops).
        next_frontier: Crossing vertices denied absorption (each crossing
            fires exactly once per vertex per subround).
        saturated: Sample counters that reached ``mu`` this subround.
        target_counts: Atomic-update multiplicities per distinct target
            (decrements and sampler hits), in no specified order — the
            subround's contention histogram.
        touched: Distinct decremented vertices; ordering is not
            specified (consumers are order-insensitive).
        touched_old: ``dtilde`` value of each touched vertex before its
            first decrement of the subround.
        local_search_hits: Number of absorptions performed.
        sample_draws: Sampled edges seen (RNG draws) across all tasks.
        sample_hits: Draws that hit (incremented a sample counter).
    """

    task_costs: np.ndarray
    next_frontier: np.ndarray
    saturated: np.ndarray
    target_counts: np.ndarray
    touched: np.ndarray
    touched_old: np.ndarray
    local_search_hits: int
    sample_draws: int = 0
    sample_hits: int = 0


def _gather(chunks: list[np.ndarray], scalars: list[int]) -> np.ndarray:
    """Concatenate array chunks and scalar-path collections (any order)."""
    if scalars:
        chunks = chunks + [np.asarray(scalars, dtype=np.int64)]
    if not chunks:
        return np.zeros(0, dtype=np.int64)
    if len(chunks) == 1:
        return np.asarray(chunks[0], dtype=np.int64)
    return np.concatenate(chunks)


def vgc_peel_tasks(
    state,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
) -> VGCTaskResult:
    """Run every local search of a VGC subround (vectorized regimes)."""
    graph = state.graph
    dtilde, peeled, coreness = state.dtilde, state.peeled, state.coreness
    sampling = state.sampling
    indptr, indices = graph.indptr, graph.indices
    model = state.runtime.model
    vertex_op = model.vertex_op
    edge_op = model.edge_op
    flip_op = model.sample_flip_op

    # Sample-mode membership is constant within a subround; when nothing
    # is in sample mode the whole sampling branch is dead (no RNG draws
    # would occur), so the non-sampled fast path is exact.
    if sampling is not None and bool(sampling.mode.any()):
        mode, rate, cnt = sampling.mode, sampling.rate, sampling.cnt
        rng, mu = sampling.rng, sampling.mu
    else:
        mode = rate = cnt = rng = None
        mu = 0

    # First-seen keys are subround-start values (see module docstring).
    dtilde_start = dtilde.copy()

    # Memoryviews give the tuned scalar loop native-Python-int element
    # access (no NumPy scalar boxing), sharing the arrays' buffers with
    # the vectorized regimes.
    dt_mv = memoryview(dtilde)
    pe_mv = memoryview(peeled)
    co_mv = memoryview(coreness)
    ip_mv = memoryview(indptr)
    if mode is not None:
        mode_mv = memoryview(mode)
        rate_mv = memoryview(rate)
        cnt_mv = memoryview(cnt)
        rng_random = rng.random
    k1 = k + 1

    task_costs = np.empty(frontier.size, dtype=np.float64)
    next_frontier: list[int] = []
    dec_scalar: list[int] = []
    hit_scalar: list[int] = []
    sat_scalar: list[int] = []
    dec_chunks: list[np.ndarray] = []
    hit_chunks: list[np.ndarray] = []
    sat_chunks: list[np.ndarray] = []
    frontier_append = next_frontier.append
    ls_hits = 0
    draws_total = 0

    for task_id in range(frontier.size):
        queue: list[int] = [int(frontier[task_id])]
        head = 0
        qlen = 1
        nv = 0  # queue items processed (vertex_op each)
        ne = 0  # edges seen (edge_op each)
        ns = 0  # sampled edges seen (sample_flip_op each)
        while head < qlen:
            if qlen >= budget or ne >= edge_budget:
                # Absorption-free tail: both conditions are monotone, so
                # no remaining edge can absorb — batch the rest at once.
                tail = np.asarray(queue[head:], dtype=np.int64)
                head = qlen
                nv += int(tail.size)
                tgt = graph.gather_neighbors(tail)
                ne += int(tgt.size)
                if tgt.size == 0:
                    break
                if mode is not None:
                    smask = mode[tgt]
                    sampled = tgt[smask]
                    direct = tgt[~smask]
                    ns += int(sampled.size)
                    if sampled.size:
                        draws = rng.random(sampled.size)
                        hits = sampled[draws < rate[sampled]]
                        if hits.size:
                            hit_chunks.append(hits)
                            _, reached = batch_increment_clamped(
                                cnt, hits, mu
                            )
                            if reached.size:
                                sat_chunks.append(reached)
                else:
                    direct = tgt
                if direct.size:
                    outcome = batch_decrement(dtilde, direct, k)
                    dec_chunks.append(direct)
                    crossed = outcome.crossed
                    crossed = crossed[~peeled[crossed]]
                    if crossed.size:
                        next_frontier.extend(crossed.tolist())
                break
            v = queue[head]
            head += 1
            nv += 1
            s = ip_mv[v]
            deg = ip_mv[v + 1] - s
            if deg == 0:
                continue
            if deg < SMALL_EXPANSION:
                # Tuned scalar loop (memoryviews, native Python ints).
                nbrs = indices[s : s + deg]
                nbrs_l = nbrs.tolist()
                ne_base = ne
                ne += deg
                if mode is None:
                    # Every edge is a direct decrement.
                    dec_chunks.append(nbrs)
                    pos = 0
                    for u in nbrs_l:
                        pos += 1
                        old = dt_mv[u]
                        dt_mv[u] = old - 1
                        if old == k1 and not pe_mv[u]:
                            if (
                                qlen < budget
                                and ne_base + pos < edge_budget
                            ):
                                queue.append(u)
                                qlen += 1
                                co_mv[u] = k
                                pe_mv[u] = True
                                ls_hits += 1
                            else:
                                frontier_append(u)
                    continue
                pos = 0
                for u in nbrs_l:
                    pos += 1
                    if mode_mv[u]:
                        ns += 1
                        if rng_random() < rate_mv[u]:
                            hit_scalar.append(u)
                            c = cnt_mv[u] + 1
                            cnt_mv[u] = c
                            if c == mu:
                                sat_scalar.append(u)
                        continue
                    old = dt_mv[u]
                    dt_mv[u] = old - 1
                    dec_scalar.append(u)
                    if old == k1 and not pe_mv[u]:
                        if qlen < budget and ne_base + pos < edge_budget:
                            queue.append(u)
                            qlen += 1
                            co_mv[u] = k
                            pe_mv[u] = True
                            ls_hits += 1
                        else:
                            frontier_append(u)
                continue
            # Vectorized expansion: targets are distinct within one row.
            nbrs = indices[s : s + deg]
            ne_base = ne
            ne += deg
            pos = None
            if mode is not None:
                smask = mode[nbrs]
                if smask.any():
                    sampled = nbrs[smask]
                    ns += int(sampled.size)
                    draws = rng.random(sampled.size)
                    hits = sampled[draws < rate[sampled]]
                    if hits.size:
                        hit_chunks.append(hits)
                        newc = cnt[hits] + 1
                        cnt[hits] = newc
                        sat = hits[newc == mu]
                        if sat.size:
                            sat_chunks.append(sat)
                    pos = np.flatnonzero(~smask)
                    direct = nbrs[pos]
                else:
                    direct = nbrs
            else:
                direct = nbrs
            if direct.size == 0:
                continue
            old = dtilde[direct]
            dtilde[direct] = old - 1
            dec_chunks.append(direct)
            cidx = np.flatnonzero((old == k1) & ~peeled[direct])
            if cidx.size:
                cpos = cidx if pos is None else pos[cidx]
                # Replay absorption decisions in encounter order with the
                # reference loop's exact edges_seen at each check.
                for u, seen in zip(
                    direct[cidx].tolist(),
                    (ne_base + cpos + 1).tolist(),
                ):
                    if qlen < budget and seen < edge_budget:
                        queue.append(u)
                        qlen += 1
                        co_mv[u] = k
                        pe_mv[u] = True
                        ls_hits += 1
                    else:
                        frontier_append(u)
        task_costs[task_id] = (
            vertex_op * nv + edge_op * ne + flip_op * ns
        )
        draws_total += ns

    decrements = _gather(dec_chunks, dec_scalar)
    hits_all = _gather(hit_chunks, hit_scalar)
    # Decrement targets (mode clear) and hit targets (mode set) are
    # disjoint — mode never changes inside a subround — so the combined
    # contention histogram is the per-stream histograms side by side.
    touched, counts = np.unique(decrements, return_counts=True)
    if hits_all.size:
        _, hit_counts = np.unique(hits_all, return_counts=True)
        counts = np.concatenate([counts, hit_counts])
    return VGCTaskResult(
        task_costs=task_costs,
        next_frontier=_gather([], next_frontier),
        saturated=_gather(sat_chunks, sat_scalar),
        target_counts=counts,
        touched=touched,
        touched_old=dtilde_start[touched],
        local_search_hits=ls_hits,
        sample_draws=draws_total,
        sample_hits=int(hits_all.size),
    )
