"""Flat VGC peel kernels, bit-exact with the reference loop.

The VGC subround is the wall-clock hot path of the ``ours`` engine: a
per-edge Python loop over every local-search queue.  This module batches
it while reproducing the reference execution *exactly* — same coreness
output, same ``RunMetrics`` ledger, same RNG stream — which the
regression goldens and the kernel-equivalence property tests enforce.

Two implementations share one epilogue (:func:`_finalize`):

* :func:`vgc_peel_tasks` — the flat NumPy kernel.  One set of
  preallocated flat output buffers (decrement stream, sampled-encounter
  stream, denied crossings) spans the whole frontier; tasks write
  through advancing offsets instead of per-task Python lists, and
  neighbor expansions switch between a tuned scalar loop and NumPy
  batching at :func:`repro.perf.kernel_threshold` edges.
* :func:`vgc_peel_tasks_native` — the same task loop compiled to C
  (:mod:`repro.perf.native`), filling the same flat buffers.

The exactness argument, per mechanism:

* **Deferred RNG draws.**  Sample-mode membership cannot change
  mid-subround (absorption only touches vertices whose mode bit is
  already clear; resampling runs at subround end), and the coin-flip
  *outcome* influences nothing inside the task loop: sampled edges
  never decrement, the flip cost is charged per encounter regardless,
  and hit counters are not read until the subround epilogue.  So the
  kernels only record the encounter stream in task-major order and draw
  ``rng.random(total)`` once at the end — ``numpy.random.Generator``
  produces the identical sequence whether values are drawn one at a
  time or as arrays, in any block structure.
* **Decrement stream.**  Within one expansion the targets are distinct
  (simple graph), so a gathered ``old = dtilde[t]; dtilde[t] = old - 1``
  matches the sequential per-edge decrements, and the frontier-crossing
  observation ``old == k + 1`` is exact.
* **Absorption.**  Both exhaustion conditions — queue length at the
  ``queue_size`` budget, edges seen at the ``edge_budget`` — are
  monotone within a task, so once either holds the rest of the queue is
  absorption-free and is processed as one batched tail (the batch
  crossing test ``old > k and new <= k`` fires exactly when some unit
  decrement observed ``k + 1``).  Before that point, absorption
  decisions are replayed per crossing edge in encounter order with the
  exact ``edges_seen`` value of the reference loop.
* **Saturation.**  Hit counters advance by unit increments, so they
  cannot skip ``mu``; batching the increments per distinct vertex and
  testing ``old < mu <= new`` recovers exactly the reference's
  ``cnt == mu`` events.
* **First-seen keys.**  The reference records ``dtilde[u]`` at a
  vertex's first decrement of the subround; since nothing else mutates
  ``dtilde`` inside the task loop, that value *is* the subround-start
  snapshot, so one ``dtilde.copy()`` per subround replaces all per-edge
  bookkeeping.
* **Cost accumulation.**  Per-task costs are accumulated as
  ``count * constant`` instead of repeated addition; this is exact
  because every pinned cost model uses dyadic-rational constants (see
  docs/PERFORMANCE.md).  Aggregation orderings the kernels change
  (contention multisets, touched sets, bucket updates, frontier merges)
  are all canonicalized downstream (``np.unique``) or order-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf import kernel_threshold
from repro.runtime.atomics import batch_decrement, batch_increment_clamped


@dataclass
class VGCTaskResult:
    """Everything a VGC task loop produces for the shared epilogue.

    Attributes:
        task_costs: Per-task simulated cost (vertex/edge/flip ops).
        next_frontier: Crossing vertices denied absorption (each crossing
            fires exactly once per vertex per subround).
        saturated: Sample counters that reached ``mu`` this subround.
        target_counts: Atomic-update multiplicities per distinct target
            (decrements and sampler hits), in no specified order — the
            subround's contention histogram.
        touched: Distinct decremented vertices; ordering is not
            specified (consumers are order-insensitive).
        touched_old: ``dtilde`` value of each touched vertex before its
            first decrement of the subround.
        local_search_hits: Number of absorptions performed.
        sample_draws: Sampled edges seen (RNG draws) across all tasks.
        sample_hits: Draws that hit (incremented a sample counter).
    """

    task_costs: np.ndarray
    next_frontier: np.ndarray
    saturated: np.ndarray
    target_counts: np.ndarray
    touched: np.ndarray
    touched_old: np.ndarray
    local_search_hits: int
    sample_draws: int = 0
    sample_hits: int = 0


_EMPTY = np.zeros(0, dtype=np.int64)


def _sampling_arrays(state):
    """The subround's sampling arrays, or all-``None`` when inactive.

    When nothing is in sample mode the whole sampling branch is dead (no
    RNG draws would occur), so the non-sampled fast path is exact.
    """
    sampling = state.sampling
    if sampling is not None and bool(sampling.mode.any()):
        return (
            sampling.mode,
            sampling.rate,
            sampling.cnt,
            sampling.rng,
            sampling.mu,
        )
    return None, None, None, None, 0


def _finalize(
    dec: np.ndarray,
    enc: np.ndarray,
    next_frontier: np.ndarray,
    task_costs: np.ndarray,
    ls_hits: int,
    dtilde_start: np.ndarray,
    rng,
    rate: np.ndarray | None,
    cnt: np.ndarray | None,
    mu: int,
) -> VGCTaskResult:
    """Shared subround epilogue: deferred draws, counters, contention.

    ``dec`` and ``enc`` are the decrement and sampled-encounter streams
    in task-major order (``enc`` order is what aligns the deferred RNG
    draws with the reference's per-edge draws).
    """
    if enc.size:
        draws = rng.random(enc.size)
        hits_all = enc[draws < rate[enc]]
    else:
        hits_all = _EMPTY
    if hits_all.size:
        _, saturated = batch_increment_clamped(cnt, hits_all, mu)
    else:
        saturated = _EMPTY
    touched, counts = np.unique(dec, return_counts=True)
    # Decrement targets (mode clear) and hit targets (mode set) are
    # disjoint — mode never changes inside a subround — so the combined
    # contention histogram is the per-stream histograms side by side.
    if hits_all.size:
        _, hit_counts = np.unique(hits_all, return_counts=True)
        counts = np.concatenate([counts, hit_counts])
    return VGCTaskResult(
        task_costs=task_costs,
        next_frontier=next_frontier,
        saturated=saturated,
        target_counts=counts,
        touched=touched,
        touched_old=dtilde_start[touched],
        local_search_hits=ls_hits,
        sample_draws=int(enc.size),
        sample_hits=int(hits_all.size),
    )


def vgc_peel_tasks(
    state,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
) -> VGCTaskResult:
    """Run every local search of a VGC subround (flat NumPy kernel)."""
    graph = state.graph
    dtilde, peeled, coreness = state.dtilde, state.peeled, state.coreness
    indptr, indices = graph.indptr, graph.indices
    model = state.runtime.model
    vertex_op = model.vertex_op
    edge_op = model.edge_op
    flip_op = model.sample_flip_op
    mode, rate, cnt, rng, mu = _sampling_arrays(state)

    # First-seen keys are subround-start values (see module docstring).
    dtilde_start = dtilde.copy()
    threshold = kernel_threshold()

    # Flat output buffers for the whole frontier, written through
    # advancing offsets.  Capacities: queue items of distinct tasks are
    # disjoint vertex sets and each is expanded at most once, so the
    # edge stream (decrements + encounters) is bounded by the total
    # degree sum ``indices.size``; a vertex crosses at most once per
    # subround, so denied crossings are bounded by ``n``.
    cap = int(indices.size)
    dec_buf = np.empty(cap, dtype=np.int64)
    enc_buf = np.empty(cap if mode is not None else 0, dtype=np.int64)
    nf_buf = np.empty(graph.n, dtype=np.int64)
    queue_buf = np.empty(max(int(budget), 1), dtype=np.int64)
    dp = ep = fp = 0

    # Memoryviews give the tuned scalar loop native-Python-int element
    # access (no NumPy scalar boxing), sharing the arrays' buffers with
    # the vectorized regimes and the flat output buffers.
    dt_mv = memoryview(dtilde)
    pe_mv = memoryview(peeled)
    co_mv = memoryview(coreness)
    ip_mv = memoryview(indptr)
    ix_mv = memoryview(indices)
    dec_mv = memoryview(dec_buf)
    nf_mv = memoryview(nf_buf)
    q_mv = memoryview(queue_buf)
    mode_mv = memoryview(mode) if mode is not None else None
    enc_mv = memoryview(enc_buf) if mode is not None else None
    k1 = k + 1

    task_costs = np.empty(frontier.size, dtype=np.float64)
    ls_hits = 0

    for task_id, seed in enumerate(frontier.tolist()):
        q_mv[0] = seed
        head = 0
        qlen = 1
        nv = 0  # queue items processed (vertex_op each)
        ne = 0  # edges seen (edge_op each)
        ns = 0  # sampled edges seen (sample_flip_op each)
        while head < qlen:
            if qlen >= budget or ne >= edge_budget:
                # Absorption-free tail: both conditions are monotone, so
                # no remaining edge can absorb — batch the rest at once.
                tail = queue_buf[head:qlen]
                head = qlen
                nv += int(tail.size)
                tgt = graph.gather_neighbors(tail)
                ne += int(tgt.size)
                if tgt.size == 0:
                    break
                if mode is not None:
                    smask = mode[tgt]
                    if smask.any():
                        sampled = tgt[smask]
                        sn = int(sampled.size)
                        enc_buf[ep : ep + sn] = sampled
                        ep += sn
                        ns += sn
                        direct = tgt[~smask]
                    else:
                        direct = tgt
                else:
                    direct = tgt
                if direct.size:
                    outcome = batch_decrement(dtilde, direct, k)
                    dn = int(direct.size)
                    dec_buf[dp : dp + dn] = direct
                    dp += dn
                    crossed = outcome.crossed
                    crossed = crossed[~peeled[crossed]]
                    if crossed.size:
                        cn = int(crossed.size)
                        nf_buf[fp : fp + cn] = crossed
                        fp += cn
                break
            v = q_mv[head]
            head += 1
            nv += 1
            s = ip_mv[v]
            e = ip_mv[v + 1]
            deg = e - s
            if deg == 0:
                continue
            ne_base = ne
            ne += deg
            if deg < threshold:
                # Tuned scalar loop (memoryviews, native Python ints).
                if mode is None:
                    # Every edge is a direct decrement: collect the
                    # whole row with one slice copy, scan for crossings.
                    dec_buf[dp : dp + deg] = indices[s:e]
                    dp += deg
                    pos = 0
                    for u in ix_mv[s:e]:
                        pos += 1
                        old = dt_mv[u]
                        dt_mv[u] = old - 1
                        if old == k1 and not pe_mv[u]:
                            if (
                                qlen < budget
                                and ne_base + pos < edge_budget
                            ):
                                q_mv[qlen] = u
                                qlen += 1
                                co_mv[u] = k
                                pe_mv[u] = True
                                ls_hits += 1
                            else:
                                nf_mv[fp] = u
                                fp += 1
                    continue
                pos = 0
                for u in ix_mv[s:e]:
                    pos += 1
                    if mode_mv[u]:
                        ns += 1
                        enc_mv[ep] = u
                        ep += 1
                        continue
                    old = dt_mv[u]
                    dt_mv[u] = old - 1
                    dec_mv[dp] = u
                    dp += 1
                    if old == k1 and not pe_mv[u]:
                        if qlen < budget and ne_base + pos < edge_budget:
                            q_mv[qlen] = u
                            qlen += 1
                            co_mv[u] = k
                            pe_mv[u] = True
                            ls_hits += 1
                        else:
                            nf_mv[fp] = u
                            fp += 1
                continue
            # Vectorized expansion: targets are distinct within one row.
            nbrs = indices[s:e]
            pos_map = None
            if mode is not None:
                smask = mode[nbrs]
                if smask.any():
                    sampled = nbrs[smask]
                    sn = int(sampled.size)
                    enc_buf[ep : ep + sn] = sampled
                    ep += sn
                    ns += sn
                    pos_map = np.flatnonzero(~smask)
                    direct = nbrs[pos_map]
                else:
                    direct = nbrs
            else:
                direct = nbrs
            if direct.size == 0:
                continue
            old = dtilde[direct]
            dtilde[direct] = old - 1
            dn = int(direct.size)
            dec_buf[dp : dp + dn] = direct
            dp += dn
            cidx = np.flatnonzero((old == k1) & ~peeled[direct])
            if cidx.size:
                cpos = cidx if pos_map is None else pos_map[cidx]
                # Replay absorption decisions in encounter order with the
                # reference loop's exact edges_seen at each check.
                for u, seen in zip(
                    direct[cidx].tolist(),
                    (ne_base + cpos + 1).tolist(),
                ):
                    if qlen < budget and seen < edge_budget:
                        q_mv[qlen] = u
                        qlen += 1
                        co_mv[u] = k
                        pe_mv[u] = True
                        ls_hits += 1
                    else:
                        nf_mv[fp] = u
                        fp += 1
        task_costs[task_id] = vertex_op * nv + edge_op * ne + flip_op * ns

    return _finalize(
        dec_buf[:dp],
        enc_buf[:ep],
        nf_buf[:fp].copy(),
        task_costs,
        ls_hits,
        dtilde_start,
        rng,
        rate,
        cnt,
        mu,
    )


def vgc_peel_tasks_native(
    state,
    frontier: np.ndarray,
    k: int,
    budget: int,
    edge_budget: int,
) -> VGCTaskResult:
    """Run every local search of a VGC subround (compiled C kernel)."""
    from repro.perf import native

    graph = state.graph
    model = state.runtime.model
    mode, rate, cnt, rng, mu = _sampling_arrays(state)
    dtilde_start = state.dtilde.copy()
    dec, enc, next_frontier, nv, ne, ns, ls_hits = native.run_task_loop(
        graph,
        state.dtilde,
        state.peeled,
        state.coreness,
        mode,
        frontier,
        k,
        budget,
        edge_budget,
    )
    # Exact despite the reordering: counts stay well below 2**53 and the
    # pinned cost constants are dyadic rationals (docs/PERFORMANCE.md).
    task_costs = (
        model.vertex_op * nv + model.edge_op * ne + model.sample_flip_op * ns
    )
    return _finalize(
        dec,
        enc,
        next_frontier,
        task_costs,
        ls_hits,
        dtilde_start,
        rng,
        rate,
        cnt,
        mu,
    )
