"""Plain-text metrics dashboard (``python -m repro.serve --metrics``).

Two views of one registry:

* :func:`render_dashboard` — the headline totals: every counter and
  gauge grouped by family, histograms as count / mean / estimated tail
  quantiles (estimates come from the fixed buckets; the serve report's
  percentile fields stay exact, from the raw samples).
* :func:`render_epoch_table` — the per-epoch table built from the
  registry's marks (one per committed epoch in a serve replay): each
  row shows the simulated commit time and the delta of every counter
  that moved since the previous mark.
"""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_dashboard(registry: MetricsRegistry) -> str:
    """Headline totals of every metric, grouped by family."""
    snapshot = registry.to_snapshot()
    lines = [
        f"== metrics: {registry.label} "
        f"(obs schema {snapshot['obs_schema_version']}, "
        f"{snapshot['attached']} runtime(s) observed) ==",
    ]
    for family in ("sim", "wall"):
        sections = snapshot["families"][family]
        if not any(sections.values()):
            continue
        lines.append(f"[{family}]")
        for name, payload in sections["counters"].items():
            lines.append(f"  {name:<40s} {_fmt(payload['value']):>14s}")
        for name, payload in sections["gauges"].items():
            lines.append(
                f"  {name:<40s} {_fmt(payload['value']):>14s} (gauge)"
            )
        for name, payload in sections["histograms"].items():
            hist = registry.get(name)
            assert isinstance(hist, Histogram)
            mean = hist.sum / hist.count if hist.count else 0.0
            lines.append(
                f"  {name:<40s} n={hist.count} mean={_fmt(mean)}"
                f" ~p50={_fmt(hist.quantile(0.50))}"
                f" ~p99={_fmt(hist.quantile(0.99))}"
            )
    return "\n".join(lines)


def render_epoch_table(registry: MetricsRegistry) -> str:
    """Per-mark counter deltas (one row per serve epoch commit)."""
    if not registry.marks:
        return "(no epoch marks recorded)"
    lines = ["-- per-epoch counters (deltas vs previous commit) --"]
    previous: dict[str, float] = {}
    for mark in registry.marks:
        moved = []
        for name in sorted(mark.values):
            delta = mark.values[name] - previous.get(name, 0.0)
            if delta:
                moved.append(f"{name}+{_fmt(delta)}")
        label = mark.label or f"t={mark.ts:.0f}"
        lines.append(
            f"  {label:<12s} @ {mark.ts:>16.0f}ns  " + " ".join(moved)
        )
        previous = mark.values
    return "\n".join(lines)
