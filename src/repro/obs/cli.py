"""``python -m repro.obs`` — the observability CLI (trend gate).

Examples::

    python -m repro.obs trend BENCH_a.json BENCH_b.json
    python -m repro.obs trend BENCH_wallclock.json fresh.json \
        --max-regress 1.25 --json

Exit codes: 0 clean, 1 regression found, 2 usage / unreadable report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.trend import (
    DEFAULT_MAX_REGRESS,
    DEFAULT_MIN_WALL,
    TrendError,
    render_trend,
    trend_gate,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="metrics registry tooling: the perf-trend gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    trend = sub.add_parser(
        "trend",
        help="diff two bench reports; non-zero exit on a wall regression",
    )
    trend.add_argument("old", help="baseline BENCH_*.json report")
    trend.add_argument("new", help="candidate BENCH_*.json report")
    trend.add_argument(
        "--max-regress",
        type=float,
        default=DEFAULT_MAX_REGRESS,
        metavar="RATIO",
        help="fail when new/old wall exceeds RATIO "
        f"(default: {DEFAULT_MAX_REGRESS})",
    )
    trend.add_argument(
        "--min-wall",
        type=float,
        default=DEFAULT_MIN_WALL,
        metavar="SECONDS",
        help="noise floor: cells below it only gate in aggregate "
        f"(default: {DEFAULT_MIN_WALL})",
    )
    trend.add_argument(
        "--json",
        action="store_true",
        help="emit the structured trend result instead of text",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trend":
        try:
            result = trend_gate(
                args.old,
                args.new,
                max_regress=args.max_regress,
                min_wall=args.min_wall,
            )
        except TrendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(result, indent=1, sort_keys=True))
        else:
            print(render_trend(result))
        return 0 if result["ok"] else 1
    return 2  # pragma: no cover - argparse enforces the subcommand
