"""Prometheus text-exposition exporter.

Renders a registry in the Prometheus text format (version 0.0.4): one
``# HELP`` / ``# TYPE`` header pair per metric, counters suffixed
``_total``, histograms expanded into cumulative ``_bucket{le=...}``
series plus ``_sum`` / ``_count``.  Metric names are prefixed with the
family (``repro_sim_`` / ``repro_wall_``) so the two clock domains can
never be aggregated together by a scraper.

The output is deterministic (sorted metric names, fixed float
formatting) — the exposition of two same-seed runs is byte-identical.
"""

from __future__ import annotations

import re

from repro.obs.registry import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, family: str) -> str:
    """The Prometheus-safe exposition name of a registry metric."""
    return f"repro_{family}_" + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text-exposition format."""
    lines: list[str] = []
    snapshot = registry.to_snapshot()
    for family in ("sim", "wall"):
        sections = snapshot["families"][family]
        for name, payload in sections["counters"].items():
            prom = metric_name(name, family) + "_total"
            lines.append(f"# HELP {prom} repro counter {name} ({family})")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_fmt(payload['value'])}")
        for name, payload in sections["gauges"].items():
            prom = metric_name(name, family)
            lines.append(f"# HELP {prom} repro gauge {name} ({family})")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_fmt(payload['value'])}")
        for name, payload in sections["histograms"].items():
            prom = metric_name(name, family)
            lines.append(
                f"# HELP {prom} repro histogram {name} ({family})"
            )
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for edge, count in zip(
                payload["boundaries"], payload["counts"]
            ):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_fmt(edge)}"}} {cumulative}'
                )
            cumulative += payload["counts"][-1] if payload["counts"] else 0
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_fmt(payload['sum'])}")
            lines.append(f"{prom}_count {payload['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str) -> str:
    """Write the exposition text to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))
    return path
