"""Schema-versioned, bit-deterministic JSON snapshot exporter.

The snapshot is the registry's canonical serialization: sorted keys,
fixed indentation, a trailing newline, and the ``OBS_SCHEMA_VERSION``
tag — two same-seed runs of the same workload serialize to byte-equal
files (the determinism test in ``tests/test_obs.py`` pins it).
"""

from __future__ import annotations

import json

from repro.obs.registry import MetricsRegistry


def render_json(registry: MetricsRegistry) -> str:
    """The snapshot serialized with a stable key order."""
    return json.dumps(registry.to_snapshot(), indent=1, sort_keys=True)


def write_snapshot(registry: MetricsRegistry, path: str) -> str:
    """Write the JSON snapshot to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_json(registry))
        handle.write("\n")
    return path
