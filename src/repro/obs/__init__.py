"""Unified metrics: registry, exporters, dashboard, perf-trend gate.

``repro.obs`` is the numbers half of the observability layer (the span
tracer, :mod:`repro.trace`, is the timeline half): a deterministic
:class:`MetricsRegistry` of counters, gauges and fixed-boundary
histograms that guarded hooks across the stack feed —

* the simulated runtime (steps, work, rounds) and the batch-dynamic
  update engine (batches, repair rounds, risers/fallers);
* the serve writer loop (commit latency, batch sizes, queue depth,
  read-staleness histograms, one mark per committed epoch);
* kernel dispatch in :mod:`repro.perf` (mode resolutions, native
  fallbacks, ``.so`` build-cache hits);
* the caches (graph ``.npz``, bench cells, bench run records).

Attach a registry process-wide with :func:`observing`, or pass
``registry=`` to ``SimRuntime`` / ``framework.decompose`` /
``BatchDynamicKCore`` / ``CoreService``.  Metrics are strictly
observational — all regression goldens pass bit-exactly with a registry
attached and detached (lint rule R008 keeps it that way) — and
snapshots are byte-deterministic.  See docs/OBSERVABILITY.md and
``python -m repro.obs --help``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.dashboard import render_dashboard, render_epoch_table
from repro.obs.export_json import render_json, write_snapshot
from repro.obs.export_prometheus import render_prometheus, write_prometheus
from repro.obs.registry import (
    FAMILIES,
    OBS_SCHEMA_VERSION,
    PERCENTILES,
    SIM,
    SIZE_BOUNDARIES,
    TIME_BOUNDARIES_NS,
    WALL,
    WALL_BOUNDARIES_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    percentile_summary,
    set_active_registry,
)
from repro.obs.trend import (
    DEFAULT_MAX_REGRESS,
    DEFAULT_MIN_WALL,
    TrendError,
    diff_reports,
    render_trend,
    trend_gate,
)


@contextmanager
def observing(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the process-wide default for a block.

    Every :class:`~repro.runtime.simulator.SimRuntime` (and every
    guarded hook) inside the block records into ``registry``; the
    previous default is restored on exit — the detach half of the
    attach/detach protocol.
    """
    previous = set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)


__all__ = [
    "DEFAULT_MAX_REGRESS",
    "DEFAULT_MIN_WALL",
    "FAMILIES",
    "OBS_SCHEMA_VERSION",
    "PERCENTILES",
    "SIM",
    "SIZE_BOUNDARIES",
    "TIME_BOUNDARIES_NS",
    "WALL",
    "WALL_BOUNDARIES_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TrendError",
    "active_registry",
    "diff_reports",
    "observing",
    "percentile_summary",
    "render_dashboard",
    "render_epoch_table",
    "render_json",
    "render_prometheus",
    "render_trend",
    "set_active_registry",
    "trend_gate",
    "write_prometheus",
    "write_snapshot",
]
