"""The metrics registry: deterministic counters, gauges and histograms.

A :class:`MetricsRegistry` is the numeric twin of the span tracer
(:class:`repro.trace.Tracer`): it attaches to an execution — explicitly
via ``registry=`` kwargs, or process-wide via
:func:`repro.obs.observing` — and accumulates *totals* (cache hits,
kernel dispatches, serve commits, staleness histograms) where the tracer
records a *timeline*.  Like the tracer it is strictly observational
(lint rule R008):

* registry code never charges the simulated ledger, never draws
  randomness, and never mutates ``RunMetrics`` — the regression goldens
  pass bit-exactly with a registry attached and detached;
* every hook outside ``repro/obs/`` is guarded by an
  ``is not None`` check, so the unobserved path stays zero-cost;
* wall-clock readings enter only through values measured by the one
  sanctioned reader, :mod:`repro.bench.wallclock`, and live in a
  **separate metric family** (``wall``) that can never mix with the
  simulated-clock family (``sim``) under one metric name.

Snapshots (:meth:`MetricsRegistry.to_snapshot`) are schema-versioned and
bit-deterministic: two same-seed runs produce byte-identical JSON.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

#: Version of the metric snapshot schema.  Bump whenever a metric kind,
#: snapshot field, or family convention is added, removed or redefined
#: (mirrors ``METRICS_SCHEMA_VERSION`` / ``TRACE_SCHEMA_VERSION``).
OBS_SCHEMA_VERSION = 1

#: The simulated-clock family: values derived from the deterministic
#: execution (simulated ns, counts, sizes).  Deterministic across hosts.
SIM = "sim"

#: The wall-clock family: host measurements handed in by benchmark code
#: (seconds from ``repro.bench.wallclock``).  Host-dependent by nature;
#: kept strictly apart from the ``sim`` family.
WALL = "wall"

FAMILIES = (SIM, WALL)

#: Default histogram boundaries for simulated durations (ns): one bucket
#: per decade from 1us to 100s of simulated time.
TIME_BOUNDARIES_NS: tuple[float, ...] = tuple(
    float(10**e) for e in range(3, 12)
)

#: Default histogram boundaries for small cardinalities (batch sizes,
#: queue depths, repair rounds): powers of two up to 4096.
SIZE_BOUNDARIES: tuple[float, ...] = tuple(float(2**e) for e in range(13))

#: Default histogram boundaries for host wall-clock seconds.
WALL_BOUNDARIES_S: tuple[float, ...] = tuple(
    float(10**e) for e in range(-4, 3)
)

#: Percentiles reported by :func:`percentile_summary`.
PERCENTILES = (50, 95, 99)


def percentile_summary(samples: list[float]) -> dict[str, float]:
    """Deterministic percentile summary of a raw sample list.

    The serve report's latency fields are computed with this helper (it
    predates the registry; the histogram views complement it — fixed
    buckets cannot reproduce exact percentiles bit-for-bit).
    """
    if not samples:
        return {f"p{p}": 0.0 for p in PERCENTILES} | {"max": 0.0}
    arr = np.asarray(samples, dtype=np.float64)
    summary = {
        f"p{p}": float(np.percentile(arr, p)) for p in PERCENTILES
    }
    summary["max"] = float(arr.max())
    return summary


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    family: str
    value: float = 0.0

    kind = "counter"

    def to_dict(self) -> dict[str, object]:
        return {"value": self.value}


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    family: str
    value: float = 0.0

    kind = "gauge"

    def to_dict(self) -> dict[str, object]:
        return {"value": self.value}


@dataclass
class Histogram:
    """A fixed-boundary histogram (cumulative-free bucket counts).

    ``boundaries`` are the upper bucket edges in strictly increasing
    order; an observation lands in the first bucket whose edge is
    ``>= value``, or the overflow bucket past the last edge, so there
    are ``len(boundaries) + 1`` counts.  Boundaries are fixed at
    declaration — snapshots of the same run are always comparable.
    """

    name: str
    family: str
    boundaries: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        edges = tuple(float(b) for b in self.boundaries)
        if not edges or any(
            nxt <= prev for prev, nxt in zip(edges, edges[1:])
        ):
            raise ValueError(
                f"histogram {self.name!r}: boundaries must be strictly "
                f"increasing and non-empty, got {edges}"
            )
        self.boundaries = edges
        if not self.counts:
            self.counts = [0] * (len(edges) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Histogram-estimated quantile (linear within the hit bucket).

        An *estimate* for dashboards — exact percentiles need the raw
        samples (:func:`percentile_summary`).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if seen + c >= rank and c:
                lo = self.boundaries[i - 1] if i > 0 else 0.0
                hi = (
                    self.boundaries[i]
                    if i < len(self.boundaries)
                    else max(self.sum / self.count, lo)
                )
                frac = (rank - seen) / c
                return lo + (hi - lo) * min(frac, 1.0)
            seen += c
        return self.boundaries[-1]

    def to_dict(self) -> dict[str, object]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


@dataclass
class Mark:
    """A named snapshot of every scalar ``sim`` metric at one sim time.

    The serve loop marks the registry at each epoch commit; the Perfetto
    exporter turns marks into counter tracks so metrics and spans
    correlate on one simulated timeline.
    """

    ts: float
    label: str
    values: dict[str, float]


class MetricsRegistry:
    """Collects the metrics of one observed execution.

    Mirrors the tracer's attach protocol: ``SimRuntime`` calls
    :meth:`attach` when constructed under an active registry, restarts
    re-attach the same registry, and detaching is leaving the
    :func:`repro.obs.observing` block (or passing ``registry=None``).
    """

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self.attached = 0  # runtimes observed (restarts re-attach)
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.marks: list[Mark] = []

    # ------------------------------------------------------------------
    # Attach protocol (mirrors Tracer)
    # ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        """Adopt a runtime; called by ``SimRuntime`` on construction."""
        self.attached += 1

    def attach_model(self, model) -> None:
        """Adopt a bare cost model (runtime-less sequential engines)."""
        self.attached += 1

    # ------------------------------------------------------------------
    # Declaration and lookup
    # ------------------------------------------------------------------
    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is None:
            self._metrics[metric.name] = metric
            return metric
        if existing.kind != metric.kind:
            raise ValueError(
                f"metric {metric.name!r} already registered as "
                f"{existing.kind}, not {metric.kind}"
            )
        if existing.family != metric.family:
            raise ValueError(
                f"metric {metric.name!r} belongs to the "
                f"{existing.family!r} family; the simulated and "
                f"wall-clock families never mix under one name"
            )
        return existing

    def declare_histogram(
        self,
        name: str,
        boundaries: tuple[float, ...],
        family: str = SIM,
    ) -> Histogram:
        """Declare (or fetch) a histogram with fixed ``boundaries``."""
        self._check_family(family)
        hist = self._register(Histogram(name, family, tuple(boundaries)))
        if hist.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} already declared with boundaries "
                f"{hist.boundaries}"
            )
        return hist

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (``default`` when absent)."""
        metric = self._metrics.get(name)
        if metric is None or metric.kind == "histogram":
            return default
        return metric.value

    def histogram_dict(self, name: str) -> dict[str, object]:
        """JSON-safe dict of histogram ``name`` (empty shape if absent)."""
        metric = self._metrics.get(name)
        if isinstance(metric, Histogram):
            return metric.to_dict()
        return {"boundaries": [], "counts": [], "sum": 0.0, "count": 0}

    @staticmethod
    def _check_family(family: str) -> None:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown metric family {family!r}; known: {FAMILIES}"
            )

    # ------------------------------------------------------------------
    # Mutation hooks (every call outside repro/obs/ is R008-guarded)
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, family: str = SIM) -> None:
        """Increment counter ``name`` by ``value`` (must be >= 0)."""
        self._check_family(family)
        value = float(value)
        if value < 0:
            raise ValueError(
                f"counter {name!r}: increments must be >= 0, got {value}"
            )
        self._register(Counter(name, family)).value += value

    def set_gauge(self, name: str, value: float, family: str = SIM) -> None:
        """Set gauge ``name`` to ``value``."""
        self._check_family(family)
        self._register(Gauge(name, family)).value = float(value)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: tuple[float, ...] | None = None,
        family: str = SIM,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``boundaries`` applies on first use only (defaults to
        :data:`TIME_BOUNDARIES_NS` for ``sim``, :data:`WALL_BOUNDARIES_S`
        for ``wall``); later calls reuse the declared edges.
        """
        self._check_family(family)
        metric = self._metrics.get(name)
        if metric is None:
            if boundaries is None:
                boundaries = (
                    TIME_BOUNDARIES_NS if family == SIM else WALL_BOUNDARIES_S
                )
            metric = self.declare_histogram(name, boundaries, family)
        elif not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a histogram"
            )
        metric.observe(value)

    def mark(self, ts: float, label: str = "") -> None:
        """Snapshot every scalar ``sim`` metric at simulated time ``ts``."""
        values = {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if metric.family == SIM and metric.kind != "histogram"
        }
        self.marks.append(Mark(float(ts), label, values))

    def merge_counts(self, snapshot: dict[str, object]) -> None:
        """Fold a worker's counter snapshot into this registry.

        ``snapshot`` maps metric name to scalar increments (the shape
        :func:`counter_values` returns) — how the benchmark pool
        aggregates per-process cache counters into the parent registry.
        """
        for name in sorted(snapshot):
            self.inc(name, float(snapshot[name]))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def counter_values(self, prefix: str = "") -> dict[str, float]:
        """All ``sim`` counters whose name starts with ``prefix``."""
        return {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if metric.kind == "counter"
            and metric.family == SIM
            and name.startswith(prefix)
        }

    def to_snapshot(self) -> dict[str, object]:
        """The full registry as a schema-versioned JSON-safe dict.

        Key order is fixed (sorted metric names inside each kind) so the
        serialized snapshot is byte-deterministic across same-seed runs.
        """
        families: dict[str, dict[str, dict]] = {
            SIM: {"counters": {}, "gauges": {}, "histograms": {}},
            WALL: {"counters": {}, "gauges": {}, "histograms": {}},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            section = families[metric.family][metric.kind + "s"]
            section[name] = metric.to_dict()
        return {
            "obs_schema_version": OBS_SCHEMA_VERSION,
            "label": self.label,
            "attached": self.attached,
            "families": families,
            "marks": [
                {"ts": mark.ts, "label": mark.label, "values": mark.values}
                for mark in self.marks
            ],
        }


# ----------------------------------------------------------------------
# The process-wide active registry (mirrors runtime.simulator's tracer)
# ----------------------------------------------------------------------
_ACTIVE_REGISTRY: MetricsRegistry | None = None


def set_active_registry(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Install the process-wide default registry; returns the previous.

    Pass ``None`` to uninstall.  Prefer the :func:`repro.obs.observing`
    context manager, which restores the previous registry on exit.
    """
    global _ACTIVE_REGISTRY
    previous = _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = registry
    return previous


def active_registry() -> MetricsRegistry | None:
    """The installed process-wide registry (or ``None``: metrics off)."""
    return _ACTIVE_REGISTRY
