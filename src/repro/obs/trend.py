"""The perf-trend regression gate: diff two benchmark reports.

``python -m repro.obs trend BENCH_old.json BENCH_new.json`` compares the
wall-clock trajectory of two ``repro.bench`` matrix reports (the
committed ``BENCH_*.json`` evidence files) and exits non-zero when any
matched cell — or any per-engine / overall aggregate — got slower than
``--max-regress`` (default 1.25x).  The committed benchmark snapshots
thereby become an *enforced* regression surface: CI runs the tiny matrix
cold and gates it against the committed baseline.

Matching and noise discipline:

* cells are matched on ``(engine, graph, size)``; the kernel mode is
  matched exactly when both sides have it, and relaxed otherwise (the
  baseline host and the CI host may resolve ``auto`` differently);
* sub-``--min-wall`` cells are compared only in the aggregates — a
  0.4ms cell doubling to 0.8ms is scheduler noise, not a regression —
  unless the new side grew past ``10 * min_wall`` (a real blow-up is
  never waved through);
* the gate reads reports of any ``schema_version >= 2`` (cells carry
  ``size`` since v2); older or foreign files fail with exit code 2.
"""

from __future__ import annotations

import json


class TrendError(Exception):
    """A report could not be loaded or compared (CLI exit code 2)."""


#: Default regression threshold: fail when new/old exceeds this ratio.
DEFAULT_MAX_REGRESS = 1.25

#: Default noise floor (seconds): cells below it only count in aggregates.
DEFAULT_MIN_WALL = 0.05


def load_report(path: str) -> dict:
    """Load one bench matrix report; validate the minimum shape."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise TrendError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TrendError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(report, dict) or "cells" not in report:
        raise TrendError(
            f"{path} is not a bench matrix report (no 'cells'); "
            "the trend gate reads BENCH_wallclock*.json files"
        )
    if int(report.get("schema_version", 0)) < 2:
        raise TrendError(
            f"{path}: bench schema_version >= 2 required, got "
            f"{report.get('schema_version')!r}"
        )
    return report


def _cell_index(report: dict) -> dict[tuple, dict]:
    index: dict[tuple, dict] = {}
    for cell in report["cells"]:
        key = (cell["engine"], cell["graph"], cell["size"])
        index.setdefault(key, {})[cell.get("kernels", "")] = cell
    return index


def diff_reports(
    old: dict,
    new: dict,
    max_regress: float = DEFAULT_MAX_REGRESS,
    min_wall: float = DEFAULT_MIN_WALL,
) -> dict[str, object]:
    """Compare two loaded reports; returns the structured trend result.

    The result is JSON-safe: matched cells with old/new wall and ratio,
    per-engine and overall aggregates, and the list of regressions that
    breached ``max_regress``.
    """
    old_index = _cell_index(old)
    new_index = _cell_index(new)
    matched: list[dict[str, object]] = []
    regressions: list[dict[str, object]] = []
    unmatched = 0

    engine_old: dict[str, float] = {}
    engine_new: dict[str, float] = {}

    for key in sorted(new_index):
        by_kernels = new_index[key]
        old_by_kernels = old_index.get(key)
        if old_by_kernels is None:
            unmatched += len(by_kernels)
            continue
        for kernels in sorted(by_kernels):
            new_cell = by_kernels[kernels]
            old_cell = old_by_kernels.get(kernels)
            if old_cell is None:
                # Kernel modes differ between hosts (auto resolution);
                # fall back to any cell of the same (engine,graph,size).
                old_cell = old_by_kernels[sorted(old_by_kernels)[0]]
            engine, graph, size = key
            old_wall = float(old_cell["wall_s"])
            new_wall = float(new_cell["wall_s"])
            ratio = new_wall / old_wall if old_wall > 0 else None
            comparable = old_wall >= min_wall or new_wall >= 10 * min_wall
            entry = {
                "engine": engine,
                "graph": graph,
                "size": size,
                "kernels": {
                    "old": old_cell.get("kernels", ""),
                    "new": new_cell.get("kernels", ""),
                },
                "old_wall_s": old_wall,
                "new_wall_s": new_wall,
                "ratio": None if ratio is None else round(ratio, 4),
                "compared": bool(comparable),
            }
            matched.append(entry)
            engine_old[engine] = engine_old.get(engine, 0.0) + old_wall
            engine_new[engine] = engine_new.get(engine, 0.0) + new_wall
            if (
                comparable
                and ratio is not None
                and ratio > max_regress
            ):
                regressions.append(
                    dict(entry, level="cell")
                )

    engines: dict[str, dict[str, object]] = {}
    for engine in sorted(engine_old):
        old_total = engine_old[engine]
        new_total = engine_new[engine]
        ratio = new_total / old_total if old_total > 0 else None
        engines[engine] = {
            "old_wall_s": round(old_total, 6),
            "new_wall_s": round(new_total, 6),
            "ratio": None if ratio is None else round(ratio, 4),
        }
        if (
            old_total >= min_wall
            and ratio is not None
            and ratio > max_regress
        ):
            regressions.append(
                {
                    "level": "engine",
                    "engine": engine,
                    "old_wall_s": round(old_total, 6),
                    "new_wall_s": round(new_total, 6),
                    "ratio": round(ratio, 4),
                }
            )

    old_total = sum(engine_old.values())
    new_total = sum(engine_new.values())
    overall_ratio = new_total / old_total if old_total > 0 else None
    overall = {
        "old_wall_s": round(old_total, 6),
        "new_wall_s": round(new_total, 6),
        "ratio": None if overall_ratio is None else round(overall_ratio, 4),
    }
    if (
        old_total >= min_wall
        and overall_ratio is not None
        and overall_ratio > max_regress
    ):
        regressions.append(dict(overall, level="overall"))

    if not matched:
        raise TrendError(
            "no cells match between the two reports (different suites?)"
        )
    return {
        "max_regress": max_regress,
        "min_wall_s": min_wall,
        "cells_matched": len(matched),
        "cells_unmatched": unmatched,
        "cells": matched,
        "engines": engines,
        "overall": overall,
        "regressions": regressions,
        "ok": not regressions,
    }


def render_trend(result: dict[str, object]) -> str:
    """Human-readable summary of a :func:`diff_reports` result."""
    lines = [
        f"trend: {result['cells_matched']} cells matched "
        f"({result['cells_unmatched']} unmatched), threshold "
        f"{result['max_regress']}x, floor {result['min_wall_s']}s",
    ]
    for engine, entry in result["engines"].items():
        ratio = entry["ratio"]
        shown = "n/a" if ratio is None else f"{ratio:.3f}x"
        lines.append(
            f"  {engine:<12s} {entry['old_wall_s']:>9.3f}s -> "
            f"{entry['new_wall_s']:>9.3f}s  {shown}"
        )
    overall = result["overall"]
    ratio = overall["ratio"]
    shown = "n/a" if ratio is None else f"{ratio:.3f}x"
    lines.append(
        f"  {'overall':<12s} {overall['old_wall_s']:>9.3f}s -> "
        f"{overall['new_wall_s']:>9.3f}s  {shown}"
    )
    for reg in result["regressions"]:
        if reg["level"] == "cell":
            where = f"{reg['engine']}/{reg['graph']}/{reg['size']}"
        elif reg["level"] == "engine":
            where = f"engine {reg['engine']}"
        else:
            where = "overall"
        lines.append(
            f"REGRESSION [{where}] {reg['old_wall_s']}s -> "
            f"{reg['new_wall_s']}s ({reg['ratio']}x)"
        )
    if result["ok"]:
        lines.append("trend: OK (no regression)")
    return "\n".join(lines)


def trend_gate(
    old_path: str,
    new_path: str,
    max_regress: float = DEFAULT_MAX_REGRESS,
    min_wall: float = DEFAULT_MIN_WALL,
) -> dict[str, object]:
    """Load both reports and diff them (the CLI's workhorse)."""
    return diff_reports(
        load_report(old_path),
        load_report(new_path),
        max_regress=max_regress,
        min_wall=min_wall,
    )
