"""Exception hierarchy of the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphFormatError(ReproError):
    """A graph file or edge list is malformed."""


class InvalidGraphError(ReproError):
    """A graph violates the structural assumptions of an algorithm."""


class SamplingRestartError(ReproError):
    """Internal signal: a sampling error was detected mid-run.

    The Las-Vegas recovery described in paper Sec. 4.1.4 catches this and
    restarts the decomposition with stronger parameters; it never escapes
    the public API.
    """


class BucketStructureError(ReproError):
    """A bucketing structure was used outside its contract."""
