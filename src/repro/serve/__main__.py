"""CLI for the coreness service: replay a generated stream, print metrics.

Examples::

    python -m repro.serve --tiny
    python -m repro.serve --graph OK-S --profile bursty --batches 48
    python -m repro.serve --tiny --profile churn --trace serve.trace.json
    python -m repro.serve --tiny --metrics --metrics-output serve.obs.json

The report is schema-versioned JSON (see ``SERVE_SCHEMA_VERSION``) on
stdout, or at ``--output``.  Same arguments → bit-identical report: the
stream generator, the engine, and the service clock are all
deterministic.  ``--metrics`` prints the registry dashboard and the
per-epoch table to stderr; ``--metrics-output`` / ``--prom`` write the
byte-deterministic JSON snapshot / Prometheus text exposition.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.generators import streams, suite
from repro.obs import (
    MetricsRegistry,
    observing,
    render_dashboard,
    render_epoch_table,
    write_prometheus,
    write_snapshot,
)
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.serve import run_service
from repro.trace import Tracer, tracing, write_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="replay an update+query stream against the "
        "batch-dynamic coreness service",
    )
    parser.add_argument(
        "--graph",
        default="LJ-S",
        help="suite graph to serve (default: LJ-S; see repro.bench --list)",
    )
    parser.add_argument(
        "--size",
        choices=suite.SIZES,
        default=None,
        help="suite tier (default: full, or tiny with --tiny)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke preset: tiny tier, 12 small batches",
    )
    parser.add_argument(
        "--profile",
        choices=streams.PROFILES,
        default="steady",
        help="stream shape (default: steady)",
    )
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--queries-per-batch", type=int, default=None)
    parser.add_argument(
        "--interval",
        type=float,
        default=streams.DEFAULT_INTERVAL_NS,
        help="nominal inter-batch gap in simulated ns "
        f"(default: {streams.DEFAULT_INTERVAL_NS:.0f})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threads",
        type=int,
        default=DEFAULT_COST_MODEL.n_cores,
        help="simulated thread count the writer peels on "
        f"(default: {DEFAULT_COST_MODEL.n_cores})",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report JSON here instead of stdout",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Perfetto trace of the replay to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics dashboard and per-epoch table to stderr",
    )
    parser.add_argument(
        "--metrics-output",
        default=None,
        metavar="FILE",
        help="write the registry's JSON snapshot to FILE",
    )
    parser.add_argument(
        "--prom",
        default=None,
        metavar="FILE",
        help="write the registry in Prometheus text exposition to FILE",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    size = args.size or ("tiny" if args.tiny else "full")
    defaults = (12, 8, 6) if args.tiny else (32, 16, 8)
    batches = args.batches if args.batches is not None else defaults[0]
    batch_size = (
        args.batch_size if args.batch_size is not None else defaults[1]
    )
    queries = (
        args.queries_per_batch
        if args.queries_per_batch is not None
        else defaults[2]
    )

    graph = suite.load(args.graph, size=size)
    events = streams.generate_stream(
        graph,
        args.profile,
        batches=batches,
        batch_size=batch_size,
        queries_per_batch=queries,
        interval_ns=args.interval,
        seed=args.seed,
    )
    context = {
        "graph": args.graph,
        "size": size,
        "profile": args.profile,
        "batches": batches,
        "batch_size": batch_size,
        "queries_per_batch": queries,
        "interval_ns": args.interval,
        "seed": args.seed,
    }
    registry = MetricsRegistry(label=f"serve/{args.graph}/{args.profile}")
    with observing(registry):
        if args.trace:
            tracer = Tracer(label=f"serve/{args.graph}/{args.profile}")
            with tracing(tracer):
                report = run_service(
                    graph, events, threads=args.threads, context=context,
                    registry=registry,
                )
            write_trace(tracer, args.trace, registry=registry)
        else:
            report = run_service(
                graph, events, threads=args.threads, context=context,
                registry=registry,
            )

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.trace:
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        print(render_dashboard(registry), file=sys.stderr)
        print(render_epoch_table(registry), file=sys.stderr)
    if args.metrics_output:
        write_snapshot(registry, args.metrics_output)
        print(f"wrote metrics snapshot to {args.metrics_output}",
              file=sys.stderr)
    if args.prom:
        write_prometheus(registry, args.prom)
        print(f"wrote prometheus metrics to {args.prom}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
