"""The serving layer: a long-lived coreness service on the simulated clock.

``repro.serve`` is the milestone the ROADMAP calls
*recompute-can-never-serve-it*: a service that keeps an exact k-core
decomposition live under a stream of edge updates while answering
coreness reads, built on the batch-dynamic engine
(:class:`repro.core.batch_dynamic.BatchDynamicKCore`).

The model follows Liu–Shun–Zablotchi's batched-updates /
asynchronous-reads split:

* **one writer** — update batches are applied one at a time; a batch
  arriving while a previous batch is still peeling queues behind it
  (its latency includes the queueing delay);
* **epoch commits** — a batch commits atomically when its repair rounds
  finish; readers only ever observe committed epochs, never a
  mid-batch state;
* **asynchronous reads** — queries are wait-free: a query arriving at
  simulated time ``t`` is answered immediately from the last epoch
  committed at or before ``t``.  Read latency is therefore a constant
  O(1) lookup by design; the cost of asynchrony shows up as
  *staleness* — the age of the epoch a query was served from — which
  the report tracks in percentiles alongside latency.

All timing lives on the simulated clock (``SimRuntime.time_on``); the
wall clock never enters (lint R003/R006).  Two replays of the same
stream on the same graph produce bit-identical reports.

Every service carries a :class:`repro.obs.MetricsRegistry` (the one
active when it was constructed, or a private one): the writer loop
feeds commit-latency / batch-size / queue-wait / staleness histograms
and marks the registry at each epoch commit, and the report's
``histograms`` section is sourced from it.  Exact percentiles still
come from the raw samples via :func:`repro.obs.percentile_summary`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch_dynamic import BatchDynamicKCore
from repro.generators.streams import Query, UpdateBatch
from repro.graphs.csr import CSRGraph
from repro.obs.registry import (
    OBS_SCHEMA_VERSION,
    PERCENTILES,
    SIZE_BOUNDARIES,
    MetricsRegistry,
    active_registry,
    percentile_summary,
)
from repro.regress.matrix import coreness_fingerprint
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL

#: Version of the serve-report schema.  Bump whenever a field is added,
#: removed, or changes meaning, so consumers fail loudly on mismatch.
#: v2: latency summaries moved to the shared obs helper (values are
#: bit-identical to v1) and the registry-sourced ``histograms`` section
#: was added.
SERVE_SCHEMA_VERSION = 2


@dataclass
class _Epoch:
    """One committed state of the decomposition."""

    commit_time: float
    epoch: int
    coreness: np.ndarray


@dataclass
class ServeStats:
    """Raw per-event samples accumulated during a replay."""

    update_latency_ns: list[float] = field(default_factory=list)
    query_latency_ns: list[float] = field(default_factory=list)
    staleness_ns: list[float] = field(default_factory=list)
    batches: int = 0
    updates_applied: int = 0
    updates_noop: int = 0
    queries: int = 0


class CoreService:
    """A single-writer, asynchronous-reader coreness service.

    Feed it timestamped events (in arrival order) through
    :meth:`submit_batch` / :meth:`submit_query`, or a whole stream
    through :meth:`replay`.  The service advances a simulated clock:
    batch processing occupies the writer for the simulated duration of
    its repair rounds on ``threads`` cores, queries are served
    immediately from the last committed epoch.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: CostModel | None = None,
        threads: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.model = model if model is not None else DEFAULT_COST_MODEL
        self.threads = (
            int(threads) if threads is not None else self.model.n_cores
        )
        if registry is None:
            registry = active_registry()
        #: The observing registry: the caller's (or the process-wide
        #: active one), else a private registry so the report's
        #: histogram section is always populated.
        self.registry = (
            registry if registry is not None else MetricsRegistry("serve")
        )
        self.engine = BatchDynamicKCore(
            graph, model=self.model, registry=self.registry
        )
        #: Simulated time at which the writer becomes free.
        self.clock = 0.0
        #: Committed epochs still visible to in-flight readers.  Epoch 0
        #: (the initial decomposition) commits at time 0.
        self._epochs: list[_Epoch] = [
            _Epoch(0.0, 0, self.engine.coreness.copy())
        ]
        self.stats = ServeStats()
        self._answers = hashlib.sha256()

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def submit_batch(self, event: UpdateBatch) -> float:
        """Apply one update batch; returns its commit time.

        The batch starts when both it has arrived and the writer is
        free; its latency is arrival-to-commit, including queueing.
        """
        start = max(self.clock, event.time)
        queue_wait = start - event.time
        before = self.engine.runtime.time_on(self.threads)
        result = self.engine.apply_batch(
            insertions=event.insertions, deletions=event.deletions
        )
        duration = self.engine.runtime.time_on(self.threads) - before
        commit = start + duration
        self.clock = commit
        self._epochs.append(
            _Epoch(commit, result.epoch, self.engine.coreness.copy())
        )
        applied = result.applied_insertions + result.applied_deletions
        self.stats.batches += 1
        self.stats.updates_applied += applied
        self.stats.updates_noop += (
            result.noop_insertions + result.noop_deletions
        )
        self.stats.update_latency_ns.append(commit - event.time)
        registry = self.registry
        if registry is not None:
            registry.observe("serve.commit_latency_ns", commit - event.time)
            registry.observe("serve.queue_wait_ns", queue_wait)
            registry.observe(
                "serve.batch_size", float(applied),
                boundaries=SIZE_BOUNDARIES,
            )
            if queue_wait > 0:
                registry.inc("serve.queued_batches")
            registry.set_gauge(
                "serve.queue_depth", 1.0 if queue_wait > 0 else 0.0
            )
            registry.mark(commit, label=f"epoch {result.epoch}")
        return commit

    def committed_at(self, time: float) -> _Epoch:
        """The newest epoch committed at or before simulated ``time``."""
        # Events arrive in time order, so older epochs can be dropped as
        # soon as a newer one is visible at the query time.
        while len(self._epochs) >= 2 and self._epochs[1].commit_time <= time:
            self._epochs.pop(0)
        return self._epochs[0]

    def submit_query(self, event: Query) -> tuple[int, int]:
        """Serve one coreness read; returns ``(value, epoch)``.

        Reads are wait-free: the response reflects the last epoch
        committed at or before the arrival time, at a constant O(1)
        lookup cost.  Staleness (arrival time minus that epoch's commit
        time) is recorded separately.
        """
        epoch = self.committed_at(event.time)
        value = int(epoch.coreness[event.vertex])
        self.stats.queries += 1
        self.stats.query_latency_ns.append(self.model.scan_op)
        self.stats.staleness_ns.append(event.time - epoch.commit_time)
        registry = self.registry
        if registry is not None:
            registry.inc("serve.queries")
            registry.observe(
                "serve.staleness_ns", event.time - epoch.commit_time
            )
        self._answers.update(
            f"{event.vertex}:{epoch.epoch}:{value};".encode()
        )
        return value, epoch.epoch

    def replay(self, events) -> None:
        """Process a whole stream (events must be in arrival order)."""
        for event in events:
            if isinstance(event, UpdateBatch):
                self.submit_batch(event)
            elif isinstance(event, Query):
                self.submit_query(event)
            else:
                raise TypeError(
                    f"unknown stream event type: {type(event).__name__}"
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(
        self, context: dict[str, object] | None = None
    ) -> dict[str, object]:
        """The schema-versioned metrics report of everything replayed.

        ``context`` entries (graph name, profile, seed, ...) are stored
        under the ``"stream"`` key verbatim.
        """
        stats = self.stats
        duration = self.clock
        per_second = 1e9 / duration if duration > 0 else 0.0
        graph = self.engine.snapshot()
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "stream": dict(context or {}),
            "threads": self.threads,
            "graph": {"n": graph.n, "m": graph.m},
            "events": {
                "batches": stats.batches,
                "updates_applied": stats.updates_applied,
                "updates_noop": stats.updates_noop,
                "queries": stats.queries,
            },
            "throughput": {
                "sim_duration_ns": duration,
                "updates_per_sec": stats.updates_applied * per_second,
                "queries_per_sec": stats.queries * per_second,
            },
            "latency": {
                "update_ns": percentile_summary(stats.update_latency_ns),
                "query_ns": percentile_summary(stats.query_latency_ns),
                "staleness_ns": percentile_summary(stats.staleness_ns),
            },
            "histograms": {
                "obs_schema_version": OBS_SCHEMA_VERSION,
                "commit_latency_ns": self.registry.histogram_dict(
                    "serve.commit_latency_ns"
                ),
                "queue_wait_ns": self.registry.histogram_dict(
                    "serve.queue_wait_ns"
                ),
                "batch_size": self.registry.histogram_dict(
                    "serve.batch_size"
                ),
                "staleness_ns": self.registry.histogram_dict(
                    "serve.staleness_ns"
                ),
            },
            "epochs": {"committed": self.engine.epoch},
            "coreness": coreness_fingerprint(self.engine.coreness),
            "answers_sha256": self._answers.hexdigest()[:16],
            "ledger": self.engine.metrics.to_stable_dict(),
        }


def run_service(
    graph: CSRGraph,
    events,
    model: CostModel | None = None,
    threads: int | None = None,
    context: dict[str, object] | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, object]:
    """Replay ``events`` against a fresh service; return its report."""
    service = CoreService(
        graph, model=model, threads=threads, registry=registry
    )
    service.replay(events)
    return service.report(context)


__all__ = [
    "PERCENTILES",
    "SERVE_SCHEMA_VERSION",
    "CoreService",
    "ServeStats",
    "run_service",
]
