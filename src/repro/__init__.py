"""repro — a reproduction of *Parallel k-Core Decomposition: Theory and
Practice* (SIGMOD 2025).

Quickstart::

    from repro import ParallelKCore, generators

    graph = generators.load("LJ-S")          # scaled LiveJournal analogue
    result = ParallelKCore().decompose(graph)
    print(result.kmax, result.time_on(96))   # coreness + simulated time

The package layers:

* :mod:`repro.graphs` — CSR graphs, I/O, statistics;
* :mod:`repro.generators` — every graph family of the paper's Table 2;
* :mod:`repro.runtime` — the simulated parallel machine (work / span /
  burdened span / contention), substituting for real shared-memory
  parallelism that Python's GIL forbids;
* :mod:`repro.primitives`, :mod:`repro.structures` — parallel building
  blocks (pack, histogram, hash bag, bucketing structures including the
  paper's hierarchical bucketing structure);
* :mod:`repro.core` — the work-efficient framework, the sampling and VGC
  techniques, the flagship :class:`ParallelKCore`, and the ParK / PKC /
  Julienne / Galois baselines;
* :mod:`repro.analysis` — the experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

from repro import generators, graphs, primitives, runtime, structures
from repro.core import (
    CorenessResult,
    FrameworkConfig,
    ParallelKCore,
    SamplingConfig,
    SubgraphResult,
    bz_core,
    check_coreness,
    decompose,
    degeneracy,
    degeneracy_order,
    kcore,
    max_kcore_subgraph,
    reference_coreness,
)
from repro.graphs import CSRGraph

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "CorenessResult",
    "FrameworkConfig",
    "ParallelKCore",
    "SamplingConfig",
    "SubgraphResult",
    "__version__",
    "bz_core",
    "check_coreness",
    "decompose",
    "degeneracy",
    "degeneracy_order",
    "generators",
    "graphs",
    "kcore",
    "max_kcore_subgraph",
    "primitives",
    "reference_coreness",
    "runtime",
    "structures",
]
