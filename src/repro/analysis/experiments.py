"""Experiment harness: run algorithms on suite graphs, collect records.

Every benchmark regenerating a paper table or figure goes through this
module: it knows the standard algorithm roster (ours + the three parallel
baselines + the sequential BZ), executes a run, and condenses it into a
:class:`RunRecord` holding the simulated times and the peeling statistics
the paper reports.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.core.baselines import julienne_kcore, park_kcore, pkc_kcore
from repro.core.parallel_kcore import ParallelKCore
from repro.core.result import CorenessResult
from repro.core.sequential import bz_core
from repro.generators import suite
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import (
    CostModel,
    DEFAULT_COST_MODEL,
    nanos_to_millis,
)

#: Thread count of the paper's evaluation machine.
PAPER_THREADS = 96

#: When set (to anything non-empty), every :class:`ExperimentCache`
#: additionally consults the ``repro.bench`` disk cache, so repeated
#: benchmark invocations skip recomputation across processes.
DISK_CACHE_ENV = "REPRO_BENCH_CACHE"


@dataclass(frozen=True)
class RunRecord:
    """Condensed result of one algorithm execution on one graph."""

    algorithm: str
    graph: str
    n: int
    m: int
    kmax: int
    rho: int
    time_ms: float  # simulated time on PAPER_THREADS
    seq_ms: float  # simulated time on one thread (the work)
    burdened_span: float
    max_contention: int
    restarts: int

    @property
    def self_speedup(self) -> float:
        """``T_1 / T_96`` (Table 2's "spd." column)."""
        if self.time_ms == 0:
            return float("inf")
        return self.seq_ms / self.time_ms


def record_from_result(
    result: CorenessResult, graph: CSRGraph, threads: int = PAPER_THREADS
) -> RunRecord:
    """Condense a :class:`CorenessResult` into a :class:`RunRecord`."""
    return RunRecord(
        algorithm=result.algorithm,
        graph=graph.name,
        n=graph.n,
        m=graph.m,
        kmax=result.kmax,
        rho=result.metrics.subrounds,
        time_ms=nanos_to_millis(result.time_on(threads)),
        seq_ms=nanos_to_millis(result.time_on(1)),
        burdened_span=result.metrics.burdened_span,
        max_contention=result.metrics.max_contention,
        restarts=result.metrics.restarts,
    )


Runner = Callable[[CSRGraph, CostModel], CorenessResult]


def _ours(graph: CSRGraph, model: CostModel) -> CorenessResult:
    return ParallelKCore(model=model).decompose(graph)


def _ours_plain(graph: CSRGraph, model: CostModel) -> CorenessResult:
    return ParallelKCore(
        sampling=False, vgc=False, buckets="1", model=model
    ).decompose(graph)


#: The roster of the paper's Table 2 (ours + three parallel baselines +
#: the sequential BZ).
ALGORITHMS: dict[str, Runner] = {
    "ours": _ours,
    "ours-plain": _ours_plain,
    "julienne": julienne_kcore,
    "park": park_kcore,
    "pkc": pkc_kcore,
    "bz": bz_core,
}

#: Parallel algorithms only (Fig. 5's roster).
PARALLEL_ALGORITHMS = ("ours", "julienne", "park", "pkc")


def run(
    algorithm: str,
    graph_name: str,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = PAPER_THREADS,
) -> RunRecord:
    """Run one named algorithm on one suite graph."""
    graph = suite.load(graph_name)
    return run_on(algorithm, graph, model=model, threads=threads)


def run_on(
    algorithm: str,
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = PAPER_THREADS,
) -> RunRecord:
    """Run one named algorithm on an arbitrary graph."""
    try:
        runner = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(ALGORITHMS)
        raise KeyError(f"unknown algorithm {algorithm!r}; known: {known}")
    result = runner(graph, model)
    return record_from_result(result, graph, threads=threads)


def _disk_cache():
    """The bench disk cache when ``REPRO_BENCH_CACHE`` is set, else None."""
    if not os.environ.get(DISK_CACHE_ENV):
        return None
    from repro.bench.cache import DiskCache

    return DiskCache()


@dataclass
class ExperimentCache:
    """Memoizes RunRecords so multi-figure benchmark sessions reuse runs.

    With ``REPRO_BENCH_CACHE`` set, records additionally round-trip
    through the :mod:`repro.bench` disk cache, keyed by algorithm, graph,
    size mode, thread count, full cost-model signature and metrics
    schema.  The kernel mode (``REPRO_KERNELS``) is deliberately *not*
    part of the key: both kernel implementations are bit-exact (the
    regression goldens enforce it), so their records are interchangeable.
    """

    model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    threads: int = PAPER_THREADS
    _records: dict[tuple[str, str], RunRecord] = field(default_factory=dict)
    _disk: object = field(default_factory=_disk_cache)

    def _disk_key(self, algorithm: str, graph_name: str) -> str:
        from repro.bench.cache import cache_key
        from repro.generators.suite import tiny_mode
        from repro.runtime.metrics import METRICS_SCHEMA_VERSION

        return cache_key(
            {
                "kind": "run_record",
                "algorithm": algorithm,
                "graph": graph_name,
                "tiny": tiny_mode(),
                "threads": self.threads,
                "model": self.model.signature(),
                "metrics_schema": METRICS_SCHEMA_VERSION,
            }
        )

    def get(self, algorithm: str, graph_name: str) -> RunRecord:
        """Run (or fetch) ``algorithm`` on ``graph_name``."""
        from repro.obs.registry import active_registry

        registry = active_registry()
        key = (algorithm, graph_name)
        if key not in self._records:
            record = None
            disk_key = None
            if self._disk is not None:
                disk_key = self._disk_key(algorithm, graph_name)
                payload = self._disk.get(disk_key)
                if payload is not None:
                    record = RunRecord(**payload)
                    if registry is not None:
                        registry.inc("cache.bench_record.disk_hit")
            if record is None:
                if registry is not None:
                    registry.inc("cache.bench_record.miss")
                record = run(
                    algorithm,
                    graph_name,
                    model=self.model,
                    threads=self.threads,
                )
                if self._disk is not None:
                    self._disk.put(disk_key, asdict(record))
            self._records[key] = record
        elif registry is not None:
            registry.inc("cache.bench_record.memo_hit")
        return self._records[key]

    def best_sequential_ms(self, graph_name: str) -> float:
        """min(BZ, our one-thread work) — the paper's sequential reference."""
        bz = self.get("bz", graph_name).seq_ms
        ours = self.get("ours", graph_name).seq_ms
        return min(bz, ours)
