"""Peeling-process introspection: wave structure and frontier profiles.

The paper's Fig. 3 illustrates *why* grids are adversarial: peeling
proceeds in O(sqrt(n)) diagonal waves of tiny frontiers.  These helpers
expose that structure — which subround each vertex falls in and how big
every frontier was — for analysis, visualization and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.peel_online import OnlinePeel
from repro.core.state import PeelState
from repro.core.vgc import VGCConfig
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.simulator import SimRuntime
from repro.structures.single_bucket import SingleBucket


@dataclass(frozen=True)
class PeelingProfile:
    """Wave structure of one peeling execution.

    Attributes:
        wave: Per-vertex subround index (1-based, global across rounds).
        round_of: Per-vertex peeling round (== coreness).
        frontier_sizes: Size of every subround's frontier, in order.
    """

    wave: np.ndarray
    round_of: np.ndarray
    frontier_sizes: list[int]

    @property
    def subrounds(self) -> int:
        return len(self.frontier_sizes)

    def waves_in_round(self, k: int) -> int:
        """Number of subrounds executed within round ``k``."""
        mask = self.round_of == k
        if not mask.any():
            return 0
        waves = np.unique(self.wave[mask])
        return int(waves.size)


def peeling_profile(
    graph: CSRGraph,
    vgc: bool = False,
    queue_size: int = 128,
    model: CostModel = DEFAULT_COST_MODEL,
) -> PeelingProfile:
    """Run the online peel and record which subround claims each vertex.

    With ``vgc=True`` vertices absorbed by a local search share their
    seed's subround — exactly the wave-merging of the paper's Fig. 3(b).
    """
    runtime = SimRuntime(model)
    n = graph.n
    dtilde = graph.degrees.astype(np.int64).copy()
    peeled = np.zeros(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    buckets = SingleBucket()
    buckets.build(graph, dtilde, peeled, runtime)
    peel = OnlinePeel(vgc=VGCConfig(queue_size) if vgc else None)
    state = PeelState(
        graph=graph,
        dtilde=dtilde,
        peeled=peeled,
        coreness=coreness,
        runtime=runtime,
        buckets=buckets,
        sampling=None,
    )

    wave = np.zeros(n, dtype=np.int64)
    round_of = np.zeros(n, dtype=np.int64)
    frontier_sizes: list[int] = []
    current_wave = 0
    while True:
        step = buckets.next_round()
        if step is None:
            break
        k, frontier = step
        while frontier.size:
            current_wave += 1
            before = peeled.copy()
            coreness[frontier] = k
            peeled[frontier] = True
            frontier = peel.subround(state, frontier, k)
            newly = np.nonzero(peeled & ~before)[0]
            wave[newly] = current_wave
            round_of[newly] = k
            frontier_sizes.append(int(newly.size))
    return PeelingProfile(
        wave=wave, round_of=round_of, frontier_sizes=frontier_sizes
    )


def render_wave_grid(profile: PeelingProfile, rows: int, cols: int) -> str:
    """ASCII view of the waves on a grid graph (Fig. 3 as text).

    Each cell shows its subround index modulo 10; deeper waves read as
    rings closing in from the corners.
    """
    if profile.wave.size != rows * cols:
        raise ValueError("profile does not match the grid dimensions")
    lines = []
    for r in range(rows):
        row = profile.wave[r * cols : (r + 1) * cols]
        lines.append("".join(str(int(w) % 10) for w in row))
    return "\n".join(lines)
