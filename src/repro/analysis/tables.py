"""Regenerators for the paper's tables (Table 2 and Table 3 / Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import ExperimentCache, record_from_result
from repro.analysis.reporting import geometric_mean, render_table
from repro.core.parallel_kcore import ParallelKCore
from repro.generators import suite
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL

#: Column order of Table 3 (the paper's eight technique combinations).
TABLE3_COLUMNS = (
    "Plain",
    "VGC",
    "Sample",
    "HBS",
    "VGC+Sample",
    "VGC+HBS",
    "Sample+HBS",
    "All",
)


@dataclass
class Table2Row:
    """One row of Table 2 (graph statistics + all running times in ms)."""

    graph: str
    family: str
    n: int
    m: int
    kmax: int
    rho: int
    ours_seq_ms: float
    ours_par_ms: float
    self_speedup: float
    bz_ms: float
    julienne_ms: float
    park_ms: float
    pkc_ms: float

    def best_algorithm(self) -> str:
        """Name of the fastest parallel algorithm on this graph."""
        times = {
            "ours": self.ours_par_ms,
            "julienne": self.julienne_ms,
            "park": self.park_ms,
            "pkc": self.pkc_ms,
        }
        return min(times, key=times.get)

    def as_cells(self) -> list[object]:
        return [
            self.graph,
            self.n,
            self.m,
            self.kmax,
            self.rho,
            self.ours_seq_ms,
            self.ours_par_ms,
            self.self_speedup,
            self.bz_ms,
            self.julienne_ms,
            self.park_ms,
            self.pkc_ms,
        ]


TABLE2_HEADERS = (
    "graph", "n", "m", "kmax", "rho", "seq(ms)", "par(ms)", "spd",
    "BZ(ms)", "Julienne", "ParK", "PKC",
)


def table2_row(cache: ExperimentCache, graph_name: str) -> Table2Row:
    """Compute one Table 2 row.

    ``rho`` follows the paper's definition — the peeling complexity of the
    *plain* (subround-per-frontier) peel, not the VGC-compressed count.
    """
    ours = cache.get("ours", graph_name)
    plain = cache.get("ours-plain", graph_name)
    return Table2Row(
        graph=graph_name,
        family=suite.SUITE[graph_name].family,
        n=ours.n,
        m=ours.m,
        kmax=ours.kmax,
        rho=plain.rho,
        ours_seq_ms=ours.seq_ms,
        ours_par_ms=ours.time_ms,
        self_speedup=ours.self_speedup,
        bz_ms=cache.get("bz", graph_name).seq_ms,
        julienne_ms=cache.get("julienne", graph_name).time_ms,
        park_ms=cache.get("park", graph_name).time_ms,
        pkc_ms=cache.get("pkc", graph_name).time_ms,
    )


def table2(
    cache: ExperimentCache | None = None,
    graph_names: tuple[str, ...] | None = None,
) -> list[Table2Row]:
    """All rows of Table 2 over the (scaled) suite."""
    cache = cache if cache is not None else ExperimentCache()
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    return [table2_row(cache, name) for name in names]


def render_table2(rows: list[Table2Row]) -> str:
    """Format Table 2 with the paper's per-family geomean lines."""
    out = [
        render_table(
            TABLE2_HEADERS, [r.as_cells() for r in rows],
            title="Table 2: running times (simulated ms, 96 threads)",
        )
    ]
    for family in ("social", "web", "road", "knn", "other"):
        fam = [r for r in rows if r.family == family]
        if not fam:
            continue
        out.append(
            f"geomean[{family}]  ours={geometric_mean([r.ours_par_ms for r in fam]):.3f}  "
            f"julienne={geometric_mean([r.julienne_ms for r in fam]):.3f}  "
            f"park={geometric_mean([r.park_ms for r in fam]):.3f}  "
            f"pkc={geometric_mean([r.pkc_ms for r in fam]):.3f}"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# Table 3 / Fig. 13: the eight technique combinations
# ----------------------------------------------------------------------
def table3_row(
    graph_name: str,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = 96,
) -> dict[str, float]:
    """Running time (ms) of all eight combinations on one graph."""
    graph = suite.load(graph_name)
    row: dict[str, float] = {}
    for label, solver in ParallelKCore.variants(model=model).items():
        result = solver.decompose(graph)
        row[label] = record_from_result(result, graph, threads).time_ms
    return row


def normalize_row(row: dict[str, float]) -> dict[str, float]:
    """Normalize a Table 3 row to its minimum (the paper's heatmap)."""
    best = min(row.values())
    if best == 0:
        return {k: 1.0 for k in row}
    return {k: v / best for k, v in row.items()}


def table3(
    graph_names: tuple[str, ...] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
) -> dict[str, dict[str, float]]:
    """Raw Table 3: graph -> {combination -> time_ms}."""
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    return {name: table3_row(name, model=model) for name in names}


def render_table3(data: dict[str, dict[str, float]]) -> str:
    """Format Table 3 normalized to the per-graph minimum (Fig. 13)."""
    rows = []
    for graph, row in data.items():
        norm = normalize_row(row)
        rows.append([graph] + [norm[c] for c in TABLE3_COLUMNS])
    return render_table(
        ("graph",) + TABLE3_COLUMNS,
        rows,
        title="Table 3 / Fig. 13: technique combinations "
        "(normalized to per-graph best)",
    )
