"""Plain-text rendering of benchmark tables and figure series."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive entries (paper convention)."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def format_cell(value: object) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (the benches print these)."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, points: Sequence[tuple[object, float]]
) -> str:
    """Render a named (x, y) series as one line per point."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x}: {format_cell(float(y))}")
    return "\n".join(lines)
