"""Exporters: experiment records to JSON / CSV / Markdown.

The benchmark harness produces :class:`~repro.analysis.experiments.RunRecord`
objects and table/figure data; downstream consumers (plotting notebooks,
CI dashboards, the EXPERIMENTS.md refresh) want them in standard formats.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import asdict
from typing import Iterable, Sequence

from repro.analysis.experiments import RunRecord


def dump_json(payload: object, path: str | os.PathLike) -> None:
    """Write ``payload`` as pretty JSON with a trailing newline.

    Insertion order is preserved (no key sorting), so serializations with
    a deliberate schema order — the regression goldens, reproducer dumps —
    produce line-stable diffs.  Floats round-trip exactly (``json`` emits
    ``repr``-accurate literals).
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_json(path: str | os.PathLike) -> object:
    """Read a JSON document written by :func:`dump_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def records_to_json(
    records: Iterable[RunRecord], path: str | os.PathLike
) -> None:
    """Write run records as a JSON array."""
    payload = [asdict(record) for record in records]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def records_from_json(path: str | os.PathLike) -> list[RunRecord]:
    """Read run records written by :func:`records_to_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return [RunRecord(**entry) for entry in payload]


def records_to_csv(
    records: Sequence[RunRecord], path: str | os.PathLike
) -> None:
    """Write run records as CSV with a header row."""
    if not records:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write("")
        return
    fields = list(asdict(records[0]).keys())
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))


def markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured Markdown table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def records_to_markdown(records: Sequence[RunRecord]) -> str:
    """Markdown comparison table of run records."""
    headers = (
        "graph", "algorithm", "t96 (ms)", "t1 (ms)", "speedup", "rho",
        "max contention",
    )
    rows = [
        (
            r.graph,
            r.algorithm,
            r.time_ms,
            r.seq_ms,
            r.self_speedup,
            r.rho,
            r.max_contention,
        )
        for r in records
    ]
    return markdown_table(headers, rows)
