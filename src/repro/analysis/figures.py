"""Regenerators for the paper's figures (data series, printed as text).

Every function returns plain data (dicts / lists of points) so benchmarks
and tests can assert on the series, and the benches print them via
:mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import ExperimentCache, PARALLEL_ALGORITHMS
from repro.core.baselines import galois_max_kcore
from repro.core.baselines.julienne import julienne_kcore
from repro.core.parallel_kcore import ParallelKCore
from repro.core.subgraph import max_kcore_subgraph
from repro.generators import suite
from repro.runtime.cost_model import (
    CostModel,
    DEFAULT_COST_MODEL,
    nanos_to_millis,
)
from repro.runtime.scheduler import SCALABILITY_THREADS, speedup_curve


# ----------------------------------------------------------------------
# Fig. 2: speedup over the best sequential time, representative graphs
# ----------------------------------------------------------------------
def fig2_seq_speedup(
    cache: ExperimentCache | None = None,
    graph_names: tuple[str, ...] = suite.REPRESENTATIVE,
) -> dict[str, dict[str, float]]:
    """graph -> {algorithm -> speedup over best sequential}."""
    cache = cache if cache is not None else ExperimentCache()
    out: dict[str, dict[str, float]] = {}
    for name in graph_names:
        seq = cache.best_sequential_ms(name)
        out[name] = {
            algo: seq / cache.get(algo, name).time_ms
            for algo in PARALLEL_ALGORITHMS
        }
    return out


# ----------------------------------------------------------------------
# Fig. 5: baseline running time normalized to ours, all graphs
# ----------------------------------------------------------------------
def fig5_relative_time(
    cache: ExperimentCache | None = None,
    graph_names: tuple[str, ...] | None = None,
) -> dict[str, dict[str, float]]:
    """graph -> {baseline -> time / ours_time} (1.0 is our algorithm)."""
    cache = cache if cache is not None else ExperimentCache()
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    out: dict[str, dict[str, float]] = {}
    for name in names:
        ours = cache.get("ours", name).time_ms
        out[name] = {
            algo: cache.get(algo, name).time_ms / ours
            for algo in ("julienne", "park", "pkc")
        }
    return out


# ----------------------------------------------------------------------
# Fig. 6 + Fig. 11: speedup of VGC / sampling / both over plain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationPoint:
    """Ablation times (ms) on one graph."""

    graph: str
    plain_ms: float
    vgc_ms: float
    sampling_ms: float
    both_ms: float

    @property
    def vgc_speedup(self) -> float:
        return self.plain_ms / self.vgc_ms

    @property
    def sampling_speedup(self) -> float:
        return self.plain_ms / self.sampling_ms

    @property
    def both_speedup(self) -> float:
        return self.plain_ms / self.both_ms


def fig6_ablation(
    graph_names: tuple[str, ...] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = 96,
) -> list[AblationPoint]:
    """VGC / sampling ablation over the plain version (paper Fig. 6)."""
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    points = []
    for name in names:
        graph = suite.load(name)

        def time_of(sampling: bool, vgc: bool) -> float:
            solver = ParallelKCore(
                sampling=sampling, vgc=vgc, buckets="1", model=model
            )
            return nanos_to_millis(
                solver.decompose(graph).time_on(threads)
            )

        points.append(
            AblationPoint(
                graph=name,
                plain_ms=time_of(False, False),
                vgc_ms=time_of(False, True),
                sampling_ms=time_of(True, False),
                both_ms=time_of(True, True),
            )
        )
    return points


def fig11_sampling(
    graph_names: tuple[str, ...] = suite.SAMPLING_TRIGGER,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = 96,
) -> dict[str, tuple[float, float]]:
    """graph -> (time without sampling, time with sampling), full config.

    The paper's Fig. 11 compares the final algorithm with and without
    sampling on the eight graphs that trigger it.
    """
    out: dict[str, tuple[float, float]] = {}
    for name in graph_names:
        graph = suite.load(name)
        without = ParallelKCore(
            sampling=False, vgc=True, buckets="adaptive", model=model
        ).decompose(graph)
        with_s = ParallelKCore(
            sampling=True, vgc=True, buckets="adaptive", model=model
        ).decompose(graph)
        out[name] = (
            nanos_to_millis(without.time_on(threads)),
            nanos_to_millis(with_s.time_on(threads)),
        )
    return out


# ----------------------------------------------------------------------
# Fig. 7: number of subrounds with and without VGC
# ----------------------------------------------------------------------
def fig7_subrounds(
    graph_names: tuple[str, ...] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
) -> dict[str, tuple[int, int]]:
    """graph -> (subrounds without VGC, subrounds with VGC): rho vs rho'."""
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    out: dict[str, tuple[int, int]] = {}
    for name in names:
        graph = suite.load(name)
        without = ParallelKCore(
            sampling=False, vgc=False, buckets="1", model=model
        ).decompose(graph)
        with_vgc = ParallelKCore(
            sampling=False, vgc=True, buckets="1", model=model
        ).decompose(graph)
        out[name] = (without.rho, with_vgc.rho)
    return out


# ----------------------------------------------------------------------
# Fig. 8: bucketing strategies normalized to HBS
# ----------------------------------------------------------------------
def fig8_bucketing(
    graph_names: tuple[str, ...] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = 96,
) -> dict[str, dict[str, float]]:
    """graph -> {strategy -> time / HBS time} for 1 / 16 / HBS buckets."""
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    out: dict[str, dict[str, float]] = {}
    for name in names:
        graph = suite.load(name)
        times = {}
        for label, buckets in (
            ("1-bucket", "1"),
            ("16-bucket", "16"),
            ("hbs", "adaptive"),
        ):
            solver = ParallelKCore(
                sampling=True, vgc=True, buckets=buckets, model=model
            )
            times[label] = nanos_to_millis(
                solver.decompose(graph).time_on(threads)
            )
        out[name] = {k: v / times["hbs"] for k, v in times.items()}
    return out


# ----------------------------------------------------------------------
# Figs. 9 / 14: burdened-span speedup over Julienne; Fig. 15: time
# ----------------------------------------------------------------------
def fig9_burdened_span(
    graph_names: tuple[str, ...] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
) -> dict[str, tuple[float, float]]:
    """graph -> (ours-no-VGC speedup, ours-VGC speedup) over Julienne.

    Speedups are burdened-span ratios (higher favours ours); the paper's
    green dotted line at 1 is Julienne itself.
    """
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    out: dict[str, tuple[float, float]] = {}
    for name in names:
        graph = suite.load(name)
        jul = julienne_kcore(graph, model).metrics.burdened_span_under(model)
        no_vgc = ParallelKCore(
            sampling=True, vgc=False, buckets="16", model=model
        ).decompose(graph).metrics.burdened_span_under(model)
        with_vgc = ParallelKCore(
            sampling=True, vgc=True, buckets="16", model=model
        ).decompose(graph).metrics.burdened_span_under(model)
        out[name] = (jul / no_vgc, jul / with_vgc)
    return out


def fig15_time_vs_julienne(
    graph_names: tuple[str, ...] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = 96,
) -> dict[str, tuple[float, float]]:
    """graph -> (ours-no-VGC, ours-VGC) running-time speedup over Julienne."""
    names = graph_names if graph_names is not None else tuple(suite.SUITE)
    out: dict[str, tuple[float, float]] = {}
    for name in names:
        graph = suite.load(name)
        jul = julienne_kcore(graph, model).time_on(threads)
        no_vgc = ParallelKCore(
            sampling=True, vgc=False, buckets="16", model=model
        ).decompose(graph).time_on(threads)
        with_vgc = ParallelKCore(
            sampling=True, vgc=True, buckets="16", model=model
        ).decompose(graph).time_on(threads)
        out[name] = (jul / no_vgc, jul / with_vgc)
    return out


# ----------------------------------------------------------------------
# Fig. 10: self-relative scalability
# ----------------------------------------------------------------------
def fig10_scalability(
    graph_names: tuple[str, ...],
    model: CostModel = DEFAULT_COST_MODEL,
    threads: tuple[int, ...] = SCALABILITY_THREADS,
) -> dict[str, list[tuple[int, float]]]:
    """graph -> [(threads, self-relative speedup)] for the final algorithm."""
    out: dict[str, list[tuple[int, float]]] = {}
    for name in graph_names:
        graph = suite.load(name)
        result = ParallelKCore(model=model).decompose(graph)
        curve = speedup_curve(result.metrics, threads=threads, model=model)
        out[name] = [(p.threads, p.speedup) for p in curve]
    return out


# ----------------------------------------------------------------------
# Fig. 12: max k-core subgraph vs the Galois-style baseline
# ----------------------------------------------------------------------
def fig12_subgraph(
    graph_names: tuple[str, ...] = ("OK-S", "TW-S"),
    k_values: tuple[int, ...] = (4, 8, 16, 32, 64),
    model: CostModel = DEFAULT_COST_MODEL,
    threads: int = 96,
) -> dict[str, list[tuple[int, float, float]]]:
    """graph -> [(k, ours_ms, galois_ms)] for the subgraph-finding task.

    The paper sweeps k = 16..2048 on the full OK / TW; the scaled graphs
    support a proportionally scaled k range.
    """
    out: dict[str, list[tuple[int, float, float]]] = {}
    for name in graph_names:
        graph = suite.load(name)
        series = []
        for k in k_values:
            ours = max_kcore_subgraph(graph, k, model=model)
            galois = galois_max_kcore(graph, k, model=model)
            series.append(
                (
                    k,
                    nanos_to_millis(ours.metrics.time_on(threads, model)),
                    nanos_to_millis(
                        galois.metrics.time_on(threads, model)
                    ),
                )
            )
        out[name] = series
    return out
