"""Comparators: blessed goldens vs a fresh matrix run.

Comparison is *exact*: the simulated runtime is deterministic, so any
difference — a 0.25 on one work counter included — is a drift that either
gets explained and blessed or reveals an unintended change.  Drifts are
collected per metric with old/new values so reports can show the magnitude
and direction of every excursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MetricDrift:
    """One golden metric whose value moved (or appeared / disappeared)."""

    case_id: str
    metric: str
    old: object  # None when the case/metric is new
    new: object  # None when the case/metric vanished

    @property
    def pct(self) -> float | None:
        """Signed percent delta, when both endpoints are nonzero numbers."""
        if not isinstance(self.old, (int, float)) or isinstance(
            self.old, bool
        ):
            return None
        if not isinstance(self.new, (int, float)) or isinstance(
            self.new, bool
        ):
            return None
        if self.old == 0:
            return None
        return 100.0 * (self.new - self.old) / abs(self.old)


@dataclass
class DriftReport:
    """Outcome of one goldens-vs-fresh comparison."""

    drifts: list[MetricDrift] = field(default_factory=list)
    #: Engines in the fresh run with no blessed golden file.
    unblessed: list[str] = field(default_factory=list)
    #: Engines with a blessed golden but absent from the fresh run
    #: (only when the run was unfiltered — a filtered run skips this).
    stale: list[str] = field(default_factory=list)
    #: Cases compared, drifted or not.
    cases_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.drifts and not self.unblessed and not self.stale

    def drifted_cases(self) -> list[str]:
        """Distinct case ids with at least one drift, in report order."""
        seen: dict[str, None] = {}
        for drift in self.drifts:
            seen.setdefault(drift.case_id, None)
        return list(seen)


def _flatten(payload: dict, prefix: str = "") -> dict[str, object]:
    """Nested payload dicts to dotted scalar paths."""
    flat: dict[str, object] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def diff_entries(
    case_prefix: str,
    old: dict[str, dict[str, object]],
    new: dict[str, dict[str, object]],
) -> list[MetricDrift]:
    """Per-metric drifts between one engine's golden and fresh entries."""
    drifts: list[MetricDrift] = []
    for entry_key in list(new) + [k for k in old if k not in new]:
        case_id = f"{case_prefix}/{entry_key}"
        old_flat = _flatten(old.get(entry_key, {}))
        new_flat = _flatten(new.get(entry_key, {}))
        for metric in list(new_flat) + [
            m for m in old_flat if m not in new_flat
        ]:
            before = old_flat.get(metric)
            after = new_flat.get(metric)
            if before != after:
                drifts.append(MetricDrift(case_id, metric, before, after))
    return drifts


def diff_run(
    blessed: dict[str, dict[str, dict[str, object]] | None],
    fresh: dict[str, dict[str, dict[str, object]]],
    filtered: bool = False,
) -> DriftReport:
    """Compare a fresh matrix run against the blessed goldens.

    Args:
        blessed: ``engine -> entries`` (None marks a missing golden file).
        fresh: ``engine -> entries`` from :func:`repro.regress.run_matrix`.
        filtered: The run was restricted by a pattern, so blessed engines
            absent from ``fresh`` are expected and not reported as stale.
    """
    report = DriftReport()
    for engine, entries in fresh.items():
        report.cases_checked += len(entries)
        golden = blessed.get(engine)
        if golden is None:
            report.unblessed.append(engine)
            continue
        if filtered:
            # Compare only the entries the filtered run produced.
            golden = {k: v for k, v in golden.items() if k in entries}
        report.drifts.extend(diff_entries(engine, golden, entries))
    if not filtered:
        report.stale = [
            engine for engine in blessed if engine not in fresh
        ]
    return report
