"""Render drift reports and oracle findings for humans and machines.

The text drift report groups drifts by case and prints every moved metric
as ``old -> new`` with a signed percent delta, which is the artifact a
reviewer reads before deciding whether to bless.  The JSON form feeds CI
annotations and dashboards.
"""

from __future__ import annotations

import json

from repro.regress.compare import DriftReport, MetricDrift


def _fmt_value(value: object) -> str:
    if value is None:
        return "<absent>"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _fmt_delta(drift: MetricDrift) -> str:
    pct = drift.pct
    if pct is None:
        return ""
    return f"  ({pct:+.2f}%)"


def render_drift_text(report: DriftReport) -> str:
    """Human-readable drift report (empty-drift runs get one PASS line)."""
    lines: list[str] = []
    for engine in report.unblessed:
        lines.append(
            f"UNBLESSED {engine}: no golden file; run "
            f"`python -m repro.regress bless` to pin it"
        )
    for engine in report.stale:
        lines.append(
            f"STALE {engine}: golden file exists but the engine is no "
            f"longer in the matrix; delete the file or restore the engine"
        )
    current = None
    for drift in report.drifts:
        if drift.case_id != current:
            current = drift.case_id
            lines.append(f"DRIFT {drift.case_id}")
        lines.append(
            f"    {drift.metric}: {_fmt_value(drift.old)} -> "
            f"{_fmt_value(drift.new)}{_fmt_delta(drift)}"
        )
    if report.clean:
        lines.append(
            f"OK: {report.cases_checked} cases match the blessed goldens"
        )
    else:
        lines.append(
            f"{len(report.drifts)} drifted metrics across "
            f"{len(report.drifted_cases())} cases "
            f"({report.cases_checked} checked, "
            f"{len(report.unblessed)} unblessed, "
            f"{len(report.stale)} stale)"
        )
    return "\n".join(lines)


def render_drift_json(report: DriftReport) -> str:
    """Machine-readable drift report."""
    payload = {
        "clean": report.clean,
        "cases_checked": report.cases_checked,
        "unblessed": report.unblessed,
        "stale": report.stale,
        "drifts": [
            {
                "case": drift.case_id,
                "metric": drift.metric,
                "old": drift.old,
                "new": drift.new,
                "pct": drift.pct,
            }
            for drift in report.drifts
        ],
    }
    return json.dumps(payload, indent=2)


def render_oracle_text(findings: list) -> str:
    """One line per oracle finding, or a PASS line."""
    if not findings:
        return "OK: every engine agrees with the sequential BZ oracle"
    lines = []
    for finding in findings:
        lines.append(str(finding))
    lines.append(f"{len(findings)} oracle disagreements")
    return "\n".join(lines)


DRIFT_REPORTERS = {
    "text": render_drift_text,
    "json": render_drift_json,
}
