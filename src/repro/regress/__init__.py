"""Golden-metrics regression gate and cross-engine differential oracle.

Two pillars guard the numbers this reproduction exists to produce:

* the **golden-metrics gate** runs a pinned (engine x graph x cost-model)
  matrix under the deterministic simulated runtime and compares every
  :class:`~repro.runtime.metrics.RunMetrics` counter — work, span,
  burdened span, rounds, subrounds, contention, simulated times —
  *exactly* against versioned golden JSON files (``goldens/``), with a
  ``run / bless / diff`` CLI and a per-metric drift report;
* the **differential oracle** confronts every exact engine with the
  sequential Batagelj–Zaversnik baseline on the whole generator suite and
  checks the approximate engine against its (1 + eps) guarantee,
  minimizing any mismatch to a replayable reproducer via delta debugging.

See docs/REGRESSION.md for the workflow and blessing etiquette.
"""

from repro.regress.compare import DriftReport, MetricDrift, diff_run
from repro.regress.goldens import (
    GoldenVersionError,
    goldens_dir,
    list_blessed,
    read_golden,
    write_golden,
)
from repro.regress.matrix import (
    APPROX_EPS,
    CASES,
    COST_MODELS,
    ENGINES,
    GRAPH_BUILDERS,
    RegressCase,
    load_graph,
    run_case,
    run_matrix,
    select_cases,
)
from repro.regress.oracle import (
    EXACT_ENGINES,
    OracleFinding,
    check_approximate,
    check_exact,
    minimize_mismatch,
    run_oracle,
)
from repro.regress.reduce import (
    dump_reproducer,
    load_reproducer,
    minimize_graph,
)
from repro.regress.reporters import (
    render_drift_json,
    render_drift_text,
    render_oracle_text,
)

__all__ = [
    "APPROX_EPS",
    "CASES",
    "COST_MODELS",
    "DriftReport",
    "ENGINES",
    "EXACT_ENGINES",
    "GoldenVersionError",
    "GRAPH_BUILDERS",
    "MetricDrift",
    "OracleFinding",
    "RegressCase",
    "check_approximate",
    "check_exact",
    "diff_run",
    "dump_reproducer",
    "goldens_dir",
    "list_blessed",
    "load_graph",
    "load_reproducer",
    "minimize_graph",
    "minimize_mismatch",
    "read_golden",
    "render_drift_json",
    "render_drift_text",
    "render_oracle_text",
    "run_case",
    "run_matrix",
    "run_oracle",
    "select_cases",
    "write_golden",
]
