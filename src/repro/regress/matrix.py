"""The pinned regression matrix: (engine x graph x cost model) cases.

Everything here is deliberately frozen.  The graphs are built by seeded
generators at fixed sizes, the cost-model variants list every constant they
override, and the case list is an explicit enumeration — so the only way a
golden value changes is a change to the algorithms or the cost model
itself, which is exactly what the gate exists to catch.

The graphs are *dedicated* to the regression matrix (they are not the
benchmark suite): resizing the suite for a figure must not invalidate the
goldens.  One small graph per structural family the paper exercises —
power-law hubs, uniform random, grid, road chains, k-NN clusters, HCNS.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.analysis.experiments import ALGORITHMS
from repro.core.approximate import approximate_coreness
from repro.core.result import CorenessResult
from repro.generators import (
    erdos_renyi,
    grid_2d,
    hcns,
    knn_graph,
    power_law_with_hub,
    road_like,
)
from repro.graphs.csr import CSRGraph
from repro.runtime.cost_model import (
    CostModel,
    CostModelOverrides,
    DEFAULT_COST_MODEL,
)

Runner = Callable[[CSRGraph, CostModel], CorenessResult]

#: Approximation slack of the matrix's approximate-engine entries.
APPROX_EPS = 0.5


def _approx(graph: CSRGraph, model: CostModel) -> CorenessResult:
    return approximate_coreness(graph, eps=APPROX_EPS, model=model)


def _shard(graph: CSRGraph, model: CostModel) -> CorenessResult:
    # Late import: the shard package pulls in multiprocessing plumbing
    # that the matrix's other consumers never need.
    from repro.shard import shard_coreness

    return shard_coreness(graph, model)


#: Engines under regression: the Table 2 roster plus the approximate and
#: sharded engines.  The shard runner uses its default (real) worker
#: pool; its ledger is worker-count independent by construction, which
#: is exactly what pins its goldens.
ENGINES: dict[str, Runner] = dict(ALGORITHMS) | {
    "approx": _approx,
    "shard": _shard,
}

#: Pinned regression graphs — name -> seeded zero-argument builder.
GRAPH_BUILDERS: dict[str, Callable[[], CSRGraph]] = {
    "er-300": lambda: erdos_renyi(300, 6.0, seed=101),
    "hub-500": lambda: power_law_with_hub(
        500, 4, hub_count=2, hub_degree=120, seed=102
    ),
    "grid-24": lambda: grid_2d(24, 24),
    "road-600": lambda: road_like(600, seed=103),
    "knn-400": lambda: knn_graph(400, 4, dim=3, clusters=8, seed=104),
    "hcns-64": lambda: hcns(64),
}

#: Pinned cost-model variants.  ``default`` is the paper's model; the two
#: alternates stress the constants the analysis is most sensitive to.
COST_MODELS: dict[str, CostModel] = {
    "default": DEFAULT_COST_MODEL,
    "cheap-sync": CostModelOverrides().with_fields(
        omega=1_000.0, omega_time=50.0
    ),
    "hot-atomics": CostModelOverrides().with_fields(
        contended_atomic_op=500.0
    ),
}


@dataclass(frozen=True)
class RegressCase:
    """One pinned (engine, graph, cost model) combination."""

    engine: str
    graph: str
    model: str

    @property
    def case_id(self) -> str:
        return f"{self.engine}/{self.graph}/{self.model}"

    @property
    def entry_key(self) -> str:
        """Key inside the engine's golden file (graph and model only)."""
        return f"{self.graph}/{self.model}"


def _build_cases() -> tuple[RegressCase, ...]:
    cases = [
        RegressCase(engine, graph, "default")
        for engine in ENGINES
        for graph in GRAPH_BUILDERS
    ]
    # Alternate cost models: the flagship and one baseline on the two
    # graphs where scheduling overhead and contention dominate.
    for model in ("cheap-sync", "hot-atomics"):
        for engine in ("ours", "julienne"):
            for graph in ("grid-24", "hub-500"):
                cases.append(RegressCase(engine, graph, model))
    return tuple(cases)


#: The full pinned matrix.
CASES: tuple[RegressCase, ...] = _build_cases()


@lru_cache(maxsize=None)
def load_graph(name: str) -> CSRGraph:
    """Build (once per process) the pinned regression graph ``name``."""
    try:
        builder = GRAPH_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(GRAPH_BUILDERS))
        raise KeyError(f"unknown regression graph {name!r}; known: {known}")
    graph = builder()
    graph.name = name
    return graph


def coreness_fingerprint(coreness: np.ndarray) -> dict[str, object]:
    """Exact, compact fingerprint of a coreness array.

    The sha256 prefix pins the array bit-for-bit; kmax and the sum are
    redundant but make drift reports readable without the full array.
    """
    canonical = np.ascontiguousarray(coreness, dtype="<i8")
    return {
        "kmax": int(canonical.max()) if canonical.size else 0,
        "sum": int(canonical.sum()),
        "sha256": hashlib.sha256(canonical.tobytes()).hexdigest()[:16],
    }


def run_case(case: RegressCase) -> dict[str, object]:
    """Execute one matrix case and return its golden payload entry."""
    graph = load_graph(case.graph)
    model = COST_MODELS[case.model]
    result = ENGINES[case.engine](graph, model)
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "coreness": coreness_fingerprint(result.coreness),
        "metrics": result.metrics.to_stable_dict(model),
    }


def select_cases(pattern: str | None = None) -> list[RegressCase]:
    """Matrix cases whose id contains ``pattern`` (all when None)."""
    if not pattern:
        return list(CASES)
    return [case for case in CASES if pattern in case.case_id]


def run_matrix(
    pattern: str | None = None,
) -> dict[str, dict[str, dict[str, object]]]:
    """Run the (filtered) matrix, grouped ``engine -> entry_key -> payload``.

    Case order inside each engine follows the pinned enumeration, so the
    serialized goldens are line-stable across runs.
    """
    out: dict[str, dict[str, dict[str, object]]] = {}
    for case in select_cases(pattern):
        out.setdefault(case.engine, {})[case.entry_key] = run_case(case)
    return out
