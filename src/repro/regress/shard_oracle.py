"""The shard differential oracle: worker-count sweep vs the inline path.

``repro.shard``'s contract is stronger than coreness agreement: for any
worker count, the pooled run must reproduce the single-process (inline)
run **bit-for-bit** — the same coreness array *and* the same simulated
ledger (``RunMetrics.to_stable_dict``), since the coordinator charges
from canonical per-round aggregates that must not depend on the
partition.  This module sweeps the worker counts {1, 2, 3, 4, 7}
against the inline oracle across the generator suite, checks the inline
oracle itself against Batagelj–Zaversnik, and on any divergence ddmins
the witness graph with the PR 2 reduction machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.sequential import bz_core
from repro.generators import suite
from repro.graphs.csr import CSRGraph
from repro.regress.reduce import dump_reproducer, minimize_graph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.shard import shard_coreness

#: Worker counts the differential sweep proves bit-equal (an exact
#: power of two, odd counts, and more workers than balance can use).
SHARD_WORKER_COUNTS: tuple[int, ...] = (1, 2, 3, 4, 7)


@dataclass
class ShardFinding:
    """One divergence between a pooled run and the single-process oracle."""

    graph_name: str
    workers: int  # 0 == the inline oracle itself (checked against BZ)
    kind: str  # "bz" | "coreness" | "ledger"
    detail: str
    reproducer: CSRGraph | None = None
    reproducer_path: Path | None = None

    def __str__(self) -> str:
        where = (
            f", reproducer n={self.reproducer.n} at {self.reproducer_path}"
            if self.reproducer is not None
            else ""
        )
        subject = (
            "inline oracle vs BZ"
            if self.workers == 0
            else f"workers={self.workers} vs inline"
        )
        return (
            f"SHARD MISMATCH [{self.kind}] on {self.graph_name} "
            f"({subject}): {self.detail}{where}"
        )


def _ledger_diff(base: dict, got: dict) -> str:
    """The first differing ledger entry, for the finding's detail line."""
    for key in base:
        if base[key] != got.get(key):
            return f"{key}: inline={base[key]!r} pooled={got.get(key)!r}"
    extra = sorted(set(got) - set(base))
    return f"extra ledger keys {extra}" if extra else "ledgers differ"


def _runs_equal(
    left, right, model: CostModel
) -> tuple[bool, str]:
    """Whether two shard results are bit-identical (coreness + ledger)."""
    if not np.array_equal(left.coreness, right.coreness):
        bad = np.nonzero(left.coreness != right.coreness)[0]
        return False, (
            f"{bad.size} vertices diverge (first: {bad[:10].tolist()})"
        )
    base = left.metrics.to_stable_dict(model)
    got = right.metrics.to_stable_dict(model)
    if base != got:
        return False, _ledger_diff(base, got)
    return True, ""


def minimize_shard_mismatch(
    graph: CSRGraph,
    workers: int,
    model: CostModel = DEFAULT_COST_MODEL,
    budget: int | None = None,
) -> CSRGraph:
    """ddmin the witness while the pooled run still diverges from inline.

    ``workers=0`` minimizes the inline-vs-BZ disagreement instead.
    """

    def failing(candidate: CSRGraph) -> bool:
        inline = shard_coreness(candidate, model, workers=0)
        if workers == 0:
            expected = bz_core(candidate, model).coreness
            return not np.array_equal(expected, inline.coreness)
        pooled = shard_coreness(candidate, model, workers=workers)
        equal, _ = _runs_equal(inline, pooled, model)
        return not equal

    kwargs = {} if budget is None else {"budget": budget}
    return minimize_graph(graph, failing, **kwargs)


def check_shard(
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    worker_counts: Iterable[int] = SHARD_WORKER_COUNTS,
) -> list[ShardFinding]:
    """Findings for one graph (empty == bit-equal everywhere)."""
    findings: list[ShardFinding] = []
    inline = shard_coreness(graph, model, workers=0)
    expected = bz_core(graph, model).coreness
    if not np.array_equal(expected, inline.coreness):
        bad = np.nonzero(expected != inline.coreness)[0]
        findings.append(
            ShardFinding(
                graph_name=graph.name,
                workers=0,
                kind="bz",
                detail=(
                    f"{bad.size} vertices disagree with BZ "
                    f"(first: {bad[:10].tolist()})"
                ),
            )
        )
    for workers in worker_counts:
        pooled = shard_coreness(graph, model, workers=workers)
        equal, detail = _runs_equal(inline, pooled, model)
        if equal:
            continue
        kind = "coreness" if "diverge" in detail else "ledger"
        findings.append(
            ShardFinding(
                graph_name=graph.name,
                workers=workers,
                kind=kind,
                detail=detail,
            )
        )
    return findings


def run_shard_oracle(
    graph_names: Iterable[str] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    size: str = "tiny",
    worker_counts: Iterable[int] = SHARD_WORKER_COUNTS,
    minimize: bool = True,
    dump_dir: str | Path | None = None,
) -> list[ShardFinding]:
    """Sweep worker counts vs the inline oracle across the suite.

    Args:
        graph_names: Suite names to sweep (default: the full suite).
        model: Cost model for every run.
        size: Suite tier ("tiny" is the default — bit-equality is about
            the merge schedule, which tiny graphs already exercise).
        worker_counts: Pool sizes to prove (default {1, 2, 3, 4, 7}).
        minimize: Shrink each divergence witness to a reproducer.
        dump_dir: Where to write reproducer JSON dumps (None: no dumps).
    """
    names = (
        list(graph_names) if graph_names is not None else list(suite.SUITE)
    )
    worker_counts = tuple(worker_counts)
    findings: list[ShardFinding] = []
    for name in names:
        graph = suite.load(name, size=size)
        for finding in check_shard(graph, model, worker_counts):
            finding.graph_name = name
            if minimize:
                finding.reproducer = minimize_shard_mismatch(
                    graph, finding.workers, model
                )
            if dump_dir is not None:
                witness = (
                    finding.reproducer
                    if finding.reproducer is not None
                    else graph
                )
                inline = shard_coreness(witness, model, workers=0)
                finding.reproducer_path = dump_reproducer(
                    witness,
                    Path(dump_dir)
                    / f"shard-{finding.workers}w-{name}.json",
                    engine="shard",
                    expected=bz_core(witness, model).coreness,
                    got=inline.coreness,
                )
            findings.append(finding)
    return findings
