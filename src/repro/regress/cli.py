"""Command-line interface: ``python -m repro.regress <command>``.

Commands:

* ``run``    — execute the pinned matrix and compare against the blessed
  goldens; exit 1 on any drift, unblessed engine, or stale golden;
* ``diff``   — same comparison, always printing the full drift report
  (the command to run when ``run`` fails and you want the details);
* ``bless``  — overwrite the goldens with the current matrix results;
* ``oracle`` — confront every exact engine with sequential BZ across the
  suite, minimizing and dumping any mismatch; exit 1 on disagreement;
* ``oracle-updates`` — replay randomized update-batch sequences through
  the batch-dynamic engine and compare every committed state against a
  full recompute and the legacy per-edge engine, across kernel modes,
  with ddmin witness minimization; exit 1 on divergence;
* ``list``   — print the pinned matrix cases.

The ``run`` / ``diff`` / ``bless`` commands cover the pinned
update-sequence goldens (``goldens/updates.json``) alongside the engine
matrix.

Exit status: 0 clean, 1 drift/mismatch, 2 usage or version errors — the
contract CI and ``make regress`` rely on.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.generators.streams import PROFILES
from repro.generators.suite import SMALL
from repro.perf import (
    KERNELS_ENV,
    NATIVE,
    REFERENCE,
    VECTORIZED,
    native_available,
)
from repro.regress.compare import diff_run
from repro.regress.goldens import (
    GoldenVersionError,
    goldens_dir,
    list_blessed,
    read_golden,
    write_golden,
)
from repro.regress.matrix import CASES, run_matrix, select_cases
from repro.regress.oracle import run_oracle
from repro.regress.reporters import DRIFT_REPORTERS, render_oracle_text
from repro.regress.update_oracle import (
    UPDATE_CASES,
    run_update_matrix,
    run_update_oracle,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-regress",
        description=(
            "Golden-metrics regression gate and cross-engine differential "
            "oracle for the simulated runtime."
        ),
    )
    parser.add_argument(
        "--goldens-dir",
        type=Path,
        default=None,
        help="goldens directory (default: <repo>/goldens or "
        "$REPRO_GOLDENS_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, summary in (
        ("run", "run the matrix and fail on any unblessed drift"),
        ("diff", "run the matrix and print the full drift report"),
        ("bless", "pin the current matrix results as the goldens"),
    ):
        cmd = sub.add_parser(name, help=summary)
        cmd.add_argument(
            "-k",
            "--filter",
            default=None,
            help="only cases whose id contains this substring",
        )
        if name != "bless":
            cmd.add_argument(
                "--format",
                choices=sorted(DRIFT_REPORTERS),
                default="text",
                help="report format (default: text)",
            )

    oracle = sub.add_parser(
        "oracle", help="cross-check every exact engine against BZ"
    )
    oracle.add_argument(
        "--graphs",
        default=None,
        help="comma-separated suite graph names (default: full suite)",
    )
    oracle_size = oracle.add_mutually_exclusive_group()
    oracle_size.add_argument(
        "--full-size",
        action="store_true",
        help="use the full-size suite graphs instead of the tiny ones",
    )
    oracle_size.add_argument(
        "--large",
        action="store_true",
        help="use the large (~10x full) suite graphs",
    )
    oracle.add_argument(
        "--dump-dir",
        type=Path,
        default=None,
        help="directory for mismatch reproducer dumps",
    )
    oracle.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip ddmin minimization of mismatch witnesses",
    )

    updates = sub.add_parser(
        "oracle-updates",
        help="differential sweep of the batch-dynamic update engine",
    )
    updates.add_argument(
        "--graphs",
        default=None,
        help="comma-separated suite graph names (default: the SMALL set)",
    )
    updates.add_argument(
        "--seeds",
        type=int,
        default=7,
        help="stream seeds per (graph, profile) pair (default: 7)",
    )
    updates.add_argument("--batches", type=int, default=8)
    updates.add_argument("--batch-size", type=int, default=10)
    updates.add_argument(
        "--kernels",
        default="all",
        help="comma-separated REPRO_KERNELS modes to sweep, or 'all' "
        "(default: reference + vectorized, + native when available)",
    )
    updates.add_argument(
        "--dump-dir",
        type=Path,
        default=None,
        help="directory for sequence-reproducer dumps",
    )
    updates.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip ddmin minimization of failing sequences",
    )
    updates.add_argument(
        "--no-legacy",
        action="store_true",
        help="skip the (slow) per-edge DynamicKCore cross-check",
    )

    shard = sub.add_parser(
        "oracle-shard",
        help="differential worker-count sweep of the shard engine",
    )
    shard.add_argument(
        "--graphs",
        default=None,
        help="comma-separated suite graph names (default: full suite)",
    )
    shard.add_argument(
        "--small",
        action="store_true",
        help="sweep only the SMALL graph set (CI smoke)",
    )
    shard.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts to prove "
        "(default: 1,2,3,4,7)",
    )
    shard.add_argument(
        "--size",
        default="tiny",
        help="suite tier to sweep (default: tiny)",
    )
    shard.add_argument(
        "--dump-dir",
        type=Path,
        default=None,
        help="directory for divergence reproducer dumps",
    )
    shard.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip ddmin minimization of divergence witnesses",
    )

    sub.add_parser("list", help="print the pinned matrix cases")
    return parser


def _compare(args: argparse.Namespace, verbose: bool) -> int:
    directory = args.goldens_dir
    fresh = run_matrix(args.filter)
    fresh.update(run_update_matrix(args.filter))
    try:
        blessed = {
            engine: read_golden(engine, directory) for engine in fresh
        }
    except GoldenVersionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    known = set(fresh) | {
        engine
        for engine in list_blessed(directory)
        if args.filter is None
    }
    blessed.update(
        {
            engine: read_golden(engine, directory)
            for engine in known
            if engine not in blessed
        }
    )
    report = diff_run(blessed, fresh, filtered=args.filter is not None)
    if verbose or not report.clean:
        print(DRIFT_REPORTERS[args.format](report))
    return 0 if report.clean else 1


def cmd_run(args: argparse.Namespace) -> int:
    return _compare(args, verbose=True)


def cmd_diff(args: argparse.Namespace) -> int:
    return _compare(args, verbose=True)


def cmd_bless(args: argparse.Namespace) -> int:
    directory = args.goldens_dir
    fresh = run_matrix(args.filter)
    fresh.update(run_update_matrix(args.filter))
    for engine, entries in fresh.items():
        if args.filter is not None:
            # Partial bless: merge into the existing golden entries.
            try:
                existing = read_golden(engine, directory) or {}
            except GoldenVersionError:
                existing = {}
            existing.update(entries)
            entries = existing
        path = write_golden(engine, entries, directory)
        print(f"blessed {len(entries)} entries -> {path}")
    return 0


def cmd_oracle(args: argparse.Namespace) -> int:
    names = args.graphs.split(",") if args.graphs else None
    size = "large" if args.large else ("full" if args.full_size else "tiny")
    findings = run_oracle(
        graph_names=names,
        size=size,
        minimize=not args.no_minimize,
        dump_dir=args.dump_dir,
    )
    print(render_oracle_text(findings))
    return 1 if findings else 0


def cmd_oracle_updates(args: argparse.Namespace) -> int:
    names = args.graphs.split(",") if args.graphs else None
    if args.kernels == "all":
        kernels = [REFERENCE, VECTORIZED] + (
            [NATIVE] if native_available() else []
        )
    else:
        kernels = args.kernels.split(",")
    findings = []
    previous = os.environ.get(KERNELS_ENV)
    try:
        for kernels_mode in kernels:
            os.environ[KERNELS_ENV] = kernels_mode
            found = run_update_oracle(
                graph_names=names,
                seeds=range(args.seeds),
                batches=args.batches,
                batch_size=args.batch_size,
                check_legacy=not args.no_legacy,
                minimize=not args.no_minimize,
                dump_dir=args.dump_dir,
            )
            for finding in found:
                print(f"[{kernels_mode}] {finding}")
            findings.extend(found)
    finally:
        if previous is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = previous
    if findings:
        print(f"{len(findings)} update-oracle divergences")
        return 1
    graphs = names if names is not None else list(SMALL)
    sequences = len(graphs) * len(PROFILES) * args.seeds
    print(
        f"OK: batch engine bit-equal to recompute"
        + ("" if args.no_legacy else " and per-edge DynamicKCore")
        + f" across {sequences} sequences x {len(kernels)} kernel modes"
    )
    return 0


def cmd_oracle_shard(args: argparse.Namespace) -> int:
    from repro.generators.suite import SUITE
    from repro.regress.shard_oracle import (
        SHARD_WORKER_COUNTS,
        run_shard_oracle,
    )

    if args.graphs:
        names = args.graphs.split(",")
    elif args.small:
        names = list(SMALL)
    else:
        names = None
    worker_counts = (
        tuple(int(w) for w in args.workers.split(","))
        if args.workers
        else SHARD_WORKER_COUNTS
    )
    findings = run_shard_oracle(
        graph_names=names,
        size=args.size,
        worker_counts=worker_counts,
        minimize=not args.no_minimize,
        dump_dir=args.dump_dir,
    )
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} shard-oracle divergences")
        return 1
    swept = len(names) if names is not None else len(SUITE)
    counts = ",".join(str(w) for w in worker_counts)
    print(
        f"OK: shard bit-equal coreness and ledger vs the single-process "
        f"oracle across {swept} graphs x workers {{{counts}}}"
    )
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for case in select_cases(None):
        print(case.case_id)
    for update_case in UPDATE_CASES:
        print(update_case.case_id)
    print(
        f"{len(CASES)} matrix cases + {len(UPDATE_CASES)} update "
        f"sequences; goldens dir: {goldens_dir()}"
    )
    return 0


COMMANDS = {
    "run": cmd_run,
    "diff": cmd_diff,
    "bless": cmd_bless,
    "oracle": cmd_oracle,
    "oracle-updates": cmd_oracle_updates,
    "oracle-shard": cmd_oracle_shard,
    "list": cmd_list,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
