"""``python -m repro.regress`` dispatches to the regression CLI."""

import sys

from repro.regress.cli import main

if __name__ == "__main__":
    sys.exit(main())
