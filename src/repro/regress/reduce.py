"""Minimize a failure-inducing graph to a small reproducer (ddmin).

When the differential oracle catches an engine disagreeing with the
sequential BZ baseline on some generated graph, a thousand-vertex witness
is useless for debugging.  :func:`minimize_graph` runs delta debugging
(Zeller & Hildebrandt 2002) over the *vertex set*: repeatedly try keeping
only a complement of a chunk of vertices, re-testing the failure predicate
on the induced subgraph, until no single chunk at the finest granularity
can be dropped.  The result is 1-minimal with respect to the chunk
partition — in practice a handful of vertices.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import numpy as np

from repro.analysis.export import dump_json
from repro.graphs.csr import CSRGraph

#: Default cap on predicate evaluations; minimization is best-effort and
#: returns the smallest failing graph found when the budget runs out.
DEFAULT_BUDGET = 400


def minimize_graph(
    graph: CSRGraph,
    failing: Callable[[CSRGraph], bool],
    budget: int = DEFAULT_BUDGET,
) -> CSRGraph:
    """Smallest induced subgraph of ``graph`` on which ``failing`` holds.

    Args:
        graph: A graph for which ``failing(graph)`` is True.
        failing: Deterministic predicate ("the engine still disagrees").
        budget: Maximum predicate evaluations to spend.

    Returns:
        An induced subgraph (vertices relabeled) still failing; ``graph``
        itself when nothing could be removed.
    """
    if not failing(graph):
        raise ValueError("minimize_graph needs an initially failing graph")

    current = graph
    keep = np.arange(graph.n, dtype=np.int64)
    chunks = 2
    spent = 1
    while keep.size > 1 and spent < budget:
        boundaries = np.linspace(0, keep.size, chunks + 1, dtype=np.int64)
        removed_any = False
        for i in range(chunks):
            lo, hi = int(boundaries[i]), int(boundaries[i + 1])
            if lo == hi:
                continue
            complement = np.concatenate([keep[:lo], keep[hi:]])
            if complement.size == 0:
                continue
            candidate = graph.induced_subgraph(complement)
            spent += 1
            if failing(candidate):
                keep = complement
                current = candidate
                chunks = max(chunks - 1, 2)
                removed_any = True
                break
            if spent >= budget:
                break
        if not removed_any:
            if chunks >= keep.size:
                break  # 1-minimal at single-vertex granularity
            chunks = min(keep.size, chunks * 2)
    current.name = f"{graph.name or 'graph'}/reproducer"
    return current


def minimize_sequence(
    items: list,
    failing: Callable[[list], bool],
    budget: int = DEFAULT_BUDGET,
) -> list:
    """Smallest subsequence of ``items`` on which ``failing`` holds.

    The sequence analogue of :func:`minimize_graph`, used by the update
    oracle to shrink a failure-inducing stream of edge updates: ddmin
    over list positions, preserving order.  ``failing`` must be
    deterministic and hold for ``items`` itself.
    """
    if not failing(items):
        raise ValueError(
            "minimize_sequence needs an initially failing sequence"
        )
    current = list(items)
    chunks = 2
    spent = 1
    while len(current) > 1 and spent < budget:
        boundaries = np.linspace(
            0, len(current), chunks + 1, dtype=np.int64
        )
        removed_any = False
        for i in range(chunks):
            lo, hi = int(boundaries[i]), int(boundaries[i + 1])
            if lo == hi:
                continue
            candidate = current[:lo] + current[hi:]
            if not candidate:
                continue
            spent += 1
            if failing(candidate):
                current = candidate
                chunks = max(chunks - 1, 2)
                removed_any = True
                break
            if spent >= budget:
                break
        if not removed_any:
            if chunks >= len(current):
                break  # 1-minimal at single-item granularity
            chunks = min(len(current), chunks * 2)
    return current


def dump_reproducer(
    graph: CSRGraph,
    path: str | Path,
    engine: str = "",
    expected: np.ndarray | None = None,
    got: np.ndarray | None = None,
) -> Path:
    """Write a self-contained JSON reproducer for a failing graph.

    The dump carries the full (tiny) edge list plus the expected and
    observed coreness arrays, so a failure can be replayed with nothing
    but this file: rebuild via ``CSRGraph.from_edges(n, edges)`` and rerun
    the named engine.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    src = np.repeat(
        np.arange(graph.n, dtype=np.int64), graph.degrees
    )
    mask = src < graph.indices  # each undirected edge once
    payload = {
        "engine": engine,
        "graph": graph.name,
        "n": graph.n,
        "m": graph.m,
        "edges": np.stack(
            [src[mask], graph.indices[mask]], axis=1
        ).tolist(),
        "expected_coreness": (
            expected.tolist() if expected is not None else None
        ),
        "got_coreness": got.tolist() if got is not None else None,
    }
    dump_json(payload, path)
    return path


def load_reproducer(path: str | Path) -> tuple[CSRGraph, dict]:
    """Rebuild the graph from a reproducer dump; returns (graph, payload)."""
    from repro.analysis.export import load_json

    payload = load_json(path)
    edges = [tuple(edge) for edge in payload["edges"]]
    graph = CSRGraph.from_edges(
        payload["n"], edges, name=payload.get("graph", "reproducer")
    )
    return graph, payload
