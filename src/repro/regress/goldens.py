"""The goldens store: versioned JSON files pinning the regression matrix.

One file per engine under ``goldens/`` at the repository root (override
with ``REPRO_GOLDENS_DIR``), each carrying the serialization schema
version, the cost-model version, and the full signature of every pinned
cost-model variant.  Versions are checked *before* metrics are compared:
a golden blessed under an older schema fails loudly instead of producing
a nonsense drift report.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.export import dump_json, load_json
from repro.regress.matrix import COST_MODELS
from repro.runtime.cost_model import COST_MODEL_VERSION
from repro.runtime.metrics import METRICS_SCHEMA_VERSION


class GoldenVersionError(ValueError):
    """A golden file was blessed under an incompatible schema version."""


def goldens_dir() -> Path:
    """The goldens directory (``REPRO_GOLDENS_DIR`` or ``<repo>/goldens``)."""
    override = os.environ.get("REPRO_GOLDENS_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "goldens"


def golden_path(engine: str, directory: Path | None = None) -> Path:
    return (directory or goldens_dir()) / f"{engine}.json"


def list_blessed(directory: Path | None = None) -> list[str]:
    """Engines that have a blessed golden file, sorted."""
    directory = directory or goldens_dir()
    if not directory.is_dir():
        return []
    return sorted(path.stem for path in directory.glob("*.json"))


def write_golden(
    engine: str,
    entries: dict[str, dict[str, object]],
    directory: Path | None = None,
) -> Path:
    """Bless ``entries`` as the golden file for ``engine``."""
    path = golden_path(engine, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "cost_model_version": COST_MODEL_VERSION,
        "engine": engine,
        "cost_models": {
            name: model.signature() for name, model in COST_MODELS.items()
        },
        "entries": entries,
    }
    dump_json(payload, path)
    return path


def read_golden(
    engine: str, directory: Path | None = None
) -> dict[str, dict[str, object]] | None:
    """Blessed entries for ``engine``, or None when never blessed.

    Raises :class:`GoldenVersionError` on a schema or cost-model version
    mismatch — those goldens need re-blessing, not comparing.
    """
    path = golden_path(engine, directory)
    if not path.exists():
        return None
    payload = load_json(path)
    for field, current in (
        ("schema_version", METRICS_SCHEMA_VERSION),
        ("cost_model_version", COST_MODEL_VERSION),
    ):
        blessed = payload.get(field)
        if blessed != current:
            raise GoldenVersionError(
                f"{path} was blessed under {field}={blessed}, the code is "
                f"at {current}; re-bless with `python -m repro.regress "
                f"bless` after auditing the change"
            )
    return payload["entries"]
