"""Differential oracle and pinned goldens for the batch-dynamic engine.

The static engines have the BZ oracle (:mod:`repro.regress.oracle`);
this module is the equivalent safety net for *updates*.  Three layers:

* :func:`run_update_oracle` — replay randomized batch sequences (the
  deterministic stream generators over the tiny suite graphs) through
  :class:`repro.core.batch_dynamic.BatchDynamicKCore` and assert, after
  **every** batch, bit-equality of its coreness array against

  1. a full recompute of the current graph
     (:func:`repro.core.verify.reference_coreness`), and
  2. the legacy per-edge :class:`repro.core.dynamic.DynamicKCore`
     replaying the same updates;

* witness minimization — a failing sequence is shrunk with ddmin
  (:func:`repro.regress.reduce.minimize_sequence`) over the flat update
  list (batch boundaries preserved), and dumped as a self-contained
  JSON reproducer that :func:`replay_reproducer` re-executes;

* pinned goldens — :data:`UPDATE_CASES` fixes twelve update sequences
  over the dedicated regression graphs; their per-batch coreness
  trajectory, final fingerprint and simulated-runtime ledger are
  blessed under ``goldens/updates.json`` and checked by the usual
  ``python -m repro.regress run`` gate.

An ``engine_factory`` hook lets tests demonstrate the full pipeline on
a seeded fault (an engine variant with a deliberate bug) end to end:
sweep → finding → minimized witness → replayable reproducer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.analysis.export import dump_json, load_json
from repro.core.batch_dynamic import BatchDynamicKCore
from repro.core.dynamic import DynamicKCore
from repro.core.verify import reference_coreness
from repro.generators import suite
from repro.generators.streams import (
    PROFILES,
    UpdateBatch,
    generate_stream,
)
from repro.graphs.csr import CSRGraph
from repro.regress.matrix import coreness_fingerprint, load_graph
from repro.regress.reduce import minimize_sequence
from repro.runtime.cost_model import DEFAULT_COST_MODEL

#: Golden-file name the pinned update cases are blessed under.
UPDATE_GOLDEN = "updates"

#: One update = (batch_index, kind, u, v) — the flat, order-preserving
#: representation ddmin minimizes over.
FlatUpdate = tuple[int, str, int, int]

#: Hook for injecting an engine variant (the seeded-fault demonstration).
EngineFactory = Callable[[CSRGraph], BatchDynamicKCore]


# ----------------------------------------------------------------------
# Pinned update-sequence goldens
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateCase:
    """One pinned (graph, stream profile, seed) update sequence."""

    graph: str
    profile: str
    seed: int
    batches: int = 10
    batch_size: int = 12

    @property
    def entry_key(self) -> str:
        return f"{self.graph}/{self.profile}-s{self.seed}"

    @property
    def case_id(self) -> str:
        return f"{UPDATE_GOLDEN}/{self.entry_key}"


#: Twelve pinned sequences: every stream profile on four dedicated
#: regression graphs (never the resizable benchmark suite).
UPDATE_CASES: tuple[UpdateCase, ...] = tuple(
    UpdateCase(graph=graph, profile=profile, seed=seed)
    for graph, seed in (
        ("er-300", 11),
        ("hub-500", 12),
        ("grid-24", 13),
        ("knn-400", 14),
    )
    for profile in PROFILES
)


def _batches_of(case: UpdateCase, graph: CSRGraph) -> list[UpdateBatch]:
    events = generate_stream(
        graph,
        case.profile,
        batches=case.batches,
        batch_size=case.batch_size,
        queries_per_batch=0,
        seed=case.seed,
    )
    return [event for event in events if isinstance(event, UpdateBatch)]


def run_update_case(case: UpdateCase) -> dict[str, object]:
    """Execute one pinned sequence and return its golden payload.

    The trajectory hash folds the coreness array after every batch, so
    a drift anywhere along the sequence — not just at the end — breaks
    the golden.  Payloads are kernel-mode independent (all modes are
    bit-exact), like every other golden.
    """
    graph = load_graph(case.graph)
    engine = BatchDynamicKCore(graph)
    trajectory = hashlib.sha256()
    for batch in _batches_of(case, graph):
        engine.apply_batch(
            insertions=batch.insertions, deletions=batch.deletions
        )
        trajectory.update(
            np.ascontiguousarray(engine.coreness, dtype="<i8").tobytes()
        )
    final = engine.snapshot()
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "stream": {
            "profile": case.profile,
            "seed": case.seed,
            "batches": case.batches,
            "batch_size": case.batch_size,
        },
        "final_graph": {"n": final.n, "m": final.m},
        "coreness": coreness_fingerprint(engine.coreness),
        "trajectory_sha256": trajectory.hexdigest()[:16],
        "metrics": engine.metrics.to_stable_dict(DEFAULT_COST_MODEL),
    }


def run_update_matrix(
    pattern: str | None = None,
) -> dict[str, dict[str, dict[str, object]]]:
    """The pinned update cases as a ``run_matrix``-shaped result.

    Returns ``{"updates": {entry_key: payload}}``, merged by the regress
    CLI into the engine matrix so the same run/diff/bless pipeline (and
    the same drift reporting) covers update sequences.  Empty when a
    filter matches no update case.
    """
    entries = {
        case.entry_key: run_update_case(case)
        for case in UPDATE_CASES
        if not pattern or pattern in case.case_id
    }
    return {UPDATE_GOLDEN: entries} if entries else {}


# ----------------------------------------------------------------------
# The randomized differential sweep
# ----------------------------------------------------------------------
@dataclass
class UpdateFinding:
    """One batch after which the engine's coreness was wrong."""

    graph_name: str
    profile: str
    seed: int
    oracle: str  # "recompute" or "legacy"
    batch_index: int
    mismatched_vertices: int
    first_mismatches: list[int]
    minimized_updates: list[FlatUpdate] | None = None
    reproducer_path: Path | None = None

    def __str__(self) -> str:
        where = ""
        if self.minimized_updates is not None:
            where = f", minimized to {len(self.minimized_updates)} updates"
        if self.reproducer_path is not None:
            where += f" at {self.reproducer_path}"
        return (
            f"UPDATE MISMATCH vs {self.oracle} on {self.graph_name}"
            f"/{self.profile}-s{self.seed} after batch "
            f"{self.batch_index}: {self.mismatched_vertices} vertices "
            f"(first: {self.first_mismatches}){where}"
        )


def _flatten_batches(batches: Iterable[UpdateBatch]) -> list[FlatUpdate]:
    flat: list[FlatUpdate] = []
    for index, batch in enumerate(batches):
        for u, v in batch.deletions:
            flat.append((index, "del", int(u), int(v)))
        for u, v in batch.insertions:
            flat.append((index, "ins", int(u), int(v)))
    return flat


def _group_updates(
    flat: Iterable[FlatUpdate],
) -> list[tuple[list[tuple[int, int]], list[tuple[int, int]]]]:
    """Flat updates back to ordered ``(insertions, deletions)`` batches."""
    grouped: dict[int, tuple[list, list]] = {}
    order: list[int] = []
    for index, kind, u, v in flat:
        if index not in grouped:
            grouped[index] = ([], [])
            order.append(index)
        grouped[index][0 if kind == "ins" else 1].append((u, v))
    return [grouped[index] for index in sorted(order)]


def _first_divergence(
    graph: CSRGraph,
    flat: list[FlatUpdate],
    engine_factory: EngineFactory,
    check_legacy: bool = True,
) -> tuple[str, int, np.ndarray] | None:
    """First (oracle, batch_index, mismatched vertices) or None.

    Replays the flat update sequence batch by batch; after each batch
    the engine must agree bit-for-bit with a full recompute of its own
    committed graph, and (optionally) with the legacy per-edge engine
    fed the same updates.
    """
    engine = engine_factory(graph)
    legacy = DynamicKCore(graph) if check_legacy else None
    for index, (insertions, deletions) in enumerate(
        _group_updates(flat)
    ):
        try:
            engine.apply_batch(
                insertions=insertions, deletions=deletions
            )
        except Exception:
            return ("recompute", index, np.arange(graph.n)[:0])
        expected = reference_coreness(engine.snapshot())
        bad = np.nonzero(engine.coreness != expected)[0]
        if bad.size:
            return ("recompute", index, bad)
        if legacy is not None:
            legacy.batch_update(
                insertions=insertions, deletions=deletions
            )
            bad = np.nonzero(engine.coreness != legacy.coreness)[0]
            if bad.size:
                return ("legacy", index, bad)
    return None


def run_update_oracle(
    graph_names: Iterable[str] | None = None,
    profiles: Iterable[str] = PROFILES,
    seeds: Iterable[int] = (0, 1, 2, 3, 4, 5, 6),
    batches: int = 8,
    batch_size: int = 10,
    size: str = "tiny",
    engine_factory: EngineFactory | None = None,
    check_legacy: bool = True,
    minimize: bool = True,
    dump_dir: str | Path | None = None,
    graphs: dict[str, CSRGraph] | None = None,
) -> list[UpdateFinding]:
    """Sweep randomized batch sequences; return every divergence found.

    The default corpus is every graph of :data:`suite.SMALL` at the
    tiny tier × three stream profiles × seven seeds — 105 randomized
    sequences (the CI sweep requires ≥ 100).  ``engine_factory`` swaps
    in an engine variant (fault-injection tests); ``dump_dir`` writes a
    replayable JSON reproducer per finding.
    """
    if graphs is None:
        names = (
            list(graph_names)
            if graph_names is not None
            else list(suite.SMALL)
        )
        graphs = {name: suite.load(name, size=size) for name in names}
    factory = (
        engine_factory
        if engine_factory is not None
        else BatchDynamicKCore
    )

    findings: list[UpdateFinding] = []
    for name, graph in graphs.items():
        for profile in profiles:
            for seed in seeds:
                events = generate_stream(
                    graph,
                    profile,
                    batches=batches,
                    batch_size=batch_size,
                    queries_per_batch=0,
                    seed=seed,
                )
                flat = _flatten_batches(
                    event
                    for event in events
                    if isinstance(event, UpdateBatch)
                )
                divergence = _first_divergence(
                    graph, flat, factory, check_legacy
                )
                if divergence is None:
                    continue
                oracle, index, bad = divergence
                finding = UpdateFinding(
                    graph_name=name,
                    profile=profile,
                    seed=seed,
                    oracle=oracle,
                    batch_index=index,
                    mismatched_vertices=int(bad.size),
                    first_mismatches=bad[:10].tolist(),
                )
                if minimize:
                    finding.minimized_updates = minimize_sequence(
                        flat,
                        lambda candidate: _first_divergence(
                            graph, candidate, factory, check_legacy
                        )
                        is not None,
                    )
                if dump_dir is not None:
                    witness = (
                        finding.minimized_updates
                        if finding.minimized_updates is not None
                        else flat
                    )
                    finding.reproducer_path = dump_update_reproducer(
                        graph,
                        witness,
                        Path(dump_dir)
                        / f"updates-{name}-{profile}-s{seed}.json",
                        finding=finding,
                        engine_factory=factory,
                    )
                findings.append(finding)
    return findings


# ----------------------------------------------------------------------
# Replayable reproducers
# ----------------------------------------------------------------------
def dump_update_reproducer(
    graph: CSRGraph,
    updates: list[FlatUpdate],
    path: str | Path,
    finding: UpdateFinding | None = None,
    engine_factory: EngineFactory | None = None,
) -> Path:
    """Write a self-contained JSON reproducer for a failing sequence.

    Carries the full initial edge list plus the (minimized) update
    sequence and, when the failure reproduces at dump time, the
    expected/observed coreness after the failing batch — everything
    :func:`replay_reproducer` needs.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    mask = src < graph.indices
    factory = (
        engine_factory
        if engine_factory is not None
        else BatchDynamicKCore
    )
    expected = got = None
    divergence = _first_divergence(graph, updates, factory)
    if divergence is not None:
        engine = factory(graph)
        for insertions, deletions in _group_updates(updates)[
            : divergence[1] + 1
        ]:
            engine.apply_batch(
                insertions=insertions, deletions=deletions
            )
        expected = reference_coreness(engine.snapshot()).tolist()
        got = engine.coreness.tolist()
    payload = {
        "kind": "update-sequence",
        "graph": graph.name,
        "n": graph.n,
        "m": graph.m,
        "edges": np.stack(
            [src[mask], graph.indices[mask]], axis=1
        ).tolist(),
        "updates": [list(update) for update in updates],
        "finding": None
        if finding is None
        else {
            "oracle": finding.oracle,
            "batch_index": finding.batch_index,
            "mismatched_vertices": finding.mismatched_vertices,
        },
        "expected_coreness": expected,
        "got_coreness": got,
    }
    dump_json(payload, path)
    return path


def load_update_reproducer(
    path: str | Path,
) -> tuple[CSRGraph, list[FlatUpdate], dict]:
    """Rebuild (graph, updates, payload) from a reproducer dump."""
    payload = load_json(path)
    graph = CSRGraph.from_edges(
        payload["n"],
        [tuple(edge) for edge in payload["edges"]],
        name=payload.get("graph", "update-reproducer"),
    )
    updates = [
        (int(index), str(kind), int(u), int(v))
        for index, kind, u, v in payload["updates"]
    ]
    return graph, updates, payload


def replay_reproducer(
    path: str | Path,
    engine_factory: EngineFactory | None = None,
) -> tuple[str, int, np.ndarray] | None:
    """Re-execute a dumped reproducer; returns the divergence (or None).

    With the default (correct) engine a reproducer dumped from a faulty
    variant replays clean — pass the same ``engine_factory`` to confirm
    the failure.
    """
    graph, updates, _ = load_update_reproducer(path)
    factory = (
        engine_factory
        if engine_factory is not None
        else BatchDynamicKCore
    )
    return _first_divergence(graph, updates, factory)


__all__ = [
    "UPDATE_CASES",
    "UPDATE_GOLDEN",
    "EngineFactory",
    "FlatUpdate",
    "UpdateCase",
    "UpdateFinding",
    "dump_update_reproducer",
    "load_update_reproducer",
    "replay_reproducer",
    "run_update_case",
    "run_update_matrix",
    "run_update_oracle",
]
