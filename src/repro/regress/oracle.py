"""The cross-engine differential oracle.

Every parallel engine must produce the *same* coreness array as the
sequential Batagelj–Zaversnik baseline (which the test suite separately
validates against an independent reference peeling and networkx).  The
oracle runs each exact engine on each graph, compares arrays, and on a
mismatch minimizes the witness graph with :mod:`repro.regress.reduce` and
dumps a replayable reproducer.  The approximate engine is checked against
its stated (1 + eps) guarantee instead of equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.core.sequential import bz_core
from repro.generators import suite
from repro.graphs.csr import CSRGraph
from repro.regress.matrix import ENGINES, Runner
from repro.regress.reduce import dump_reproducer, minimize_graph
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL

#: Engines whose output must equal BZ exactly (everything but the
#: approximate engine and BZ itself, which is the oracle).
EXACT_ENGINES: dict[str, Runner] = {
    name: runner
    for name, runner in ENGINES.items()
    if name not in ("bz", "approx")
}


@dataclass
class OracleFinding:
    """One engine disagreeing with the sequential oracle on one graph."""

    engine: str
    graph_name: str
    mismatched_vertices: int
    first_mismatches: list[int]
    reproducer: CSRGraph | None = None
    reproducer_path: Path | None = None

    def __str__(self) -> str:
        where = (
            f", reproducer n={self.reproducer.n} at {self.reproducer_path}"
            if self.reproducer is not None
            else ""
        )
        return (
            f"MISMATCH {self.engine} on {self.graph_name}: "
            f"{self.mismatched_vertices} vertices disagree with BZ "
            f"(first: {self.first_mismatches}){where}"
        )


def engine_coreness(
    runner: Runner, graph: CSRGraph, model: CostModel = DEFAULT_COST_MODEL
) -> np.ndarray:
    return runner(graph, model).coreness


def check_exact(
    engine: str,
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    runner: Runner | None = None,
) -> np.ndarray:
    """Vertices where ``engine`` disagrees with BZ (empty == agreement)."""
    runner = runner if runner is not None else EXACT_ENGINES[engine]
    expected = bz_core(graph, model).coreness
    got = engine_coreness(runner, graph, model)
    return np.nonzero(expected != got)[0]


def check_approximate(
    graph: CSRGraph,
    eps: float,
    estimate: np.ndarray,
    exact: np.ndarray | None = None,
) -> np.ndarray:
    """Vertices violating the (1 + eps) guarantee (empty == all hold).

    The contract (see :mod:`repro.core.approximate`): estimates vanish
    exactly on coreness-0 vertices, and elsewhere
    ``kappa(v) <= estimate(v) < (1 + eps) * kappa(v)``.
    """
    if exact is None:
        exact = bz_core(graph).coreness
    estimate = np.asarray(estimate)
    ok = np.where(
        exact == 0,
        estimate == 0,
        (estimate >= exact) & (estimate < (1.0 + eps) * exact + 1e-9),
    )
    return np.nonzero(~ok)[0]


def minimize_mismatch(
    runner: Runner,
    graph: CSRGraph,
    model: CostModel = DEFAULT_COST_MODEL,
    budget: int | None = None,
) -> CSRGraph:
    """ddmin the witness graph while the engine still disagrees with BZ."""
    def failing(candidate: CSRGraph) -> bool:
        expected = bz_core(candidate, model).coreness
        return not np.array_equal(
            expected, engine_coreness(runner, candidate, model)
        )

    kwargs = {} if budget is None else {"budget": budget}
    return minimize_graph(graph, failing, **kwargs)


def run_oracle(
    graph_names: Iterable[str] | None = None,
    engines: dict[str, Runner] | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
    tiny: bool = True,
    minimize: bool = True,
    dump_dir: str | Path | None = None,
    graphs: dict[str, CSRGraph] | None = None,
    size: str | None = None,
) -> list[OracleFinding]:
    """Confront every exact engine with BZ across a graph corpus.

    Args:
        graph_names: Suite names to sweep (default: the full suite).
        engines: Engine roster (default: :data:`EXACT_ENGINES`).
        model: Cost model for every run.
        tiny: Use the tiny suite renditions (the default — the oracle is
            about agreement, which tiny graphs already exercise).
        minimize: Shrink each mismatch witness to a reproducer.
        dump_dir: Where to write reproducer JSON dumps (None: no dumps).
        graphs: Explicit ``name -> graph`` corpus overriding the suite.
        size: Explicit suite tier ("tiny" / "full" / "large"),
            overriding ``tiny``.
    """
    engines = engines if engines is not None else EXACT_ENGINES
    if graphs is None:
        names = list(graph_names) if graph_names is not None else list(
            suite.SUITE
        )
        if size is None:
            size = "tiny" if tiny else "full"
        graphs = {name: suite.load(name, size=size) for name in names}

    findings: list[OracleFinding] = []
    for name, graph in graphs.items():
        expected = bz_core(graph, model).coreness
        for engine, runner in engines.items():
            got = engine_coreness(runner, graph, model)
            bad = np.nonzero(expected != got)[0]
            if bad.size == 0:
                continue
            finding = OracleFinding(
                engine=engine,
                graph_name=name,
                mismatched_vertices=int(bad.size),
                first_mismatches=bad[:10].tolist(),
            )
            if minimize:
                finding.reproducer = minimize_mismatch(
                    runner, graph, model
                )
            if dump_dir is not None:
                witness = (
                    finding.reproducer
                    if finding.reproducer is not None
                    else graph
                )
                finding.reproducer_path = dump_reproducer(
                    witness,
                    Path(dump_dir) / f"{engine}-{name}.json",
                    engine=engine,
                    expected=bz_core(witness, model).coreness,
                    got=engine_coreness(runner, witness, model),
                )
            findings.append(finding)
    return findings
