"""Content-keyed JSON disk cache for benchmark cells and run records.

A cache entry's key is the sha256 of a canonical JSON encoding of every
input that determines the payload — engine, graph, size mode, the full
cost-model signature, the metrics schema version.  Nothing is ever
invalidated by time or version heuristics: change any determining input
and the key changes, so stale hits are structurally impossible and the
cache directory never needs manual flushing (though deleting it is
always safe).

Writes go through a temp file + ``os.replace`` so concurrent pool
workers can race on the same key without ever exposing a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_BENCH_CACHE_DIR"

#: Default cache directory (relative to the invoking process's cwd).
DEFAULT_CACHE_DIR = ".bench_cache"


def cache_key(fields: dict[str, object]) -> str:
    """Deterministic key for a dict of determining inputs."""
    canonical = json.dumps(
        fields, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:32]


class DiskCache:
    """A flat directory of ``<key>.json`` payloads."""

    def __init__(self, root: str | os.PathLike[str] | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, object] | None:
        """The cached payload for ``key``, or None (missing or corrupt)."""
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: dict[str, object]) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
