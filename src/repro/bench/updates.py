"""The ``updates`` benchmark tier: batch engine vs per-edge replay.

The serving claim of the ROADMAP is quantitative: recompute-from-scratch
(or per-edge maintenance) cannot keep up with update traffic that the
batched engine absorbs.  This tier measures it.  For each flagship graph
it replays the same deterministic update stream twice —

* through :class:`repro.core.batch_dynamic.BatchDynamicKCore`, one
  ``apply_batch`` call per batch (flat kernels, one invocation per peel
  round), and
* through the legacy per-edge :class:`repro.core.dynamic.DynamicKCore`,
  one Python BFS per edge (its documented ``batch_update`` semantics
  match the batch engine, so the final coreness must agree bit-for-bit
  — asserted and recorded in the report) —

and reports wall-clock updates/sec for both, their speedup, and the
batch engine's simulated-clock throughput.  Engine construction (the
initial decomposition) stays outside the timed region; the stream is
generated up front.  Results go to ``BENCH_updates.json`` via
``python -m repro.bench --updates``.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.bench.wallclock import measure
from repro.core.batch_dynamic import BatchDynamicKCore
from repro.core.dynamic import DynamicKCore
from repro.generators import suite
from repro.generators.streams import UpdateBatch, generate_stream
from repro.regress.matrix import coreness_fingerprint
from repro.runtime.cost_model import DEFAULT_COST_MODEL

#: Version of the BENCH_updates.json schema.
UPDATES_SCHEMA_VERSION = 1

#: Flagship graphs of the updates tier: the two social-network scale
#: stand-ins plus the pathological chain-reaction grid.
UPDATE_BENCH_GRAPHS = ("LJ-S", "OK-S", "GRID")


def bench_graph(
    name: str,
    size: str = "full",
    profile: str = "steady",
    batches: int = 12,
    batch_size: int = 96,
    seed: int = 0,
    threads: int | None = None,
    trace_dir: str | None = None,
) -> dict[str, object]:
    """Measure one graph's update replay; returns its report entry.

    With ``trace_dir``, the batch replay runs under an attached tracer
    and the Perfetto JSON (batch/subcore/peel spans on the simulated
    clock) is written to ``<trace_dir>/updates-<name>.trace.json``.
    Tracing is observational, so the report is identical either way.
    """
    graph = suite.load(name, size=size)
    events = generate_stream(
        graph,
        profile,
        batches=batches,
        batch_size=batch_size,
        queries_per_batch=0,
        seed=seed,
    )
    stream = [
        event for event in events if isinstance(event, UpdateBatch)
    ]
    threads = (
        int(threads) if threads is not None else DEFAULT_COST_MODEL.n_cores
    )

    if trace_dir is None:
        engine = BatchDynamicKCore(graph)
        with measure() as batch_wall:
            for batch in stream:
                engine.apply_batch(
                    insertions=batch.insertions,
                    deletions=batch.deletions,
                )
    else:
        from repro.trace import Tracer, tracing, write_trace

        tracer = Tracer(label=f"updates/{name}")
        with tracing(tracer):
            engine = BatchDynamicKCore(graph)
            with measure() as batch_wall:
                for batch in stream:
                    engine.apply_batch(
                        insertions=batch.insertions,
                        deletions=batch.deletions,
                    )
        tracer.host_span(
            f"updates/{name}",
            batch_wall.wall_s,
            max_rss_kb=batch_wall.max_rss_kb,
        )
        os.makedirs(trace_dir, exist_ok=True)
        write_trace(
            tracer, os.path.join(trace_dir, f"updates-{name}.trace.json")
        )
    applied = engine.updates
    sim_ns = engine.runtime.time_on(threads)

    legacy = DynamicKCore(graph)
    with measure() as legacy_wall:
        for batch in stream:
            legacy.batch_update(
                insertions=batch.insertions, deletions=batch.deletions
            )

    agreement = bool(
        np.array_equal(engine.coreness, legacy.coreness)
    ) and engine.snapshot() == legacy.snapshot()
    batch_ups = (
        applied / batch_wall.wall_s if batch_wall.wall_s > 0 else 0.0
    )
    legacy_ups = (
        applied / legacy_wall.wall_s if legacy_wall.wall_s > 0 else 0.0
    )
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "updates_applied": int(applied),
        "batches": len(stream),
        "batch": {
            "wall_s": batch_wall.wall_s,
            "updates_per_sec": batch_ups,
            "sim_ns": sim_ns,
            "sim_updates_per_sec": (
                applied * 1e9 / sim_ns if sim_ns > 0 else 0.0
            ),
            "ledger": engine.metrics.to_stable_dict(DEFAULT_COST_MODEL),
        },
        "legacy": {
            "wall_s": legacy_wall.wall_s,
            "updates_per_sec": legacy_ups,
        },
        "speedup": (
            batch_ups / legacy_ups if legacy_ups > 0 else float("inf")
        ),
        "agreement": agreement,
        "coreness": coreness_fingerprint(engine.coreness),
    }


def run_updates_bench(
    graphs: tuple[str, ...] | list[str] | None = None,
    size: str = "full",
    profile: str = "steady",
    batches: int = 12,
    batch_size: int = 96,
    seed: int = 0,
    progress: bool = False,
    trace_dir: str | None = None,
) -> dict[str, object]:
    """The full updates-tier report (see module docstring)."""
    names = list(graphs) if graphs else list(UPDATE_BENCH_GRAPHS)
    entries: dict[str, object] = {}
    for name in names:
        if progress:
            print(f"updates: {name} ({size})...", file=sys.stderr)
        entries[name] = bench_graph(
            name,
            size=size,
            profile=profile,
            batches=batches,
            batch_size=batch_size,
            seed=seed,
            trace_dir=trace_dir,
        )
    return {
        "schema": UPDATES_SCHEMA_VERSION,
        "size": size,
        "stream": {
            "profile": profile,
            "batches": batches,
            "batch_size": batch_size,
            "seed": seed,
        },
        "graphs": entries,
    }


__all__ = [
    "UPDATES_SCHEMA_VERSION",
    "UPDATE_BENCH_GRAPHS",
    "bench_graph",
    "run_updates_bench",
]
