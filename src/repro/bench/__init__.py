"""Process-parallel benchmark matrix with cached, wall-clock-timed runs.

``repro.bench`` is the orchestration half of the performance layer
(:mod:`repro.perf` is the kernel half).  It fans the benchmark matrix —
(engine x suite graph), full-size or tiny — over a process pool, caches
every cell's *simulated* result payload on disk, and records the *host*
wall-clock cost of producing it:

* :mod:`repro.bench.runner` — the matrix, the pool fan-out, the report;
* :mod:`repro.bench.cache` — content-keyed JSON disk cache (the key pins
  engine, graph, size, cost-model signature and metrics schema, so a
  stale hit is structurally impossible);
* :mod:`repro.bench.wallclock` — the one sanctioned wall-clock reader
  (everything else in ``src/`` is banned from wall clocks by lint R003);
* ``python -m repro.bench`` — the CLI that writes
  ``BENCH_wallclock.json``.

The cached payloads are the regression gate's ``run_case`` shape (graph
size, coreness fingerprint, stable metrics dict), so a cache cell is
byte-comparable against the goldens and against a fresh run.
"""

from repro.bench.cache import DiskCache, cache_key
from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    KERNELIZED_ENGINES,
    BenchCell,
    compare_kernels,
    compare_kernels_all,
    default_matrix,
    execute,
    run_cell,
)
from repro.bench.wallclock import WallSample, measure

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "KERNELIZED_ENGINES",
    "BenchCell",
    "DiskCache",
    "WallSample",
    "cache_key",
    "compare_kernels",
    "compare_kernels_all",
    "default_matrix",
    "execute",
    "measure",
    "run_cell",
]
