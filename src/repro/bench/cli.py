"""``python -m repro.bench`` — run the matrix, write BENCH_wallclock.json.

Typical invocations::

    python -m repro.bench                     # full matrix, pool fan-out
    python -m repro.bench --tiny              # smoke-sized matrix
    python -m repro.bench --large             # ~10x scaled matrix
    python -m repro.bench --tiny --assert-all-hits   # warm-cache check
    python -m repro.bench --compare-kernels   # cold kernel A/B/C evidence
    python -m repro.bench --updates           # batch-vs-per-edge replay
    python -m repro.bench --shard --large     # multi-process scaling curve

The report is written to ``--output`` (default ``BENCH_wallclock.json``;
``BENCH_updates.json`` with ``--updates``, ``BENCH_shard.json`` with
``--shard``) and a one-line summary is printed to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.cache import DiskCache
from repro.bench.runner import compare_kernels_all, default_matrix, execute
from repro.bench.wallclock import available_cpus
from repro.perf import NATIVE, REFERENCE, VECTORIZED

DEFAULT_OUTPUT = "BENCH_wallclock.json"
DEFAULT_UPDATES_OUTPUT = "BENCH_updates.json"
DEFAULT_SHARD_OUTPUT = "BENCH_shard.json"


def _csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _jobs(value: str) -> int:
    """``--jobs`` parser: a positive integer, or ``auto`` for the CPUs
    actually available to this process (cgroup/affinity aware)."""
    if value == "auto":
        return available_cpus()
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be positive or 'auto', got {value!r}"
        )
    return jobs


def _worker_counts(value: str) -> tuple[int, ...]:
    counts = tuple(int(item) for item in _csv(value))
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError(
            f"--shard-workers needs positive counts, got {value!r}"
        )
    return counts


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Cached, wall-clock-instrumented benchmark matrix.",
    )
    size = parser.add_mutually_exclusive_group()
    size.add_argument(
        "--tiny",
        action="store_true",
        help="run the tiny renditions of every suite graph",
    )
    size.add_argument(
        "--large",
        action="store_true",
        help="run the large (~10x full) renditions of every suite graph",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs,
        default=None,
        help="process-pool width for cache misses: a count or 'auto' "
        "(default: auto — the CPUs available to this process)",
    )
    parser.add_argument(
        "--engines",
        type=_csv,
        default=None,
        help="comma-separated engine subset (default: all)",
    )
    parser.add_argument(
        "--graphs",
        type=_csv,
        default=None,
        help="comma-separated suite-graph subset (default: all)",
    )
    parser.add_argument(
        "--kernels",
        choices=(NATIVE, VECTORIZED, REFERENCE),
        default=None,
        help="kernel mode for the matrix (default: REPRO_KERNELS)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached payloads and re-run every cell",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: REPRO_BENCH_CACHE_DIR or "
        ".bench_cache)",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report path (default: {DEFAULT_OUTPUT}); '-' for stdout only",
    )
    parser.add_argument(
        "--assert-all-hits",
        action="store_true",
        help="exit non-zero unless every cell was a cache hit",
    )
    parser.add_argument(
        "--assert-wall-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit non-zero if the measured (cold) wall time exceeds "
        "SECONDS — the CI scaling-regression tripwire",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="traces",
        default=None,
        metavar="DIR",
        help="write a Perfetto trace per cell into DIR (default: traces/); "
        "implies --refresh, since traces only come from fresh runs",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the per-cell progress lines on stderr",
    )
    parser.add_argument(
        "--compare-kernels",
        action="store_true",
        help="also run the cold kernel-mode A/B/C on every kernelized "
        "engine (ours plus the baselines)",
    )
    parser.add_argument(
        "--updates",
        action="store_true",
        help="run the updates tier instead: batch-dynamic engine vs "
        "per-edge replay on the flagship graphs "
        f"(writes {DEFAULT_UPDATES_OUTPUT})",
    )
    parser.add_argument(
        "--shard",
        action="store_true",
        help="run the shard tier instead: multi-process scaling curve "
        "vs the best exact single-process engine on the flagship "
        f"graphs (writes {DEFAULT_SHARD_OUTPUT})",
    )
    parser.add_argument(
        "--shard-workers",
        type=_worker_counts,
        default=None,
        metavar="COUNTS",
        help="comma-separated worker counts for the --shard curve "
        "(default: 1,2,4,7)",
    )
    return parser


def _run_updates(args: argparse.Namespace) -> int:
    from repro.bench.updates import run_updates_bench

    size = "tiny" if args.tiny else ("large" if args.large else "full")
    report = run_updates_bench(
        graphs=args.graphs,
        size=size,
        progress=not args.no_progress,
        trace_dir=args.trace,
    )
    status = 0
    for name, entry in report["graphs"].items():
        batch = entry["batch"]
        legacy = entry["legacy"]
        agree = "ok" if entry["agreement"] else "DISAGREE"
        print(
            f"  {name:8s} batch {batch['updates_per_sec']:12.0f} up/s"
            f"  per-edge {legacy['updates_per_sec']:12.0f} up/s"
            f"  speedup {entry['speedup']:6.1f}x  [{agree}]"
        )
        if not entry["agreement"]:
            status = 1
    output = (
        DEFAULT_UPDATES_OUTPUT
        if args.output == DEFAULT_OUTPUT
        else args.output
    )
    if output != "-":
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
    return status


def _run_shard(args: argparse.Namespace) -> int:
    from repro.bench.shard import run_shard_bench

    size = "tiny" if args.tiny else ("large" if args.large else "full")
    report = run_shard_bench(
        graphs=args.graphs,
        size=size,
        workers=args.shard_workers,
        progress=not args.no_progress,
    )
    status = 0
    for name, entry in report["graphs"].items():
        best = entry["best_exact"]
        print(
            f"  {name:8s} best exact {best['engine']}: "
            f"{best['wall_s']:.3f}s"
        )
        for count, run in entry["shard"].items():
            agree = "ok" if run["agreement"] else "DISAGREE"
            print(
                f"    shard x{count}: {run['wall_s']:.3f}s  "
                f"{run['speedup_vs_best_exact']:5.2f}x  "
                f"({run['rounds']} rounds)  [{agree}]"
            )
            if not run["agreement"]:
                status = 1
    output = (
        DEFAULT_SHARD_OUTPUT
        if args.output == DEFAULT_OUTPUT
        else args.output
    )
    if output != "-":
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
    return status


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs is None:
        args.jobs = available_cpus()
    if args.updates:
        return _run_updates(args)
    if args.shard:
        return _run_shard(args)
    cache = DiskCache(args.cache_dir)
    size = "tiny" if args.tiny else ("large" if args.large else "full")
    cells = default_matrix(
        engines=args.engines,
        graphs=args.graphs,
        size=size,
        kernels=args.kernels,
    )
    report = execute(
        cells,
        jobs=args.jobs,
        cache=cache,
        refresh=args.refresh,
        trace_dir=args.trace,
        progress=not args.no_progress,
    )
    if args.compare_kernels:
        report["kernel_comparison"] = compare_kernels_all(
            graphs=args.graphs, size=size
        )

    summary = report["summary"]
    print(
        f"bench: {summary['cells']} cells, {summary['hits']} hits, "
        f"{summary['misses']} misses, "
        f"{summary['measured_wall_s']:.2f}s measured, "
        f"{summary['cached_wall_s']:.2f}s cached"
    )
    for engine, wall in summary["by_engine_wall_s"].items():
        print(f"  {engine:12s} {wall:8.2f}s")
    if args.trace:
        print(f"wrote per-cell traces to {args.trace}/")
    if "kernel_comparison" in report:
        for engine, comp in report["kernel_comparison"][
            "per_engine"
        ].items():
            walls = " vs ".join(
                f"{mode} {wall:.2f}s"
                for mode, wall in comp["wall_s"].items()
            )
            print(
                f"kernels[{engine}]: {walls} -> {comp['speedup']:.2f}x"
            )

    if args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.assert_all_hits and summary["misses"]:
        missed = ", ".join(
            f"{name} ({events.get('miss', 0)} misses)"
            for name, events in sorted(summary.get("caches", {}).items())
            if events.get("miss", 0)
        ) or "bench_cell"
        print(
            f"error: expected all hits, got {summary['misses']} misses; "
            f"caches that missed: {missed}",
            file=sys.stderr,
        )
        return 1
    if (
        args.assert_wall_budget is not None
        and summary["measured_wall_s"] > args.assert_wall_budget
    ):
        print(
            f"error: measured wall {summary['measured_wall_s']:.2f}s "
            f"exceeds budget {args.assert_wall_budget:.2f}s",
            file=sys.stderr,
        )
        return 1
    return 0
