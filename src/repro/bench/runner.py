"""The benchmark matrix runner: pool fan-out, disk cache, wall report.

A *cell* is one ``(engine, graph)`` pair at one suite size tier (tiny /
full / large) under one kernel mode.  :func:`execute` resolves every
cell against the disk cache, fans the misses over a
``ProcessPoolExecutor``, and returns a report with one entry per cell:
the simulated payload (regression ``run_case`` shape) plus the host
wall-clock and peak-RSS cost and the cache disposition.

The cache key deliberately includes the kernel mode even though all
kernel implementations produce bit-identical payloads (the regression
gate enforces that): the *wall* numbers attached to a cell are only
meaningful for the mode that produced them.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from repro.bench.cache import DiskCache, cache_key
from repro.bench.wallclock import measure
from repro.generators import suite
from repro.obs import MetricsRegistry, observing
from repro.obs.registry import active_registry
from repro.perf import (
    KERNELS_ENV,
    NATIVE,
    REFERENCE,
    VECTORIZED,
    kernel_mode,
    native_available,
)
from repro.regress.matrix import ENGINES, coreness_fingerprint
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.runtime.metrics import METRICS_SCHEMA_VERSION
from repro.trace import Tracer, tracing, write_trace

#: Schema of the BENCH_wallclock.json report.
#: v2: cells carry ``size`` (was ``tiny``); the summary separates
#: measured from cached wall time and aggregates engines over all cells.
#: v3: ``kernel_comparison`` covers every kernelized engine — a
#: ``per_engine`` map of cold A/B/C results — instead of 'ours' alone.
#: v4: the summary gains a ``caches`` section (per-cache hit/miss
#: counters sourced from the metrics registry, workers included), so
#: ``--assert-all-hits`` failures can name the cache that missed.
BENCH_SCHEMA_VERSION = 4

#: Engines with mode-switchable kernels, A/B/C'd by ``--compare-kernels``.
KERNELIZED_ENGINES = ("ours", "pkc", "park", "julienne")


@dataclass(frozen=True)
class BenchCell:
    """One benchmark matrix cell."""

    engine: str
    graph: str
    size: str = "full"
    kernels: str = VECTORIZED

    def key_fields(self) -> dict[str, object]:
        """Every input that determines this cell's payload and timing."""
        return {
            "kind": "bench_cell",
            "engine": self.engine,
            "graph": self.graph,
            "size": self.size,
            "kernels": self.kernels,
            "model": DEFAULT_COST_MODEL.signature(),
            "metrics_schema": METRICS_SCHEMA_VERSION,
        }

    def key(self) -> str:
        return cache_key(self.key_fields())

    @property
    def label(self) -> str:
        return f"{self.engine}/{self.graph}/{self.size}/{self.kernels}"


def default_matrix(
    engines: list[str] | None = None,
    graphs: list[str] | None = None,
    size: str = "full",
    kernels: str | None = None,
) -> list[BenchCell]:
    """The benchmark matrix: every engine on every suite graph."""
    engines = list(engines) if engines else list(ENGINES)
    graphs = list(graphs) if graphs else list(suite.SUITE)
    for engine in engines:
        if engine not in ENGINES:
            known = ", ".join(ENGINES)
            raise KeyError(f"unknown engine {engine!r}; known: {known}")
    for graph in graphs:
        if graph not in suite.SUITE:
            known = ", ".join(suite.SUITE)
            raise KeyError(f"unknown suite graph {graph!r}; known: {known}")
    if size not in suite.SIZES:
        known = ", ".join(suite.SIZES)
        raise ValueError(f"unknown suite size {size!r}; known: {known}")
    if kernels is None:
        kernels = kernel_mode()
    return [
        BenchCell(engine, graph, size=size, kernels=kernels)
        for engine in engines
        for graph in graphs
    ]


def trace_path(cell: BenchCell, trace_dir: str) -> str:
    """Where :func:`run_cell` writes ``cell``'s Perfetto trace."""
    return os.path.join(
        trace_dir, cell.label.replace("/", "-") + ".trace.json"
    )


def run_cell(
    cell: BenchCell, trace_dir: str | None = None
) -> dict[str, object]:
    """Execute one cell in this process and return its payload.

    The payload mirrors the regression gate's ``run_case`` entries
    (graph size, coreness fingerprint, stable metrics dict) plus the
    wall-clock sample of the decomposition itself (graph construction
    is deliberately outside the timed region).

    With ``trace_dir``, the measured region runs under an attached
    :class:`repro.trace.Tracer` and the Perfetto JSON is written to
    :func:`trace_path`.  Tracing is observational, so the payload —
    and hence the cache entry — is bit-identical either way; the trace
    file itself stays outside the cache.
    """
    previous = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = cell.kernels
    try:
        graph = suite.load(cell.graph, size=cell.size)
        if trace_dir is None:
            with measure() as wall:
                result = ENGINES[cell.engine](graph, DEFAULT_COST_MODEL)
        else:
            tracer = Tracer(label=cell.label)
            with tracing(tracer):
                with measure() as wall:
                    result = ENGINES[cell.engine](graph, DEFAULT_COST_MODEL)
            tracer.host_span(
                cell.label, wall.wall_s, max_rss_kb=wall.max_rss_kb
            )
            os.makedirs(trace_dir, exist_ok=True)
            write_trace(tracer, trace_path(cell, trace_dir))
    finally:
        if previous is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = previous
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "coreness": coreness_fingerprint(result.coreness),
        "metrics": result.metrics.to_stable_dict(DEFAULT_COST_MODEL),
        "wall": wall.to_dict(),
    }


def _run_cell_with_obs(
    cell: BenchCell, trace_dir: str | None = None
) -> tuple[dict[str, object], dict[str, float]]:
    """Run one cell under a fresh registry; return (payload, counters).

    Pool workers are separate processes, so each runs its cell under a
    private :class:`repro.obs.MetricsRegistry` and ships the counter
    snapshot back with the payload; the parent folds the snapshots into
    its own registry (:meth:`~repro.obs.MetricsRegistry.merge_counts`).
    The payload itself never embeds counters, so cache entries stay
    bit-identical with and without observation.
    """
    with observing(MetricsRegistry("bench-worker")) as registry:
        payload = run_cell(cell, trace_dir)
        return payload, registry.counter_values()


def cache_summary(registry: MetricsRegistry) -> dict[str, dict[str, int]]:
    """Per-cache event totals from the ``cache.*`` counters.

    Shape: ``{"bench_cell": {"hit": 3, "miss": 1}, "graph_npz": ...}``
    — the ``summary.caches`` section of the bench report (schema v4).
    """
    caches: dict[str, dict[str, int]] = {}
    for name, value in registry.counter_values("cache.").items():
        _, cache_name, event = name.split(".", 2)
        caches.setdefault(cache_name, {})[event] = int(value)
    return caches


def execute(
    cells: list[BenchCell],
    jobs: int | None = None,
    cache: DiskCache | None = None,
    refresh: bool = False,
    trace_dir: str | None = None,
    progress: bool = False,
) -> dict[str, object]:
    """Resolve every cell (cache or fresh run) and build the report.

    Cache misses run in a process pool of ``jobs`` workers (``None`` or
    ``<= 1`` runs them inline).  Fresh payloads are written back to the
    cache, so an immediately repeated invocation is 100% hits.

    ``trace_dir`` traces every cell's measured region (see
    :func:`run_cell`); traces only come from fresh runs, so it implies
    ``refresh``.  ``progress`` prints one line per cell to stderr as it
    resolves, in completion order.
    """
    cache = cache if cache is not None else DiskCache()
    if trace_dir is not None:
        refresh = True
    registry = active_registry()
    if registry is None:
        registry = MetricsRegistry("bench")
    done = 0

    def note(cell: BenchCell, disposition: str, wall_s: float) -> None:
        nonlocal done
        done += 1
        if progress:
            line = f"bench: [{done}/{len(cells)}] {cell.label} {disposition}"
            if disposition == "ran":
                line += f" {wall_s:.2f}s"
            print(line, file=sys.stderr, flush=True)

    resolved: dict[BenchCell, tuple[str, dict[str, object]]] = {}
    pending: list[BenchCell] = []
    for cell in cells:
        payload = None if refresh else cache.get(cell.key())
        if payload is not None:
            if registry is not None:
                registry.inc("cache.bench_cell.hit")
            resolved[cell] = ("hit", payload)
            note(cell, "cached", 0.0)
        else:
            if registry is not None:
                registry.inc("cache.bench_cell.miss")
            pending.append(cell)

    def finish(
        cell: BenchCell,
        payload: dict[str, object],
        counters: dict[str, float],
    ) -> None:
        cache.put(cell.key(), payload)
        resolved[cell] = ("miss", payload)
        if registry is not None:
            registry.merge_counts(counters)
        note(cell, "ran", float(payload["wall"]["wall_s"]))

    if pending:
        if jobs is not None and jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(_run_cell_with_obs, cell, trace_dir): cell
                    for cell in pending
                }
                for future in as_completed(futures):
                    finish(futures[future], *future.result())
        else:
            for cell in pending:
                finish(cell, *_run_cell_with_obs(cell, trace_dir))

    report_cells = []
    measured_wall = 0.0
    cached_wall = 0.0
    by_engine: dict[str, float] = {}
    hits = 0
    for cell in cells:
        disposition, payload = resolved[cell]
        wall = payload.get("wall", {})
        wall_s = float(wall.get("wall_s", 0.0))
        # Every cell carries the wall-clock of the run that produced its
        # payload, whether that run happened now or in a previous
        # invocation — the per-engine totals aggregate all of them, and
        # measured/cached record how the total splits.  (An all-hits
        # warm run therefore still reports full per-engine timings.)
        by_engine[cell.engine] = by_engine.get(cell.engine, 0.0) + wall_s
        if disposition == "miss":
            measured_wall += wall_s
        else:
            hits += 1
            cached_wall += wall_s
        record = {
            "engine": cell.engine,
            "graph": cell.graph,
            "size": cell.size,
            "kernels": cell.kernels,
            "cache": disposition,
            "key": cell.key(),
            "wall_s": wall_s,
            "max_rss_kb": int(wall.get("max_rss_kb", 0)),
            "n": payload["graph"]["n"],
            "m": payload["graph"]["m"],
            "coreness_sha256": payload["coreness"]["sha256"],
        }
        if trace_dir is not None:
            record["trace"] = trace_path(cell, trace_dir)
        report_cells.append(record)

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "metrics_schema_version": METRICS_SCHEMA_VERSION,
        "model_signature": DEFAULT_COST_MODEL.signature(),
        "cells": report_cells,
        "summary": {
            "cells": len(cells),
            "hits": hits,
            "misses": len(cells) - hits,
            "measured_wall_s": round(measured_wall, 6),
            "cached_wall_s": round(cached_wall, 6),
            "total_wall_s": round(measured_wall + cached_wall, 6),
            "by_engine_wall_s": {
                engine: round(total, 6)
                for engine, total in sorted(by_engine.items())
            },
            "caches": cache_summary(registry),
        },
    }


def compare_kernels(
    graphs: list[str] | None = None,
    size: str = "full",
    engine: str = "ours",
    modes: tuple[str, ...] | None = None,
) -> dict[str, object]:
    """Cold A/B/C of the kernel modes on one engine over the suite.

    Runs every graph under each mode (the reference loop, the flat
    NumPy kernel, and — when a compiler is present — the native kernel),
    all uncached, and reports the aggregate wall-clock speedup of the
    fastest mode over the reference — the evidence figure behind the
    perf layer.
    """
    graphs = list(graphs) if graphs else list(suite.SUITE)
    if modes is None:
        modes = (REFERENCE, VECTORIZED) + (
            (NATIVE,) if native_available() else ()
        )
    totals: dict[str, float] = {}
    per_graph: dict[str, dict[str, float]] = {name: {} for name in graphs}
    for mode in modes:
        total = 0.0
        for name in graphs:
            payload = run_cell(
                BenchCell(engine, name, size=size, kernels=mode)
            )
            wall_s = float(payload["wall"]["wall_s"])
            per_graph[name][mode] = round(wall_s, 6)
            total += wall_s
        totals[mode] = round(total, 6)
    fastest = min(
        (mode for mode in modes if mode != REFERENCE),
        key=lambda mode: totals[mode],
        default=REFERENCE,
    )
    speedup = (
        totals[REFERENCE] / totals[fastest]
        if totals.get(fastest, 0.0) > 0
        else float("inf")
    )
    return {
        "engine": engine,
        "size": size,
        "graphs": per_graph,
        "wall_s": totals,
        "fastest": fastest,
        "speedup": round(speedup, 3),
    }


def compare_kernels_all(
    graphs: list[str] | None = None,
    size: str = "full",
    engines: tuple[str, ...] = KERNELIZED_ENGINES,
    modes: tuple[str, ...] | None = None,
) -> dict[str, object]:
    """Cold kernel A/B/C for every kernelized engine (schema v3 shape).

    One :func:`compare_kernels` sweep per engine; the report keys the
    results by engine so the regenerated wallclock evidence records how
    much each baseline gains from its flat kernels, not just ours.
    """
    per_engine = {
        engine: compare_kernels(
            graphs=graphs, size=size, engine=engine, modes=modes
        )
        for engine in engines
    }
    return {
        "size": size,
        "per_engine": per_engine,
    }
