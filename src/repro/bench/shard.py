"""The ``shard`` benchmark tier: multi-process scaling on the flagships.

For each flagship graph this tier measures every exact single-process
engine cold (the ``best_exact`` bar the sharded runs are judged
against), then runs the shard engine at each worker count with the pool
spawned **outside** the timed region — the persistent-pool deployment
the shard layer is built for, where spawn cost amortizes over many
decompositions on the same mapped graph.  Every sharded run's coreness
fingerprint is checked against the best exact engine's and recorded,
so the scaling curve can never quietly drift from the exact answer.

Results go to ``BENCH_shard.json`` via ``python -m repro.bench
--shard``.  The report embeds the host parallelism
(:func:`repro.bench.wallclock.available_cpus`): with a single CPU the
workers time-slice one core and only graphs whose rounds leave the
Python coordinator idle (few rounds, heavy per-round kernels — HCNS)
can beat the single-process bar; the committed curve documents that
ceiling rather than hiding it.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

from repro.bench.wallclock import available_cpus, measure
from repro.generators import suite
from repro.graphs.io import save_npz
from repro.perf import kernel_mode
from repro.regress.matrix import ENGINES, coreness_fingerprint
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.shard import (
    ShardPool,
    partition_ranges,
    resolve_graph_path,
    shard_coreness,
)

#: Version of the BENCH_shard.json schema.
SHARD_SCHEMA_VERSION = 1

#: Flagship graphs of the shard tier: the two high-coreness adversaries
#: (few H-index rounds, heavy per-round kernels, thousands of
#: sequential peel levels for the single-process engines).
SHARD_BENCH_GRAPHS = ("HCNS", "HCNSW")

#: Worker counts of the scaling curve.
SHARD_BENCH_WORKERS = (1, 2, 4, 7)

#: Engines excluded from the ``best_exact`` bar (not exact, or the
#: engine under test).
_NON_BASELINE = frozenset({"approx", "shard"})


def exact_baseline_engines() -> tuple[str, ...]:
    """Every exact single-process engine in the regression roster."""
    return tuple(
        name for name in ENGINES if name not in _NON_BASELINE
    )


def bench_graph(
    name: str,
    size: str = "large",
    workers: tuple[int, ...] | list[int] = SHARD_BENCH_WORKERS,
    progress: bool = False,
) -> dict[str, object]:
    """Measure one graph's shard scaling curve; returns its report entry."""
    graph = suite.load(name, size=size)
    model = DEFAULT_COST_MODEL

    baselines: dict[str, float] = {}
    best_engine, best_wall, best_fingerprint = "", float("inf"), None
    for engine in exact_baseline_engines():
        with measure() as wall:
            result = ENGINES[engine](graph, model)
        baselines[engine] = round(wall.wall_s, 6)
        if progress:
            print(
                f"shard-bench: {name} {engine} {wall.wall_s:.3f}s",
                file=sys.stderr,
            )
        if wall.wall_s < best_wall:
            best_engine = engine
            best_wall = wall.wall_s
            best_fingerprint = coreness_fingerprint(result.coreness)

    graph_path = resolve_graph_path(graph)
    tmp_dir: str | None = None
    if graph_path is None:
        tmp_dir = tempfile.mkdtemp(prefix="repro-shard-bench-")
        graph_path = os.path.join(tmp_dir, "graph.npz")
        save_npz(graph, graph_path, compress=False)

    shard_entries: dict[str, object] = {}
    try:
        for count in workers:
            pool = ShardPool(
                graph_path,
                partition_ranges(graph.indptr, count),
                mode=kernel_mode(),
            )
            try:
                with measure() as wall:
                    result = shard_coreness(graph, model, pool=pool)
            finally:
                pool.close()
            fingerprint = coreness_fingerprint(result.coreness)
            speedup = (
                best_wall / wall.wall_s if wall.wall_s > 0 else 0.0
            )
            if progress:
                print(
                    f"shard-bench: {name} shard x{count} "
                    f"{wall.wall_s:.3f}s ({speedup:.2f}x vs "
                    f"{best_engine})",
                    file=sys.stderr,
                )
            shard_entries[str(count)] = {
                "wall_s": round(wall.wall_s, 6),
                "rounds": int(result.metrics.rounds),
                "speedup_vs_best_exact": round(speedup, 3),
                "agreement": fingerprint == best_fingerprint,
            }
    finally:
        if tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)

    return {
        "graph": {"n": graph.n, "m": graph.m},
        "baselines_wall_s": baselines,
        "best_exact": {
            "engine": best_engine,
            "wall_s": round(best_wall, 6),
        },
        "coreness": best_fingerprint,
        "shard": shard_entries,
    }


def run_shard_bench(
    graphs: tuple[str, ...] | list[str] | None = None,
    size: str = "large",
    workers: tuple[int, ...] | list[int] | None = None,
    progress: bool = False,
) -> dict[str, object]:
    """The full shard-tier report (see module docstring)."""
    names = list(graphs) if graphs else list(SHARD_BENCH_GRAPHS)
    counts = tuple(workers) if workers else SHARD_BENCH_WORKERS
    cpus = available_cpus()
    entries: dict[str, object] = {}
    for name in names:
        if progress:
            print(f"shard-bench: {name} ({size})...", file=sys.stderr)
        entries[name] = bench_graph(
            name, size=size, workers=counts, progress=progress
        )
    return {
        "schema": SHARD_SCHEMA_VERSION,
        "size": size,
        "kernels": kernel_mode(),
        "available_cpus": cpus,
        "workers": list(counts),
        "graphs": entries,
        "notes": [
            "Pools are spawned outside the timed region: the measured "
            "wall is one decomposition on an already-warm persistent "
            "pool over the shared mmap graph.",
            "speedup_vs_best_exact compares against the fastest cold "
            "exact single-process engine on the same host.",
            f"Measured with {cpus} CPU(s) available; with one CPU the "
            "workers time-slice a single core, so only kernel-heavy "
            "few-round graphs (HCNS, HCNSW) can exceed 1x — the curve "
            "is an honest lower bound on multi-core scaling.",
        ],
    }


__all__ = [
    "SHARD_BENCH_GRAPHS",
    "SHARD_BENCH_WORKERS",
    "SHARD_SCHEMA_VERSION",
    "bench_graph",
    "exact_baseline_engines",
    "run_shard_bench",
]
