"""Host wall-clock and peak-RSS measurement for the benchmark runner.

This module is the *only* sanctioned wall-clock reader under ``src/``:
the simulated runtime's results must be pure functions of graph and seed
(lint rule R003 enforces this), but the benchmark runner's whole job is
to time the host harness itself, so its clock reads carry explicit
suppressions.

Peak RSS comes from ``getrusage(RUSAGE_SELF)`` and is a *process-level*
high-water mark: it only ever grows, so in a pool worker that runs many
cells the value reported for a cell is the worker's peak so far, not the
cell's own footprint.  It still bounds the memory needed to run the cell
and is reported as such (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import resource
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class WallSample:
    """One measured execution: elapsed host time and peak memory."""

    wall_s: float = 0.0
    max_rss_kb: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "wall_s": round(self.wall_s, 6),
            "max_rss_kb": self.max_rss_kb,
        }


def max_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@contextmanager
def measure() -> Iterator[WallSample]:
    """Time a block; the yielded sample is filled in on exit."""
    sample = WallSample()
    start = time.perf_counter()  # lint: disable=R003
    try:
        yield sample
    finally:
        sample.wall_s = time.perf_counter() - start  # lint: disable=R003
        sample.max_rss_kb = max_rss_kb()
