"""Host wall-clock and peak-RSS measurement for the benchmark runner.

This module is the *only* sanctioned wall-clock reader under ``src/``:
the simulated runtime's results must be pure functions of graph and seed
(lint rule R003 enforces this), but the benchmark runner's whole job is
to time the host harness itself, so its clock reads carry explicit
suppressions.

Peak RSS comes from ``getrusage(RUSAGE_SELF)`` and is a *process-level*
high-water mark: it only ever grows, so in a pool worker that runs many
cells the value reported for a cell is the worker's peak so far, not the
cell's own footprint.  It still bounds the memory needed to run the cell
and is reported as such (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os
import resource
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


def available_cpus() -> int:
    """CPUs actually usable by this process, cgroup/affinity aware.

    ``os.cpu_count()`` reports the machine, not the container: under a
    cgroup CPU limit or a restricted affinity mask it overstates what a
    worker pool can use.  ``sched_getaffinity(0)`` reflects the real
    mask where the platform provides it (Linux); elsewhere this falls
    back to ``cpu_count()``.  Host-environment reads live here with the
    clock reads — one sanctioned boundary for everything the simulated
    results must never depend on.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))  # lint: disable=R003
        except OSError:  # pragma: no cover - degenerate platform
            pass
    return max(1, os.cpu_count() or 1)  # lint: disable=R003


@dataclass
class WallSample:
    """One measured execution: elapsed host time and peak memory."""

    wall_s: float = 0.0
    max_rss_kb: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "wall_s": round(self.wall_s, 6),
            "max_rss_kb": self.max_rss_kb,
        }


def max_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@contextmanager
def measure() -> Iterator[WallSample]:
    """Time a block; the yielded sample is filled in on exit."""
    sample = WallSample()
    start = time.perf_counter()  # lint: disable=R003
    try:
        yield sample
    finally:
        sample.wall_s = time.perf_counter() - start  # lint: disable=R003
        sample.max_rss_kb = max_rss_kb()
