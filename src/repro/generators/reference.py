"""Reference (pre-vectorization) generator builders.

These are the original straight-line Python implementations the
vectorized generators in this package replaced.  They are *not* used by
the suite — they exist as equivalence oracles: the generator tests pin
the vectorized builders bit-identical (same RNG stream, same edge list,
same CSR arrays) to these references for every suite seed, so a
performance change to a generator can never silently change the graphs
the benchmarks and goldens run on.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def barabasi_albert_reference(
    n: int,
    attach: int,
    seed: int = 0,
    name: str = "",
    attach_min: int | None = None,
) -> CSRGraph:
    """The original list-based Barabási–Albert urn construction."""
    if attach < 1:
        raise ValueError(f"attach must be >= 1, got {attach}")
    if n <= attach:
        raise ValueError(f"need n > attach, got n={n}, attach={attach}")
    if attach_min is not None and not 1 <= attach_min <= attach:
        raise ValueError(
            f"need 1 <= attach_min <= attach, got {attach_min}"
        )
    rng = np.random.default_rng(seed)

    # Urn of endpoints; seeded with a (attach+1)-clique.
    seed_size = attach + 1
    src_list: list[np.ndarray] = []
    dst_list: list[np.ndarray] = []
    clique = np.arange(seed_size, dtype=np.int64)
    cs, cd = np.meshgrid(clique, clique)
    mask = cs < cd
    src_list.append(cs[mask].ravel())
    dst_list.append(cd[mask].ravel())
    urn = np.concatenate([src_list[0], dst_list[0]]).tolist()

    for v in range(seed_size, n):
        # Draw the attachment count, then that many distinct targets by
        # degree-proportional sampling.
        if attach_min is None:
            count = attach
        else:
            count = int(rng.integers(attach_min, attach + 1))
        targets: set[int] = set()
        while len(targets) < count:
            pick = urn[int(rng.integers(len(urn)))]
            targets.add(int(pick))
        tarr = np.fromiter(targets, dtype=np.int64, count=len(targets))
        src_list.append(np.full(tarr.size, v, dtype=np.int64))
        dst_list.append(tarr)
        urn.extend(tarr.tolist())
        urn.extend([v] * tarr.size)

    edges = np.stack(
        [np.concatenate(src_list), np.concatenate(dst_list)], axis=1
    )
    return CSRGraph.from_edges(n, edges, name=name or f"ba-{n}-{attach}")
