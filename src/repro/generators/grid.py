"""Lattice generators: 2-D grids and 3-D cubes (paper's GRID and CUBE).

A ``sqrt(n) x sqrt(n)`` grid is the paper's adversary for synchronous
peeling: peeling proceeds in diagonal waves from the corners, producing
``O(sqrt(n))`` subrounds of tiny frontiers (Fig. 3), which makes barrier
overhead dominate for offline algorithms.  All vertices have coreness 2
(grid) or 3 (cube).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def grid_2d(rows: int, cols: int, name: str = "") -> CSRGraph:
    """The ``rows x cols`` 2-D grid graph."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive: {rows}x{cols}")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.stack(
        [ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1
    )
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = np.concatenate([horizontal, vertical])
    return CSRGraph.from_edges(
        rows * cols, edges, name=name or f"grid-{rows}x{cols}"
    )


def cube_3d(nx: int, ny: int, nz: int, name: str = "") -> CSRGraph:
    """The ``nx x ny x nz`` 3-D lattice graph."""
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError(
            f"cube dimensions must be positive: {nx}x{ny}x{nz}"
        )
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    pieces = [
        np.stack([ids[:-1, :, :].ravel(), ids[1:, :, :].ravel()], axis=1),
        np.stack([ids[:, :-1, :].ravel(), ids[:, 1:, :].ravel()], axis=1),
        np.stack([ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel()], axis=1),
    ]
    edges = np.concatenate([p for p in pieces if p.size])
    return CSRGraph.from_edges(
        nx * ny * nz, edges, name=name or f"cube-{nx}x{ny}x{nz}"
    )
