"""Synthetic graph generators for every family in the paper's evaluation."""

from repro.generators.grid import cube_3d, grid_2d
from repro.generators.highcore import expected_hcns_coreness, hcns
from repro.generators.knn import (
    gaussian_mixture_points,
    knn_from_points,
    knn_graph,
)
from repro.generators.mesh import delaunay_mesh, wavefront_mesh
from repro.generators.powerlaw import (
    barabasi_albert,
    power_law_with_hub,
    rmat,
)
from repro.generators.random_graphs import (
    clique_chain,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    random_bipartite,
    star_graph,
)
from repro.generators.road import road_like
from repro.generators.small_world import watts_strogatz
from repro.generators.streams import (
    PROFILES,
    Query,
    UpdateBatch,
    generate_stream,
)
from repro.generators.suite import (
    REPRESENTATIVE,
    SAMPLING_TRIGGER,
    SMALL,
    SUITE,
    GraphSpec,
    load,
    names,
)

__all__ = [
    "GraphSpec",
    "PROFILES",
    "Query",
    "REPRESENTATIVE",
    "SAMPLING_TRIGGER",
    "SMALL",
    "SUITE",
    "UpdateBatch",
    "barabasi_albert",
    "clique_chain",
    "complete_graph",
    "cube_3d",
    "cycle_graph",
    "delaunay_mesh",
    "empty_graph",
    "erdos_renyi",
    "expected_hcns_coreness",
    "gaussian_mixture_points",
    "generate_stream",
    "grid_2d",
    "hcns",
    "knn_from_points",
    "knn_graph",
    "load",
    "names",
    "path_graph",
    "power_law_with_hub",
    "random_bipartite",
    "rmat",
    "road_like",
    "star_graph",
    "watts_strogatz",
    "wavefront_mesh",
]
