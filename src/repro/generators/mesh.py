"""Mesh generators — analogues of the paper's TRCE / BBL simulation frames.

TRCE and BBL are meshes taken from frames of 2-D adaptive numerical
simulations: planar, bounded-degree, with long shallow peeling chains
(coreness 2, thousands of subrounds).  A Delaunay triangulation of a
non-uniform point cloud reproduces all three properties.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def delaunay_mesh(
    n: int, seed: int = 0, clustered: bool = True, name: str = ""
) -> CSRGraph:
    """Delaunay triangulation of a random planar point set.

    ``clustered=True`` draws points with strongly varying density (as an
    adaptive simulation mesh would refine), which lengthens the peeling
    chains along density gradients.
    """
    from scipy.spatial import Delaunay

    if n < 4:
        raise ValueError(f"need at least 4 points, got {n}")
    rng = np.random.default_rng(seed)
    if clustered:
        # Mix a uniform background with dense blobs.
        n_blob = n // 2
        blobs = rng.integers(1, 6)
        centers = rng.random((blobs, 2))
        which = rng.integers(blobs, size=n_blob)
        dense = centers[which] + rng.normal(0.0, 0.02, size=(n_blob, 2))
        uniform = rng.random((n - n_blob, 2))
        points = np.concatenate([dense, uniform])
    else:
        points = rng.random((n, 2))
    tri = Delaunay(points)
    simplices = tri.simplices.astype(np.int64)
    edges = np.concatenate(
        [
            simplices[:, [0, 1]],
            simplices[:, [1, 2]],
            simplices[:, [2, 0]],
        ]
    )
    return CSRGraph.from_edges(n, edges, name=name or f"mesh-{n}")


def wavefront_mesh(rows: int, cols: int, name: str = "") -> CSRGraph:
    """A triangulated grid: grid edges plus one diagonal per cell.

    Deterministic, coreness-3 mesh whose peeling sweeps diagonally like
    the simulation frames (good for exact-value tests).
    """
    if rows < 2 or cols < 2:
        raise ValueError(f"mesh needs rows, cols >= 2: {rows}x{cols}")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    diagonal = np.stack(
        [ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()], axis=1
    )
    edges = np.concatenate([horizontal, vertical, diagonal])
    return CSRGraph.from_edges(
        rows * cols, edges, name=name or f"trimesh-{rows}x{cols}"
    )
