"""The HCNS high-coreness adversary (paper Sec. 6.1.1).

HCNS contains exactly one vertex with coreness ``i`` for every
``1 <= i < k_max`` plus a dense subgraph (a clique) with coreness
``k_max``.  It is adversarial twice over: the plain framework re-scans the
active set for ``k_max`` rounds (HBS fixes this, Fig. 8: 47.8x), and with
sampling enabled half of the vertices sit in sample mode and must be
validated every round (the ~24% sampling overhead the paper reports).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def hcns(kmax: int, name: str = "") -> CSRGraph:
    """High-coreness synthetic graph with maximum coreness ``kmax``.

    Construction: a clique on ``kmax + 1`` vertices (each member has
    ``kmax`` clique neighbors, hence coreness ``kmax``), plus chain
    vertices ``c_1 .. c_{kmax-1}`` where ``c_i`` connects to ``i`` clique
    members and therefore has coreness exactly ``i``.
    ``n = 2 * kmax`` vertices.
    """
    if kmax < 2:
        raise ValueError(f"kmax must be >= 2, got {kmax}")
    clique_size = kmax + 1
    chain_size = kmax - 1
    n = clique_size + chain_size

    members = np.arange(clique_size, dtype=np.int64)
    cs, cd = np.meshgrid(members, members)
    mask = cs < cd
    src = [cs[mask].ravel()]
    dst = [cd[mask].ravel()]

    for i in range(1, kmax):
        chain_vertex = clique_size + i - 1
        src.append(np.full(i, chain_vertex, dtype=np.int64))
        # Attach to i distinct clique members (round-robin start to spread
        # the chain load over the clique).
        start = (i * 7) % clique_size
        picks = (start + np.arange(i, dtype=np.int64)) % clique_size
        dst.append(picks)

    edges = np.stack([np.concatenate(src), np.concatenate(dst)], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"hcns-{kmax}")


def expected_hcns_coreness(kmax: int) -> np.ndarray:
    """Ground-truth coreness of :func:`hcns` (for tests)."""
    clique_size = kmax + 1
    chain = np.arange(1, kmax, dtype=np.int64)
    return np.concatenate(
        [np.full(clique_size, kmax, dtype=np.int64), chain]
    )
