"""The HCNS high-coreness adversary (paper Sec. 6.1.1).

HCNS contains exactly one vertex with coreness ``i`` for every
``1 <= i < k_max`` plus a dense subgraph (a clique) with coreness
``k_max``.  It is adversarial twice over: the plain framework re-scans the
active set for ``k_max`` rounds (HBS fixes this, Fig. 8: 47.8x), and with
sampling enabled half of the vertices sit in sample mode and must be
validated every round (the ~24% sampling overhead the paper reports).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def hcns(kmax: int, width: int = 1, name: str = "") -> CSRGraph:
    """High-coreness synthetic graph with maximum coreness ``kmax``.

    Construction: a clique on ``kmax + 1`` vertices (each member has
    ``kmax`` clique neighbors, hence coreness ``kmax``), plus chain
    vertices ``c_1 .. c_{kmax-1}`` where ``c_i`` connects to ``i`` clique
    members and therefore has coreness exactly ``i``.
    ``n = 2 * kmax`` vertices.

    ``width > 1`` generalizes the chain: every coreness level
    ``1 <= i < kmax`` gets ``width`` independent witnesses, each attached
    to ``i`` clique members at a copy-specific round-robin offset.  The
    coreness histogram keeps one bin per level (now ``width`` deep), the
    peel schedule still walks all ``kmax`` levels, but the chain carries
    ``width`` times the edge mass — the wide-chain adversary of the
    shard bench tier (suite entry ``HCNSW``).
    """
    if kmax < 2:
        raise ValueError(f"kmax must be >= 2, got {kmax}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    clique_size = kmax + 1
    chain_size = (kmax - 1) * width
    n = clique_size + chain_size

    members = np.arange(clique_size, dtype=np.int64)
    cs, cd = np.meshgrid(members, members)
    mask = cs < cd
    src = [cs[mask].ravel()]
    dst = [cd[mask].ravel()]

    vertex = clique_size
    for i in range(1, kmax):
        for copy in range(width):
            src.append(np.full(i, vertex, dtype=np.int64))
            # Attach to i distinct clique members (round-robin start to
            # spread the chain load over the clique; copies of the same
            # level start at different offsets).
            start = (i * 7 + copy * 13) % clique_size
            picks = (start + np.arange(i, dtype=np.int64)) % clique_size
            dst.append(picks)
            vertex += 1

    edges = np.stack([np.concatenate(src), np.concatenate(dst)], axis=1)
    default = f"hcns-{kmax}" if width == 1 else f"hcns-{kmax}x{width}"
    return CSRGraph.from_edges(n, edges, name=name or default)


def expected_hcns_coreness(kmax: int, width: int = 1) -> np.ndarray:
    """Ground-truth coreness of :func:`hcns` (for tests)."""
    clique_size = kmax + 1
    chain = np.repeat(np.arange(1, kmax, dtype=np.int64), width)
    return np.concatenate(
        [np.full(clique_size, kmax, dtype=np.int64), chain]
    )
