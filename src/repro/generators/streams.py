"""Deterministic timestamped update + query streams for ``repro.serve``.

The serving milestone needs traffic: sequences of edge-update batches and
coreness queries with arrival times on the *simulated* clock.  This module
generates them from a seed, fully deterministically (lint R003: one seeded
``numpy`` generator, no set/dict iteration), in three profiles modeled on
the workload taxonomy of streaming-graph systems:

* ``steady`` — batches of constant size at uniform inter-arrival times,
  balanced insert/delete mix around a stable edge count;
* ``bursty`` — a quiet baseline punctuated by arrival bursts: several
  oversized batches in quick succession, then a long gap (the profile
  that exercises queueing in the service loop);
* ``churn`` — deletion-heavy turnover biased toward recently inserted
  edges (LIFO), keeping total size roughly flat while cycling the edge
  set — the profile that stresses the deletion cascade.

Every stream is a time-sorted list of :class:`UpdateBatch` and
:class:`Query` events.  Queries arrive between batches and are answered
by the service from the last *committed* epoch, never mid-batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

#: The stream profiles ``generate_stream`` understands.
PROFILES = ("steady", "bursty", "churn")

#: Default simulated inter-arrival gap between batches (ns).  Batches on
#: the tiny suite peel in the 10^3–10^5 ns range, so the default keeps a
#: steady service loop busy without unbounded queueing.
DEFAULT_INTERVAL_NS = 50_000.0


@dataclass(frozen=True)
class UpdateBatch:
    """A batch of edge updates arriving at one simulated instant."""

    time: float
    insertions: tuple[tuple[int, int], ...]
    deletions: tuple[tuple[int, int], ...]

    @property
    def size(self) -> int:
        """Number of individual edge updates in the batch."""
        return len(self.insertions) + len(self.deletions)


@dataclass(frozen=True)
class Query:
    """A coreness read for one vertex at one simulated instant."""

    time: float
    vertex: int


class EdgePool:
    """The evolving edge set a stream generator draws updates from.

    Keeps the current edges in an indexable list (uniform deletion picks
    by index; removal is swap-with-last) plus a membership dict — never
    iterating the dict keeps the stream independent of hash order.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.n = graph.n
        src = np.repeat(
            np.arange(graph.n, dtype=np.int64), graph.degrees
        )
        forward = src < graph.indices
        self._edges: list[tuple[int, int]] = list(
            zip(
                src[forward].tolist(),
                graph.indices[forward].tolist(),
            )
        )
        self._index: dict[tuple[int, int], int] = {
            edge: i for i, edge in enumerate(self._edges)
        }

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: tuple[int, int]) -> bool:
        return edge in self._index

    def draw_absent(
        self, rng: np.random.Generator, attempts: int = 32
    ) -> tuple[int, int] | None:
        """A uniformly random edge not currently present (or ``None``)."""
        for _ in range(attempts):
            u = int(rng.integers(self.n))
            v = int(rng.integers(self.n))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge not in self._index:
                return edge
        return None

    def add(self, edge: tuple[int, int]) -> None:
        self._index[edge] = len(self._edges)
        self._edges.append(edge)

    def remove_at(self, position: int) -> tuple[int, int]:
        """Remove and return the edge at ``position`` (swap-with-last)."""
        edge = self._edges[position]
        last = self._edges[-1]
        self._edges[position] = last
        self._index[last] = position
        self._edges.pop()
        del self._index[edge]
        return edge

    def remove_random(
        self, rng: np.random.Generator
    ) -> tuple[int, int] | None:
        if not self._edges:
            return None
        return self.remove_at(int(rng.integers(len(self._edges))))

    def remove_recent(
        self, rng: np.random.Generator, window: int = 8
    ) -> tuple[int, int] | None:
        """Remove an edge biased toward the most recently added ones."""
        if not self._edges:
            return None
        span = min(window, len(self._edges))
        position = len(self._edges) - 1 - int(rng.integers(span))
        return self.remove_at(position)


def _batch_updates(
    pool: EdgePool,
    rng: np.random.Generator,
    size: int,
    delete_share: float,
    recent_bias: bool,
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Draw one batch of updates, mutating ``pool`` to the post state.

    Batches are *set-conformant* with the engine's deletions-first
    semantics: an edge inserted in this batch is never also deleted in
    it (each edge appears at most once per list; the only same-edge
    combination is delete+insert, which nets to present in both the
    pool and the engine).  The pool therefore tracks the served edge
    set exactly, batch for batch.
    """
    insertions: list[tuple[int, int]] = []
    deletions: list[tuple[int, int]] = []
    fresh: set[tuple[int, int]] = set()
    for _ in range(size):
        if len(pool) > 0 and rng.random() < delete_share:
            edge = (
                pool.remove_recent(rng)
                if recent_bias
                else pool.remove_random(rng)
            )
            if edge is None:
                continue
            if edge in fresh:
                # Deleting an edge inserted in this same batch would
                # contradict deletions-first set semantics; skip it.
                pool.add(edge)
                continue
            deletions.append(edge)
        else:
            edge = pool.draw_absent(rng)
            if edge is not None:
                pool.add(edge)
                insertions.append(edge)
                fresh.add(edge)
    return insertions, deletions


def generate_stream(
    graph: CSRGraph,
    profile: str,
    batches: int = 32,
    batch_size: int = 16,
    queries_per_batch: int = 8,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    seed: int = 0,
) -> list[UpdateBatch | Query]:
    """A deterministic timestamped stream of update batches and queries.

    Args:
        graph: Initial graph; the stream evolves its edge set.
        profile: One of :data:`PROFILES`.
        batches: Number of update batches.
        batch_size: Nominal updates per batch (profiles modulate it).
        queries_per_batch: Coreness reads arriving between batches.
        interval_ns: Nominal inter-arrival gap on the simulated clock.
        seed: RNG seed; equal seeds produce equal streams, bit for bit.

    Returns:
        Events sorted by arrival time (queries precede the batch they
        share an interval with).
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown stream profile {profile!r}; expected one of "
            f"{PROFILES}"
        )
    if graph.n < 2:
        raise ValueError("streams need a graph with at least 2 vertices")
    rng = np.random.default_rng(seed)
    pool = EdgePool(graph)
    events: list[UpdateBatch | Query] = []
    clock = 0.0
    for index in range(batches):
        if profile == "steady":
            gap = interval_ns
            size = batch_size
            delete_share, recent = 0.5, False
        elif profile == "bursty":
            in_burst = rng.random() < 0.25
            if in_burst:
                gap = interval_ns * 0.1
                size = batch_size * 4
            else:
                gap = interval_ns * 1.5
                size = max(1, batch_size // 4)
            delete_share, recent = 0.5, False
        else:  # churn
            gap = interval_ns
            size = batch_size
            delete_share, recent = 0.7, True
        arrival = clock + gap
        for q in range(queries_per_batch):
            qtime = clock + gap * (q + 1) / (queries_per_batch + 1)
            events.append(
                Query(time=qtime, vertex=int(rng.integers(graph.n)))
            )
        insertions, deletions = _batch_updates(
            pool, rng, size, delete_share, recent
        )
        events.append(
            UpdateBatch(
                time=arrival,
                insertions=tuple(insertions),
                deletions=tuple(deletions),
            )
        )
        clock = arrival
    return events


__all__ = [
    "DEFAULT_INTERVAL_NS",
    "PROFILES",
    "EdgePool",
    "Query",
    "UpdateBatch",
    "generate_stream",
]
