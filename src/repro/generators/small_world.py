"""Watts–Strogatz small-world graphs.

Small-world networks sit between the suite's lattices (long peeling
chains) and its power-law graphs (hubs): high clustering with a few
long-range shortcuts.  k-core studies use them to probe how shortcut
density changes the core structure — with rewiring probability 0 the
graph is a ring lattice of uniform coreness ``k``; full rewiring
approaches an Erdos-Renyi graph with a graded core.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def watts_strogatz(
    n: int,
    k: int,
    rewire_p: float,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Watts–Strogatz ring lattice with random rewiring.

    Args:
        n: Number of vertices.
        k: Each vertex connects to its ``k`` nearest ring neighbours
            (``k`` must be even and less than ``n``).
        rewire_p: Probability of rewiring each lattice edge's far
            endpoint to a uniform random vertex.
        seed: RNG seed.
        name: Label.
    """
    if k % 2 or k < 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    if not 0.0 <= rewire_p <= 1.0:
        raise ValueError(f"rewire_p must be in [0, 1], got {rewire_p}")
    rng = np.random.default_rng(seed)

    ids = np.arange(n, dtype=np.int64)
    src_parts = []
    dst_parts = []
    for offset in range(1, k // 2 + 1):
        src_parts.append(ids)
        dst_parts.append((ids + offset) % n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)

    rewire = rng.random(src.size) < rewire_p
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(
        n, edges, name=name or f"ws-{n}-{k}-{rewire_p}"
    )
