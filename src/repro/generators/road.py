"""Road-network-like generator (paper's OSM Africa/NA/Asia/Europe rows).

Road networks are near-planar with tiny degrees (average around 2.5, max
around 8), tiny coreness (k_max = 3 or 4) and a few hundred peeling
subrounds.  We synthesize one from a jittered grid skeleton: keep a random
subset of lattice edges (the road grid), add a sprinkle of diagonal
shortcuts (highways), and attach degree-1 spurs (dead ends).  This
reproduces the degree profile and the long shallow peeling chains that
make road graphs VGC's best case.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def road_like(
    n: int,
    seed: int = 0,
    keep_fraction: float = 0.82,
    shortcut_fraction: float = 0.03,
    spur_fraction: float = 0.12,
    name: str = "",
) -> CSRGraph:
    """A road-network-like graph with about ``n`` vertices.

    Args:
        n: Approximate vertex count (rounded to a grid).
        seed: RNG seed.
        keep_fraction: Fraction of lattice edges kept.
        shortcut_fraction: Diagonal shortcuts per cell.
        spur_fraction: Fraction of vertices receiving a dead-end spur.
        name: Label for the graph.
    """
    if n < 9:
        raise ValueError(f"need n >= 9, got {n}")
    rng = np.random.default_rng(seed)
    side = int(np.sqrt(n / (1.0 + spur_fraction)))
    side = max(side, 3)
    core_n = side * side
    ids = np.arange(core_n, dtype=np.int64).reshape(side, side)

    horizontal = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    lattice = np.concatenate([horizontal, vertical])
    keep = rng.random(lattice.shape[0]) < keep_fraction
    edges = [lattice[keep]]

    diagonal = np.stack([ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()], axis=1)
    shortcut = rng.random(diagonal.shape[0]) < shortcut_fraction
    edges.append(diagonal[shortcut])

    n_spurs = int(core_n * spur_fraction)
    if n_spurs:
        anchors = rng.choice(core_n, size=n_spurs, replace=False)
        spur_ids = core_n + np.arange(n_spurs, dtype=np.int64)
        edges.append(np.stack([anchors.astype(np.int64), spur_ids], axis=1))
    total_n = core_n + n_spurs
    return CSRGraph.from_edges(
        total_n, np.concatenate(edges), name=name or f"road-{total_n}"
    )
