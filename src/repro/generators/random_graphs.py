"""Elementary random and deterministic graph generators.

Used throughout the test suite (known-coreness fixtures, hypothesis seeds)
and as building blocks of the benchmark suite.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def erdos_renyi(
    n: int, avg_degree: float, seed: int = 0, name: str = ""
) -> CSRGraph:
    """G(n, m)-style random graph with expected average degree.

    Samples ``n * avg_degree / 2`` endpoint pairs uniformly; duplicates and
    self-loops are removed by CSR construction.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if avg_degree < 0:
        raise ValueError(f"avg_degree must be >= 0, got {avg_degree}")
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return CSRGraph.from_edges(n, edges, name=name or f"er-{n}")


def complete_graph(n: int, name: str = "") -> CSRGraph:
    """The complete graph K_n (coreness ``n - 1`` everywhere)."""
    ids = np.arange(n, dtype=np.int64)
    src, dst = np.meshgrid(ids, ids)
    mask = src < dst
    edges = np.stack([src[mask].ravel(), dst[mask].ravel()], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"k{n}")


def star_graph(n: int, name: str = "") -> CSRGraph:
    """A star: vertex 0 connected to all others (coreness 1 everywhere)."""
    if n < 2:
        raise ValueError(f"star needs n >= 2, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    edges = np.stack([np.zeros(n - 1, dtype=np.int64), leaves], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"star-{n}")


def cycle_graph(n: int, name: str = "") -> CSRGraph:
    """A cycle C_n (coreness 2 everywhere)."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    ids = np.arange(n, dtype=np.int64)
    edges = np.stack([ids, (ids + 1) % n], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"cycle-{n}")


def path_graph(n: int, name: str = "") -> CSRGraph:
    """A path P_n (coreness 1; the longest possible peeling chain)."""
    if n < 2:
        raise ValueError(f"path needs n >= 2, got {n}")
    ids = np.arange(n - 1, dtype=np.int64)
    edges = np.stack([ids, ids + 1], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"path-{n}")


def empty_graph(n: int, name: str = "") -> CSRGraph:
    """n isolated vertices (coreness 0)."""
    return CSRGraph.from_edges(n, [], name=name or f"empty-{n}")


def clique_chain(
    cliques: int, clique_size: int, name: str = ""
) -> CSRGraph:
    """A chain of cliques joined by single bridge edges.

    Every clique member has coreness ``clique_size - 1``; useful for
    testing bucket structures across repeated identical cores.
    """
    if cliques < 1 or clique_size < 2:
        raise ValueError("need cliques >= 1 and clique_size >= 2")
    edges = []
    for c in range(cliques):
        base = c * clique_size
        ids = base + np.arange(clique_size, dtype=np.int64)
        src, dst = np.meshgrid(ids, ids)
        mask = src < dst
        edges.append(
            np.stack([src[mask].ravel(), dst[mask].ravel()], axis=1)
        )
        if c:
            edges.append(
                np.array([[base - 1, base]], dtype=np.int64)
            )
    n = cliques * clique_size
    return CSRGraph.from_edges(
        n, np.concatenate(edges), name=name or f"cliquechain-{cliques}"
    )


def random_bipartite(
    left: int, right: int, avg_degree: float, seed: int = 0, name: str = ""
) -> CSRGraph:
    """Random bipartite graph (tests non-symmetric degree distributions)."""
    if left < 1 or right < 1:
        raise ValueError("both sides must be non-empty")
    rng = np.random.default_rng(seed)
    m = int((left + right) * avg_degree / 2)
    src = rng.integers(0, left, size=m, dtype=np.int64)
    dst = left + rng.integers(0, right, size=m, dtype=np.int64)
    return CSRGraph.from_edges(
        left + right,
        np.stack([src, dst], axis=1),
        name=name or f"bipartite-{left}x{right}",
    )
