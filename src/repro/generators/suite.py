"""The benchmark graph suite — a scaled-down mirror of the paper's Table 2.

Each entry reproduces the *family* and the structural property that drives
the corresponding experiment, at a size a pure-Python simulated runtime can
sweep in minutes:

* social / web graphs  -> power-law hubs (contention; sampling's target),
* road / mesh / grid   -> long shallow peeling chains (VGC's target),
* k-NN graphs          -> uniform small coreness, very few subrounds,
* HCNS                 -> one vertex per coreness value (HBS's target),
* HPL                  -> Barabási–Albert, as in the paper.

Use :func:`load` to build (and memoize) a graph by name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.generators.grid import cube_3d, grid_2d
from repro.generators.highcore import hcns
from repro.generators.knn import knn_graph
from repro.generators.mesh import delaunay_mesh
from repro.generators.powerlaw import (
    barabasi_albert,
    power_law_with_hub,
    rmat,
)
from repro.generators.road import road_like
from repro.graphs.csr import CSRGraph


@dataclass(frozen=True)
class GraphSpec:
    """One suite entry.

    Attributes:
        name: Suite name (paper acronym with an ``-S`` scaled suffix).
        family: Table 2 family ("social", "web", "road", "knn", "other").
        paper_name: The dataset this entry scales down.
        dense: The paper's dense/sparse classification of the family.
        build: Zero-argument builder returning the graph.
        build_tiny: Builder for the tiny (hundreds-of-vertices) rendition of
            the same family, used by smoke tests and the differential
            oracle so they can sweep the full suite breadth in seconds.
    """

    name: str
    family: str
    paper_name: str
    dense: bool
    build: Callable[[], CSRGraph]
    build_tiny: Callable[[], CSRGraph]


def _named(builder: Callable[[], CSRGraph], name: str) -> Callable[[], CSRGraph]:
    def build() -> CSRGraph:
        graph = builder()
        graph.name = name
        return graph

    return build


def _spec(
    name: str,
    family: str,
    paper_name: str,
    dense: bool,
    builder: Callable[[], CSRGraph],
    tiny: Callable[[], CSRGraph],
) -> GraphSpec:
    return GraphSpec(
        name, family, paper_name, dense,
        _named(builder, name), _named(tiny, name),
    )


SUITE: dict[str, GraphSpec] = {
    spec.name: spec
    for spec in [
        # ----- social networks (dense, power-law) ---------------------
        _spec("LJ-S", "social", "soc-LiveJournal1", True,
              lambda: barabasi_albert(8_000, 12, seed=11, attach_min=2),
              lambda: barabasi_albert(400, 6, seed=11, attach_min=2)),
        _spec("OK-S", "social", "com-orkut", True,
              lambda: barabasi_albert(6_000, 20, seed=12, attach_min=4),
              lambda: barabasi_albert(300, 10, seed=12, attach_min=4)),
        _spec("WB-S", "social", "soc-sinaweibo", True,
              lambda: rmat(13, 8, seed=13),
              lambda: rmat(8, 8, seed=13)),
        _spec("TW-S", "social", "Twitter", True,
              lambda: power_law_with_hub(
                  12_000, 6, hub_count=6, hub_degree=3_000, seed=14),
              lambda: power_law_with_hub(
                  600, 4, hub_count=2, hub_degree=150, seed=14)),
        _spec("FS-S", "social", "Friendster", True,
              lambda: barabasi_albert(16_000, 16, seed=15, attach_min=3),
              lambda: barabasi_albert(500, 8, seed=15, attach_min=3)),
        # ----- web graphs (dense, very skewed) ------------------------
        _spec("EH-S", "web", "eu-host", True,
              lambda: rmat(14, 16, a=0.65, b=0.16, c=0.16, seed=21),
              lambda: rmat(8, 16, a=0.65, b=0.16, c=0.16, seed=21)),
        _spec("SD-S", "web", "sd-arc", True,
              lambda: rmat(14, 32, a=0.65, b=0.16, c=0.16, seed=22),
              lambda: rmat(8, 32, a=0.65, b=0.16, c=0.16, seed=22)),
        _spec("CW-S", "web", "ClueWeb", True,
              lambda: rmat(15, 24, a=0.66, b=0.16, c=0.16, seed=23),
              lambda: rmat(9, 24, a=0.66, b=0.16, c=0.16, seed=23)),
        _spec("HL14-S", "web", "Hyperlink14", True,
              lambda: rmat(15, 16, a=0.65, b=0.16, c=0.16, seed=24),
              lambda: rmat(9, 16, a=0.65, b=0.16, c=0.16, seed=24)),
        _spec("HL12-S", "web", "Hyperlink12", True,
              lambda: rmat(15, 20, a=0.65, b=0.16, c=0.16, seed=25),
              lambda: rmat(9, 20, a=0.65, b=0.16, c=0.16, seed=25)),
        # ----- road networks (sparse) ---------------------------------
        _spec("AF-S", "road", "OSM Africa", False,
              lambda: road_like(20_000, seed=31),
              lambda: road_like(700, seed=31)),
        _spec("NA-S", "road", "OSM North America", False,
              lambda: road_like(30_000, seed=32),
              lambda: road_like(900, seed=32)),
        _spec("AS-S", "road", "OSM Asia", False,
              lambda: road_like(34_000, seed=33),
              lambda: road_like(1_000, seed=33)),
        _spec("EU-S", "road", "OSM Europe", False,
              lambda: road_like(40_000, seed=34),
              lambda: road_like(1_200, seed=34)),
        # ----- k-NN graphs (sparse) -----------------------------------
        _spec("CH5-S", "knn", "Chem, k=5", False,
              lambda: knn_graph(8_000, 5, dim=16, clusters=12, seed=41),
              lambda: knn_graph(400, 5, dim=16, clusters=6, seed=41)),
        _spec("GL2-S", "knn", "GeoLife, k=2", False,
              lambda: knn_graph(12_000, 2, dim=3, clusters=16, seed=42),
              lambda: knn_graph(500, 2, dim=3, clusters=8, seed=42)),
        _spec("GL5-S", "knn", "GeoLife, k=5", False,
              lambda: knn_graph(12_000, 5, dim=3, clusters=16, seed=42),
              lambda: knn_graph(500, 5, dim=3, clusters=8, seed=42)),
        _spec("GL10-S", "knn", "GeoLife, k=10", False,
              lambda: knn_graph(12_000, 10, dim=3, clusters=16, seed=42),
              lambda: knn_graph(500, 10, dim=3, clusters=8, seed=42)),
        _spec("COS5-S", "knn", "Cosmo50, k=5", False,
              lambda: knn_graph(20_000, 5, dim=3, clusters=24, seed=43),
              lambda: knn_graph(700, 5, dim=3, clusters=10, seed=43)),
        # ----- other graphs --------------------------------------------
        _spec("TRCE-S", "other", "Huge traces", False,
              lambda: delaunay_mesh(16_000, seed=51),
              lambda: delaunay_mesh(600, seed=51)),
        _spec("BBL-S", "other", "Huge bubbles", False,
              lambda: delaunay_mesh(20_000, seed=52),
              lambda: delaunay_mesh(700, seed=52)),
        _spec("GRID", "other", "Synthetic grid", False,
              lambda: grid_2d(280, 280),
              lambda: grid_2d(36, 36)),
        _spec("CUBE", "other", "Synthetic cube", False,
              lambda: cube_3d(24, 24, 24),
              lambda: cube_3d(10, 10, 10)),
        _spec("HCNS", "other", "High-coreness synthetic", True,
              lambda: hcns(1024),
              lambda: hcns(96)),
        # BA's max degree shrinks with n; graft scale-appropriate hubs so
        # the scaled graph keeps the huge-hub property that drives the
        # paper's sampling experiments on HPL.
        _spec("HPL", "other", "Power-law (Barabási–Albert)", True,
              lambda: power_law_with_hub(
                  16_000, 12, hub_count=4, hub_degree=4_000, seed=55),
              lambda: power_law_with_hub(
                  800, 6, hub_count=2, hub_degree=200, seed=55)),
    ]
}

#: The 14 representative graphs of the paper's Fig. 2.
REPRESENTATIVE: tuple[str, ...] = (
    "LJ-S", "OK-S", "TW-S", "EH-S", "SD-S", "AF-S", "EU-S",
    "CH5-S", "GL5-S", "COS5-S", "TRCE-S", "GRID", "HCNS", "HPL",
)

#: Graphs that contain vertices large enough to trigger sampling
#: (the paper's eight: TW, EH, SD, CW, HL14, HL12, HPL, HCNS).
SAMPLING_TRIGGER: tuple[str, ...] = (
    "TW-S", "EH-S", "SD-S", "CW-S", "HL14-S", "HL12-S", "HPL", "HCNS",
)

#: A tiny sub-suite for smoke tests and examples.
SMALL: tuple[str, ...] = ("LJ-S", "AF-S", "GL5-S", "GRID", "HCNS")


def tiny_mode() -> bool:
    """Whether ``REPRO_SUITE_TINY`` requests the tiny suite renditions."""
    return os.environ.get("REPRO_SUITE_TINY", "") not in ("", "0")


def load(name: str, tiny: bool | None = None) -> CSRGraph:
    """Build (once per process) and return the suite graph ``name``.

    ``tiny=True`` returns the hundreds-of-vertices rendition of the same
    family (smoke tests, the differential oracle); the default follows the
    ``REPRO_SUITE_TINY`` environment variable.  Full-size and tiny builds
    are cached independently, so enabling tiny mode mid-process never
    poisons the full-size cache.

    Set the ``REPRO_GRAPH_CACHE`` environment variable to a directory to
    additionally persist built graphs as ``.npz`` across processes —
    repeated benchmark invocations then skip the generators entirely.
    """
    return _load(name, tiny_mode() if tiny is None else bool(tiny))


def _load_impl(name: str, tiny: bool) -> CSRGraph:
    try:
        spec = SUITE[name]
    except KeyError:
        known = ", ".join(sorted(SUITE))
        raise KeyError(f"unknown suite graph {name!r}; known: {known}")
    builder = spec.build_tiny if tiny else spec.build
    cache_dir = os.environ.get("REPRO_GRAPH_CACHE")
    if cache_dir:
        from repro.graphs.io import load_npz, save_npz

        os.makedirs(cache_dir, exist_ok=True)
        stem = f"{name}.tiny" if tiny else name
        path = os.path.join(cache_dir, f"{stem}.npz")
        if os.path.exists(path):
            graph = load_npz(path)
            graph.name = name
            return graph
        graph = builder()
        save_npz(graph, path)
        return graph
    return builder()


_load = lru_cache(maxsize=None)(_load_impl)
#: Existing callers clear the process cache through ``load``.
load.cache_clear = _load.cache_clear  # type: ignore[attr-defined]


def names(
    family: str | None = None, dense: bool | None = None
) -> list[str]:
    """Suite names filtered by family and/or density class."""
    out = []
    for spec in SUITE.values():
        if family is not None and spec.family != family:
            continue
        if dense is not None and spec.dense != dense:
            continue
        out.append(spec.name)
    return out
