"""The benchmark graph suite — a scaled-down mirror of the paper's Table 2.

Each entry reproduces the *family* and the structural property that drives
the corresponding experiment, at a size a pure-Python simulated runtime can
sweep in minutes:

* social / web graphs  -> power-law hubs (contention; sampling's target),
* road / mesh / grid   -> long shallow peeling chains (VGC's target),
* k-NN graphs          -> uniform small coreness, very few subrounds,
* HCNS                 -> one vertex per coreness value (HBS's target),
* HPL                  -> Barabási–Albert, as in the paper.

Every entry comes in three sizes: ``tiny`` (hundreds of vertices; smoke
tests and the differential oracle), ``full`` (the default benchmark tier)
and ``large`` (roughly 10x full; the scaling tier the vectorized kernels
exist for).  A spec is a *recipe* — a generator name plus its keyword
parameters — rather than a closure, so the graph cache can derive a
content key from the recipe itself (see :func:`repro.graphs.io.graph_cache_key`).

Use :func:`load` to build (and memoize) a graph by name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping

from repro.generators.grid import cube_3d, grid_2d
from repro.generators.highcore import hcns
from repro.generators.knn import knn_graph
from repro.generators.mesh import delaunay_mesh
from repro.generators.powerlaw import (
    barabasi_albert,
    power_law_with_hub,
    rmat,
)
from repro.generators.road import road_like
from repro.graphs.csr import CSRGraph

#: Suite tiers, smallest first.
SIZES: tuple[str, ...] = ("tiny", "full", "large")

#: Generator registry: the names usable in a :class:`GraphSpec` recipe.
GENERATORS: dict[str, Callable[..., CSRGraph]] = {
    "barabasi_albert": barabasi_albert,
    "rmat": rmat,
    "power_law_with_hub": power_law_with_hub,
    "road_like": road_like,
    "knn_graph": knn_graph,
    "delaunay_mesh": delaunay_mesh,
    "grid_2d": grid_2d,
    "cube_3d": cube_3d,
    "hcns": hcns,
}

#: A recipe: generator name + keyword parameters (the cache-key content).
Recipe = tuple[str, Mapping[str, object]]


@dataclass(frozen=True)
class GraphSpec:
    """One suite entry.

    Attributes:
        name: Suite name (paper acronym with an ``-S`` scaled suffix).
        family: Table 2 family ("social", "web", "road", "knn", "other").
        paper_name: The dataset this entry scales down.
        dense: The paper's dense/sparse classification of the family.
        recipes: Size tier -> ``(generator, params)`` recipe.
    """

    name: str
    family: str
    paper_name: str
    dense: bool
    recipes: Mapping[str, Recipe] = field(default_factory=dict)

    def recipe(self, size: str) -> Recipe:
        """The ``(generator, params)`` recipe for a size tier."""
        if size not in SIZES:
            raise ValueError(
                f"unknown suite size {size!r}; known: {', '.join(SIZES)}"
            )
        return self.recipes[size]

    def cache_key(self, size: str) -> str:
        """Content key of this entry at a tier (recipe hash, seeds included)."""
        from repro.graphs.io import graph_cache_key

        generator, params = self.recipe(size)
        return graph_cache_key(generator, params)

    def build_size(self, size: str) -> CSRGraph:
        """Build the graph at a tier (no caching; see :func:`load`)."""
        generator, params = self.recipe(size)
        graph = GENERATORS[generator](**params)
        graph.name = self.name
        return graph

    def build(self) -> CSRGraph:
        """Build the default (full) tier."""
        return self.build_size("full")

    def build_tiny(self) -> CSRGraph:
        """Build the tiny tier (smoke tests, differential oracle)."""
        return self.build_size("tiny")

    def build_large(self) -> CSRGraph:
        """Build the large tier (~10x full; the scaling benchmarks)."""
        return self.build_size("large")


def _spec(
    name: str,
    family: str,
    paper_name: str,
    dense: bool,
    generator: str,
    tiny: dict,
    full: dict,
    large: dict,
) -> GraphSpec:
    return GraphSpec(
        name, family, paper_name, dense,
        {"tiny": (generator, tiny), "full": (generator, full),
         "large": (generator, large)},
    )


SUITE: dict[str, GraphSpec] = {
    spec.name: spec
    for spec in [
        # ----- social networks (dense, power-law) ---------------------
        _spec("LJ-S", "social", "soc-LiveJournal1", True, "barabasi_albert",
              dict(n=400, attach=6, seed=11, attach_min=2),
              dict(n=8_000, attach=12, seed=11, attach_min=2),
              dict(n=100_000, attach=12, seed=11, attach_min=2)),
        _spec("OK-S", "social", "com-orkut", True, "barabasi_albert",
              dict(n=300, attach=10, seed=12, attach_min=4),
              dict(n=6_000, attach=20, seed=12, attach_min=4),
              dict(n=60_000, attach=20, seed=12, attach_min=4)),
        _spec("WB-S", "social", "soc-sinaweibo", True, "rmat",
              dict(scale=8, edge_factor=8, seed=13),
              dict(scale=13, edge_factor=8, seed=13),
              dict(scale=16, edge_factor=8, seed=13)),
        _spec("TW-S", "social", "Twitter", True, "power_law_with_hub",
              dict(n=600, attach=4, hub_count=2, hub_degree=150, seed=14),
              dict(n=12_000, attach=6, hub_count=6, hub_degree=3_000,
                   seed=14),
              dict(n=120_000, attach=6, hub_count=6, hub_degree=30_000,
                   seed=14)),
        _spec("FS-S", "social", "Friendster", True, "barabasi_albert",
              dict(n=500, attach=8, seed=15, attach_min=3),
              dict(n=16_000, attach=16, seed=15, attach_min=3),
              dict(n=120_000, attach=16, seed=15, attach_min=3)),
        # ----- web graphs (dense, very skewed) ------------------------
        _spec("EH-S", "web", "eu-host", True, "rmat",
              dict(scale=8, edge_factor=16, a=0.65, b=0.16, c=0.16,
                   seed=21),
              dict(scale=14, edge_factor=16, a=0.65, b=0.16, c=0.16,
                   seed=21),
              dict(scale=17, edge_factor=16, a=0.65, b=0.16, c=0.16,
                   seed=21)),
        _spec("SD-S", "web", "sd-arc", True, "rmat",
              dict(scale=8, edge_factor=32, a=0.65, b=0.16, c=0.16,
                   seed=22),
              dict(scale=14, edge_factor=32, a=0.65, b=0.16, c=0.16,
                   seed=22),
              dict(scale=17, edge_factor=32, a=0.65, b=0.16, c=0.16,
                   seed=22)),
        _spec("CW-S", "web", "ClueWeb", True, "rmat",
              dict(scale=9, edge_factor=24, a=0.66, b=0.16, c=0.16,
                   seed=23),
              dict(scale=15, edge_factor=24, a=0.66, b=0.16, c=0.16,
                   seed=23),
              dict(scale=18, edge_factor=24, a=0.66, b=0.16, c=0.16,
                   seed=23)),
        _spec("HL14-S", "web", "Hyperlink14", True, "rmat",
              dict(scale=9, edge_factor=16, a=0.65, b=0.16, c=0.16,
                   seed=24),
              dict(scale=15, edge_factor=16, a=0.65, b=0.16, c=0.16,
                   seed=24),
              dict(scale=18, edge_factor=16, a=0.65, b=0.16, c=0.16,
                   seed=24)),
        _spec("HL12-S", "web", "Hyperlink12", True, "rmat",
              dict(scale=9, edge_factor=20, a=0.65, b=0.16, c=0.16,
                   seed=25),
              dict(scale=15, edge_factor=20, a=0.65, b=0.16, c=0.16,
                   seed=25),
              dict(scale=18, edge_factor=20, a=0.65, b=0.16, c=0.16,
                   seed=25)),
        # ----- road networks (sparse) ---------------------------------
        _spec("AF-S", "road", "OSM Africa", False, "road_like",
              dict(n=700, seed=31),
              dict(n=20_000, seed=31),
              dict(n=200_000, seed=31)),
        _spec("NA-S", "road", "OSM North America", False, "road_like",
              dict(n=900, seed=32),
              dict(n=30_000, seed=32),
              dict(n=300_000, seed=32)),
        _spec("AS-S", "road", "OSM Asia", False, "road_like",
              dict(n=1_000, seed=33),
              dict(n=34_000, seed=33),
              dict(n=340_000, seed=33)),
        _spec("EU-S", "road", "OSM Europe", False, "road_like",
              dict(n=1_200, seed=34),
              dict(n=40_000, seed=34),
              dict(n=400_000, seed=34)),
        # ----- k-NN graphs (sparse) -----------------------------------
        _spec("CH5-S", "knn", "Chem, k=5", False, "knn_graph",
              dict(n=400, k=5, dim=16, clusters=6, seed=41),
              dict(n=8_000, k=5, dim=16, clusters=12, seed=41),
              dict(n=80_000, k=5, dim=16, clusters=12, seed=41)),
        _spec("GL2-S", "knn", "GeoLife, k=2", False, "knn_graph",
              dict(n=500, k=2, dim=3, clusters=8, seed=42),
              dict(n=12_000, k=2, dim=3, clusters=16, seed=42),
              dict(n=120_000, k=2, dim=3, clusters=16, seed=42)),
        _spec("GL5-S", "knn", "GeoLife, k=5", False, "knn_graph",
              dict(n=500, k=5, dim=3, clusters=8, seed=42),
              dict(n=12_000, k=5, dim=3, clusters=16, seed=42),
              dict(n=120_000, k=5, dim=3, clusters=16, seed=42)),
        _spec("GL10-S", "knn", "GeoLife, k=10", False, "knn_graph",
              dict(n=500, k=10, dim=3, clusters=8, seed=42),
              dict(n=12_000, k=10, dim=3, clusters=16, seed=42),
              dict(n=120_000, k=10, dim=3, clusters=16, seed=42)),
        _spec("COS5-S", "knn", "Cosmo50, k=5", False, "knn_graph",
              dict(n=700, k=5, dim=3, clusters=10, seed=43),
              dict(n=20_000, k=5, dim=3, clusters=24, seed=43),
              dict(n=200_000, k=5, dim=3, clusters=24, seed=43)),
        # ----- other graphs --------------------------------------------
        _spec("TRCE-S", "other", "Huge traces", False, "delaunay_mesh",
              dict(n=600, seed=51),
              dict(n=16_000, seed=51),
              dict(n=160_000, seed=51)),
        _spec("BBL-S", "other", "Huge bubbles", False, "delaunay_mesh",
              dict(n=700, seed=52),
              dict(n=20_000, seed=52),
              dict(n=200_000, seed=52)),
        _spec("GRID", "other", "Synthetic grid", False, "grid_2d",
              dict(rows=36, cols=36),
              dict(rows=280, cols=280),
              dict(rows=880, cols=880)),
        _spec("CUBE", "other", "Synthetic cube", False, "cube_3d",
              dict(nx=10, ny=10, nz=10),
              dict(nx=24, ny=24, nz=24),
              dict(nx=52, ny=52, nz=52)),
        # HCNS's edge count grows as kmax^2, so the large tier scales the
        # coreness range by 2x (~4x edges), not 10x.
        _spec("HCNS", "other", "High-coreness synthetic", True, "hcns",
              dict(kmax=96),
              dict(kmax=1024),
              dict(kmax=2048)),
        # The wide-chain variant: every coreness level gets `width`
        # witnesses, so the chain carries most of the edge mass while the
        # peel schedule still walks all kmax levels.  The second flagship
        # of the shard bench tier (few H-index rounds, heavy per-round
        # kernels, long sequential peel).
        _spec("HCNSW", "other", "High-coreness synthetic, wide chain",
              True, "hcns",
              dict(kmax=64, width=3),
              dict(kmax=384, width=3),
              dict(kmax=1024, width=3)),
        # BA's max degree shrinks with n; graft scale-appropriate hubs so
        # the scaled graph keeps the huge-hub property that drives the
        # paper's sampling experiments on HPL.
        _spec("HPL", "other", "Power-law (Barabási–Albert)", True,
              "power_law_with_hub",
              dict(n=800, attach=6, hub_count=2, hub_degree=200, seed=55),
              dict(n=16_000, attach=12, hub_count=4, hub_degree=4_000,
                   seed=55),
              dict(n=160_000, attach=12, hub_count=4, hub_degree=40_000,
                   seed=55)),
    ]
}

#: The 14 representative graphs of the paper's Fig. 2.
REPRESENTATIVE: tuple[str, ...] = (
    "LJ-S", "OK-S", "TW-S", "EH-S", "SD-S", "AF-S", "EU-S",
    "CH5-S", "GL5-S", "COS5-S", "TRCE-S", "GRID", "HCNS", "HPL",
)

#: Graphs that contain vertices large enough to trigger sampling
#: (the paper's eight: TW, EH, SD, CW, HL14, HL12, HPL, HCNS).
SAMPLING_TRIGGER: tuple[str, ...] = (
    "TW-S", "EH-S", "SD-S", "CW-S", "HL14-S", "HL12-S", "HPL", "HCNS",
)

#: A tiny sub-suite for smoke tests and examples.
SMALL: tuple[str, ...] = ("LJ-S", "AF-S", "GL5-S", "GRID", "HCNS")


def tiny_mode() -> bool:
    """Whether ``REPRO_SUITE_TINY`` requests the tiny suite renditions."""
    return os.environ.get("REPRO_SUITE_TINY", "") not in ("", "0")


def load(
    name: str, tiny: bool | None = None, size: str | None = None
) -> CSRGraph:
    """Build (once per process) and return the suite graph ``name``.

    ``size`` selects the tier explicitly ("tiny" / "full" / "large");
    ``tiny=True`` is shorthand for ``size="tiny"`` (smoke tests, the
    differential oracle); the default follows the ``REPRO_SUITE_TINY``
    environment variable.  Tiers are cached independently, so enabling
    tiny mode mid-process never poisons the full-size cache.

    Set the ``REPRO_GRAPH_CACHE`` environment variable to a directory to
    additionally persist built graphs as uncompressed ``.npz`` across
    processes — repeated benchmark invocations then skip the generators
    entirely and memory-map the cached arrays.  Entries are keyed by the
    *recipe content* (generator, parameters, seeds), so editing a suite
    entry can never reuse a stale file.
    """
    if size is None:
        in_tiny = tiny_mode() if tiny is None else bool(tiny)
        size = "tiny" if in_tiny else "full"
    elif tiny is not None:
        raise ValueError("pass either tiny= or size=, not both")
    elif size not in SIZES:
        raise ValueError(
            f"unknown suite size {size!r}; known: {', '.join(SIZES)}"
        )
    return _load(name, size)


def _load_impl(name: str, size: str) -> CSRGraph:
    try:
        spec = SUITE[name]
    except KeyError:
        known = ", ".join(sorted(SUITE))
        raise KeyError(f"unknown suite graph {name!r}; known: {known}")
    cache_dir = os.environ.get("REPRO_GRAPH_CACHE")
    if cache_dir:
        from repro.graphs.io import (
            cached_graph_path,
            load_cached_graph,
            store_cached_graph,
        )
        from repro.obs.registry import active_registry

        registry = active_registry()
        path = cached_graph_path(
            cache_dir, name, size, spec.cache_key(size)
        )
        graph = load_cached_graph(path)
        if graph is not None:
            if registry is not None:
                registry.inc("cache.graph_npz.hit")
            graph.name = name
            return graph
        if registry is not None:
            registry.inc("cache.graph_npz.miss")
        graph = spec.build_size(size)
        store_cached_graph(graph, path)
        return graph
    return spec.build_size(size)


_load = lru_cache(maxsize=None)(_load_impl)
#: Existing callers clear the process cache through ``load``.
load.cache_clear = _load.cache_clear  # type: ignore[attr-defined]


def names(
    family: str | None = None, dense: bool | None = None
) -> list[str]:
    """Suite names filtered by family and/or density class."""
    out = []
    for spec in SUITE.values():
        if family is not None and spec.family != family:
            continue
        if dense is not None and spec.dense != dense:
            continue
        out.append(spec.name)
    return out
