"""k-NN graph generation from synthetic vector datasets.

The paper's k-NN graphs (CH5, GL2/5/10, COS5) come from real vector
datasets: each point gets directed edges to its ``k`` nearest neighbors,
then edges are symmetrized.  The decisive structural properties — small
bounded degrees, uniform coreness (about ``k``), very few peeling
subrounds — depend on the *k-NN construction*, not on the specific
vectors, so we generate points from a Gaussian-mixture model (clustered,
like real embeddings) and run an exact k-NN search over them.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def gaussian_mixture_points(
    n: int,
    dim: int = 2,
    clusters: int = 8,
    spread: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Sample ``n`` points from a random Gaussian mixture in ``[0,1]^dim``."""
    if n < 1:
        raise ValueError(f"need at least one point, got {n}")
    rng = np.random.default_rng(seed)
    centers = rng.random((clusters, dim))
    assignment = rng.integers(clusters, size=n)
    return centers[assignment] + rng.normal(0.0, spread, size=(n, dim))


def knn_from_points(
    points: np.ndarray, k: int, name: str = ""
) -> CSRGraph:
    """Exact k-nearest-neighbor graph of a point set (symmetrized).

    Uses a KD-tree (scipy) for the search; each point contributes directed
    edges to its ``k`` nearest neighbors (excluding itself), and the CSR
    construction symmetrizes.
    """
    from scipy.spatial import cKDTree

    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= n:
        raise ValueError(f"k must be < n, got k={k}, n={n}")
    tree = cKDTree(points)
    _, neighbors = tree.query(points, k=k + 1)
    neighbors = np.atleast_2d(neighbors)
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    # Drop the self column (nearest neighbor of a point is itself).
    dst = np.ascontiguousarray(neighbors[:, 1:], dtype=np.int64).ravel()
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(n, edges, name=name or f"knn-{n}-k{k}")


def knn_graph(
    n: int,
    k: int,
    dim: int = 2,
    clusters: int = 8,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Convenience: Gaussian-mixture points + exact k-NN graph."""
    points = gaussian_mixture_points(
        n, dim=dim, clusters=clusters, seed=seed
    )
    return knn_from_points(points, k, name=name or f"knn-{n}-k{k}")
